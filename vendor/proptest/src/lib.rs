//! Offline stand-in for the `proptest` crate.
//!
//! Provides the API subset this workspace uses: `Strategy` with `prop_map`
//! and `boxed`, integer-range / tuple / `Just` / `any` strategies, the
//! `collection` and `sample` modules, and the `proptest!` family of macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimised counterexample.
//! - **Deterministic seeding.** Each property derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Marker returned (via `Err`) by `prop_assume!` when a generated case
    /// does not satisfy the property's precondition; the case is skipped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TestCaseSkip;

    /// Per-block configuration, set with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted (non-skipped) cases to run per property.
        pub cases: u32,
        /// Cap on skipped cases (`prop_assume!`) before a property gives
        /// up; mirrors the upstream field so `..Default::default()`
        /// struct updates stay meaningful.
        pub max_global_rejects: u32,
        /// Accepted for upstream compatibility; shrinking is not
        /// implemented in this stand-in, so the value is unused.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 1024,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from an arbitrary byte string (FNV-1a), e.g. a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish draw in `[0, bound)`; `bound` must be non-zero.
        /// Modulo bias is irrelevant at the tiny bounds tests use.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Draw a usize in `lo..hi` (empty range yields `lo`).
        pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
            if hi <= lo {
                lo
            } else {
                lo + self.below((hi - lo) as u64) as usize
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus sized combinators, mirroring the
    /// shape of real proptest's trait minus shrink trees.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A type-erased strategy (`Strategy::boxed`). Cheap to clone.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy yielding clones of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights covered above")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// The strategy `any` returns.
        type Strategy: Strategy<Value = Self>;
        /// Strategy over the full domain of `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitives implementing [`Arbitrary`].
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// `any::<T>()` strategy for primitive `T`.
    pub struct AnyPrimitive<T>(PhantomData<T>);

    macro_rules! arbitrary_prim {
        ($($t:ty => $gen:expr;)*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> AnyPrimitive<$t> {
                    AnyPrimitive(PhantomData)
                }
            }
        )*};
    }
    arbitrary_prim! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8 => |rng| rng.next_u64() as i8;
        i16 => |rng| rng.next_u64() as i16;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        isize => |rng| rng.next_u64() as isize;
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.size_in(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets; duplicates collapse, so the result may be
    /// smaller than the drawn size (matching real proptest's semantics
    /// loosely — it retries, we don't).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of up to `size` elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.size_in(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered maps; duplicate keys collapse like `btree_set`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `BTreeMap` of up to `size` entries drawn from `key`/`value`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = rng.size_in(self.size.start, self.size.end);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list (`prop::sample::select`).
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy drawing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies yielding a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a boolean condition inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            );
        }
    }};
}

/// Assert inequality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Skip the current generated case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseSkip);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = { $cfg };
            let cases = cfg.cases as usize;
            let max_attempts = cases + cfg.max_global_rejects as usize;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            // Cap attempts so a too-strict prop_assume! cannot spin forever.
            while accepted < cases && attempts < max_attempts {
                attempts += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: Result<(), $crate::test_runner::TestCaseSkip> = (|| {
                    $body
                    Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_stay_in_domain() {
        let mut rng = crate::test_runner::TestRng::from_name("domain");
        let s = prop_oneof![2 => (0i64..5).prop_map(|v| v), 1 => Just(99i64)];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((0..5).contains(&v) || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just, "weighted arm never chosen in 200 draws");
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("sizes");
        let s = prop::collection::vec((0i64..3, any::<bool>()), 0..7);
        for _ in 0..50 {
            assert!(s.generate(&mut rng).len() < 7);
        }
        let m = prop::collection::btree_map(0i64..4, 0i64..4, 0..6);
        for _ in 0..50 {
            assert!(m.generate(&mut rng).len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_and_assumes(x in 0i64..10, flip in any::<bool>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
            let _ = flip;
        }
    }
}
