//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark closure for a fixed number of timed samples and
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! baseline storage — just enough to keep `cargo bench` working and
//! produce comparable numbers offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fused", n)` renders as `fused/n`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one routine call, recorded by `iter`.
    pub mean: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean over the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call keeps cold-cache noise out of tiny benchmarks.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = started.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "{}/{:<40} {:>12.3?}/iter",
            self.name,
            id.to_string(),
            b.mean
        );
        self
    }

    /// Run one benchmark without a parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{:<40} {:>12.3?}/iter", self.name, name, b.mean);
        self
    }

    /// End the group (prints a separator; numbers were already emitted).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group with the default sample budget.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 30,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_nonzero_mean() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("spin", 10), &10u64, |b, n| {
            b.iter(|| {
                ran += 1;
                (0..*n).map(black_box).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran >= 5, "routine ran {ran} times, expected >= samples");
    }
}
