//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `StdRng::seed_from_u64` and
//! `Rng::gen_range` over half-open integer ranges. The generator is
//! splitmix64 — statistically fine for benchmark data synthesis, which is
//! all this workspace draws from it. Note the stream differs from real
//! `StdRng` (ChaCha12), so regenerated datasets differ in content (not in
//! shape or seed-determinism) from ones made with the real crate.

#![forbid(unsafe_code)]

/// Core trait for random sources; only what `gen_range` needs.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Types whose values `gen_range` can draw from a `Range`.
pub trait SampleUniform: Copy {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// User-facing drawing methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draw a bool with probability 1/2.
    fn gen_bool_even(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructors for seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64 under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0i64..1000);
            assert_eq!(x, b.gen_range(0i64..1000));
            assert!((0..1000).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| c.gen_range(0i64..1000) != a.gen_range(0i64..1000));
        assert!(differs, "different seeds gave identical streams");
    }
}
