//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset it actually uses*, implemented over `std::sync`. The
//! semantic difference from the real crate that matters here: these locks
//! ignore poisoning (as parking_lot does — it has no poisoning at all), so
//! a panicking thread does not wedge every later `lock()` call.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, recovers
    /// from poisoning (parking_lot has no poison concept).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
