//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API the workspace uses is provided, implemented
//! over `std::thread::scope` (stabilized in Rust 1.63, after crossbeam's
//! API was designed — which is why the real crate still exists).

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread::scope`).
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure; spawned threads may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result, or the
        /// panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so threads can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Create a scope for spawning borrowing threads; all threads are
    /// joined before it returns. Matches crossbeam's contract of returning
    /// `Err` with the panic payload instead of propagating the panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3, 4];
            let total: i32 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let n = super::scope(|s| {
                let h = s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }

        #[test]
        fn joined_panics_surface_via_join() {
            let result = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join().is_err()
            });
            assert!(result.unwrap());
        }
    }
}
