//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: little-endian put/get through
//! the [`Buf`]/[`BufMut`] traits and a growable [`BytesMut`] buffer backed
//! by `Vec<u8>`. No refcounted zero-copy splitting — nothing here needs it.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a cursor-like byte source. Implemented for `&[u8]`,
/// where every `get_*`/`advance` consumes from the front of the slice.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes. Panics if fewer remain (as the real crate does).
    fn advance(&mut self, n: usize);
    /// Borrow the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable, mutable byte buffer (`Vec<u8>` underneath).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Fresh empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Buffer pre-sized for `n` bytes.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(n))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Keep only the first `n` bytes.
    pub fn truncate(&mut self, n: usize) {
        self.0.truncate(n);
    }

    /// Drop all content.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(b"xyz");
        let mut s: &[u8] = &b;
        assert_eq!(s.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(s.get_i64_le(), -42);
        assert_eq!(s.get_u64_le(), u64::MAX - 1);
        assert_eq!(s.chunk(), b"xyz");
        s.advance(3);
        assert!(s.is_empty());
    }

    #[test]
    fn bytesmut_edits_through_deref() {
        let mut b = BytesMut::from(vec![1, 2, 3]);
        b[1] ^= 0xFF;
        assert_eq!(b.to_vec(), vec![1, 0xFD, 3]);
        b.truncate(1);
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
    }
}
