//! WAL crash recovery: a crash may tear the log at ANY byte, so recovery
//! is run against a log truncated at every position — in particular at
//! every record boundary mid-transaction — and must always rebuild exactly
//! the longest intact prefix of acknowledged appends, never a partial or
//! reordered record.

use xst_core::Value;
use xst_storage::{BufferPool, LoggedTable, Record, Schema, Storage, StorageError, Wal};

fn rec(i: i64) -> Record {
    Record::new([Value::Int(i), Value::str(format!("row-{i}"))])
}

fn schema() -> Schema {
    Schema::new(["id", "name"])
}

/// Append `records` to a fresh log, returning it plus the byte offset of
/// every record boundary (boundary `i` = end of record `i-1`).
fn logged(records: &[Record]) -> (Wal, Vec<usize>) {
    let wal = Wal::new();
    let mut boundaries = vec![0usize];
    for r in records {
        wal.append(&r.encode()).unwrap();
        boundaries.push(wal.len());
    }
    (wal, boundaries)
}

fn recovered_rows(wal: Wal) -> Vec<Record> {
    let storage = Storage::new();
    let t = LoggedTable::recover(&storage, schema(), wal).unwrap();
    let pool = BufferPool::new(storage, 8);
    t.table.file.read_all(&pool).unwrap()
}

/// Truncate the log at every byte position of a 6-record transaction.
/// Whatever the cut, replay must yield exactly the records whose log
/// entries are complete — the prefix up to the last boundary ≤ cut.
#[test]
fn recovery_is_prefix_consistent_at_every_cut() {
    let records: Vec<Record> = (0..6).map(rec).collect();
    let (probe, boundaries) = logged(&records);
    let total = probe.len();

    for cut in 0..=total {
        let (wal, _) = logged(&records);
        wal.tear(total - cut);
        let intact = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        let rows = recovered_rows(wal);
        assert_eq!(
            rows,
            &records[..intact],
            "cut at byte {cut}/{total}: expected the {intact}-record prefix"
        );
    }
}

/// The same discipline through the real append path: a table crashes with
/// its tail page unflushed and its log torn at each record boundary; the
/// recovered table holds exactly the acknowledged prefix.
#[test]
fn crashed_table_recovers_acknowledged_prefix_at_each_boundary() {
    let records: Vec<Record> = (0..6).map(rec).collect();
    let (_, boundaries) = logged(&records);
    let total = *boundaries.last().unwrap();

    for (i, &boundary) in boundaries.iter().enumerate() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, schema(), wal.clone());
        for r in &records {
            t.append(r).unwrap();
        }
        // Crash mid-transaction: the tail page never flushed, and the log
        // survives only up to this record boundary.
        let file_id = t.table.file.file_id();
        drop(t);
        assert_eq!(storage.page_count(file_id).unwrap(), 0, "tail was lost");
        wal.tear(total - boundary);

        let recovered = LoggedTable::recover(&storage, schema(), wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        let rows = recovered.table.file.read_all(&pool).unwrap();
        assert_eq!(
            rows,
            &records[..i],
            "boundary {i}: prefix-consistent replay"
        );
    }
}

/// Tearing inside a record never resurrects it partially: the torn record
/// contributes nothing, even when all but one byte survives.
#[test]
fn torn_record_is_dropped_whole() {
    let records: Vec<Record> = (0..3).map(rec).collect();
    let (probe, boundaries) = logged(&records);
    let total = probe.len();
    // One byte short of each boundary: the record ending there is torn.
    for (i, &boundary) in boundaries.iter().enumerate().skip(1) {
        let (wal, _) = logged(&records);
        wal.tear(total - (boundary - 1));
        let rows = recovered_rows(wal);
        assert_eq!(rows, &records[..i - 1], "record {} torn by one byte", i - 1);
    }
}

/// A checkpoint truncates the log, so after a later crash the log holds
/// only the post-checkpoint suffix — while recovery stitches the
/// checkpointed pages back under it and restores everything.
#[test]
fn checkpoint_then_crash_replays_only_the_suffix() {
    let storage = Storage::new();
    let wal = Wal::new();
    let mut t = LoggedTable::create(&storage, schema(), wal.clone());
    for i in 0..4 {
        t.append(&rec(i)).unwrap();
    }
    t.checkpoint().unwrap();
    for i in 4..7 {
        t.append(&rec(i)).unwrap();
    }
    let file_id = t.table.file.file_id();
    drop(t);

    // The checkpointed prefix survives on disk, vouched for by the mark.
    assert!(storage.page_count(file_id).unwrap() > 0);
    let mark = wal.checkpoint().expect("checkpoint mark recorded");
    assert_eq!(mark.file, file_id);
    // The log itself holds exactly the post-checkpoint appends…
    assert_eq!(wal.records().unwrap(), (4..7).map(rec).collect::<Vec<_>>());
    // …and recovery = marked pages + replayed suffix = everything.
    let rows = {
        let t = LoggedTable::recover(&storage, schema(), wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        t.table.file.read_all(&pool).unwrap()
    };
    assert_eq!(rows, (0..7).map(rec).collect::<Vec<_>>());
}

/// Corruption in the middle of the log — payload damage behind intact
/// framing — must fail recovery loudly, never truncate to it.
#[test]
fn corrupt_middle_record_fails_recovery_loudly() {
    let records: Vec<Record> = (0..5).map(rec).collect();
    let (wal, _) = logged(&records);
    // Flip a payload byte of the FIRST record (payload starts after the
    // 8-byte frame header); four intact records follow it.
    wal.flip_byte(10, 0xFF);
    let storage = Storage::new();
    match LoggedTable::recover(&storage, schema(), wal) {
        Err(StorageError::Corrupt { .. }) => {}
        other => panic!("corrupt middle must fail recovery, got {:?}", other.is_ok()),
    }
}

/// The satellite-bug regression, end to end: a bit-flipped length field in
/// the middle of the log must be reported as corruption. Against the
/// pre-fix replay scan (no header checksum) the bogus length overran the
/// buffer and read as a "torn tail", silently dropping this record and
/// every later one — recovery then "succeeded" with data loss.
#[test]
fn bit_flipped_length_field_is_corruption_not_truncation() {
    let records: Vec<Record> = (0..5).map(rec).collect();
    let (wal, _) = logged(&records);
    // Offset of the SECOND frame's length field: first frame (12 bytes of
    // framing + payload) plus the 8-byte commit marker sealing its flush.
    // Flip the most-significant length byte so the frame claims to be
    // ~2 GiB — far past the end of the log.
    let second_frame = 12 + records[0].encode().len() + 8;
    wal.flip_byte(second_frame + 3, 0x80);
    let storage = Storage::new();
    match LoggedTable::recover(&storage, schema(), wal) {
        Err(StorageError::Corrupt { reason }) => {
            assert!(reason.contains("length"), "{reason}");
        }
        other => panic!(
            "bit-flipped length must be Corrupt, got ok={:?}",
            other.is_ok()
        ),
    }
}
