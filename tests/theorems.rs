//! The paper's theorems, reproduced as executable properties:
//! Theorem 9.4 (`⊗` associativity), Theorem 9.10 (CST embedding),
//! Theorem 11.2 (constructible composition), and the interpretation counts
//! of Examples 4.1/4.2.

use proptest::prelude::*;
use xst_core::cst::{CstFunction, CstRelation};
use xst_core::ops::cross;
use xst_core::process::interpretation_count;
use xst_core::spaces::{in_space, SpaceSpec};
use xst_core::{ExtendedSet, Process, Value};
use xst_testkit::{arb_atom, arb_function_relation, arb_pair_relation, singleton};

fn arb_tuple_set() -> impl Strategy<Value = ExtendedSet> {
    prop::collection::vec(prop::collection::vec(arb_atom(), 0..3), 0..4).prop_map(|tuples| {
        ExtendedSet::classical(
            tuples
                .into_iter()
                .map(|t| Value::Set(ExtendedSet::tuple(t))),
        )
    })
}

proptest! {
    /// Theorem 9.4: A ⊗ B ⊗ C is associative.
    #[test]
    fn theorem_9_4_cross_associativity(
        a in arb_tuple_set(),
        b in arb_tuple_set(),
        c in arb_tuple_set(),
    ) {
        let left = cross(&cross(&a, &b).unwrap(), &c).unwrap();
        let right = cross(&a, &cross(&b, &c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Theorem 9.10: every CST function is represented by its XST behavior:
    /// f(x) = 𝒱(f_(σ)({⟨x⟩})) for σ = ⟨⟨1⟩,⟨2⟩⟩.
    #[test]
    fn theorem_9_10_embedding(graph in arb_function_relation(), probe in arb_atom()) {
        let relation = CstRelation::from_extended(&graph).unwrap();
        let f = CstFunction::new(relation.clone()).unwrap();
        prop_assert!(f.embedding_agrees());
        // Probes outside the domain agree on "undefined" too.
        let p = f.to_process();
        prop_assert_eq!(f.apply(&probe), p.apply_value(&probe).ok());
    }

    /// Theorem 11.2, semantic form: the constructed composition satisfies
    /// (g ∘ f)(x) = g(f(x)) on every singleton input.
    #[test]
    fn theorem_11_2_composition_law(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
        x in arb_atom(),
    ) {
        let fp = Process::pairs(f);
        let gp = Process::pairs(g);
        let h = Process::compose(&gp, &fp).unwrap();
        let input = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([x]))]);
        prop_assert_eq!(h.apply(&input), gp.apply(&fp.apply(&input)));
    }

    /// Theorem 11.2, typing form: f ∈ ℱ[A,B), g ∈ ℱ[B,C) → g∘f ∈ ℱ[A,C).
    #[test]
    fn theorem_11_2_composition_typing(pairs in prop::collection::btree_map(
        arb_atom(), (arb_atom(), arb_atom()), 1..6
    )) {
        // Build a total pipeline: f: A → B, g: B → C with f's image inside
        // g's domain by construction.
        let f_graph = ExtendedSet::classical(pairs.iter().map(|(a, (b, _))| {
            Value::Set(ExtendedSet::pair(a.clone(), b.clone()))
        }));
        let g_graph = ExtendedSet::classical(pairs.values().map(|(b, c)| {
            Value::Set(ExtendedSet::pair(b.clone(), c.clone()))
        }));
        let fp = Process::pairs(f_graph);
        let gp = Process::pairs(g_graph);
        prop_assume!(fp.is_function() && gp.is_function());
        let a = fp.domain();
        let b = gp.domain();
        let c = gp.codomain();
        prop_assume!(fp.codomain().is_subset(&b));
        let on_spec = SpaceSpec { on: true, ..SpaceSpec::function() };
        prop_assert!(in_space(&fp, &on_spec, &a, &b));
        prop_assert!(in_space(&gp, &on_spec, &b, &c));
        let h = Process::compose(&gp, &fp).unwrap();
        // h is a function from A into C, on A.
        prop_assert!(h.is_function());
        prop_assert_eq!(h.domain().card(), a.card());
        // Every h-image lands in C.
        for probe in h.singleton_probes() {
            prop_assert!(h.apply(&probe).is_subset(&c));
        }
    }

    /// Composition associativity: (h∘g)∘f ≡ h∘(g∘f) as behaviors.
    #[test]
    fn composition_is_associative_as_behavior(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
        h in arb_pair_relation(),
        x in arb_atom(),
    ) {
        let (fp, gp, hp) = (Process::pairs(f), Process::pairs(g), Process::pairs(h));
        let left = Process::compose(&hp, &Process::compose(&gp, &fp).unwrap());
        let right = Process::compose(&Process::compose(&hp, &gp).unwrap(), &fp);
        // Both compositions may rename internal scopes differently, so we
        // compare behaviors, not carriers.
        let input = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([x]))]);
        if let (Ok(l), Ok(r)) = (left, right) {
            prop_assert_eq!(l.apply(&input), r.apply(&input));
        }
    }
}

#[test]
fn interpretation_counts_quoted_by_the_paper() {
    // "two legitimate interpretations" for a 2-chain; "5 for three ...
    // with 14 for four and 42 for five".
    assert_eq!(interpretation_count(2), 2);
    assert_eq!(interpretation_count(3), 5);
    assert_eq!(interpretation_count(4), 14);
    assert_eq!(interpretation_count(5), 42);
    // The sequence continues as the Catalan numbers.
    assert_eq!(interpretation_count(6), 132);
    assert_eq!(interpretation_count(10), 16796);
}

#[test]
fn composition_worked_example() {
    // A concrete instance of Theorem 11.2's diagram: h = g ∘ f executes
    // f-then-g in one step.
    let f = Process::from_pairs([("a", "b"), ("c", "d"), ("e", "b")]);
    let g = Process::from_pairs([("b", "1"), ("d", "2")]);
    let h = Process::compose(&g, &f).unwrap();
    for (input, expected) in [
        ("a", Some("1")),
        ("c", Some("2")),
        ("e", Some("1")),
        ("q", None),
    ] {
        let got = h.apply(&singleton(input));
        match expected {
            Some(out) => assert_eq!(got, singleton(out), "input {input}"),
            None => assert!(got.is_empty(), "input {input}"),
        }
    }
    assert!(h.is_function());
}

#[test]
fn cst_image_definition_3_6_agrees_with_xst() {
    // CST: R[A] = 𝔇₂(R|A); XST: the same through scoped machinery.
    let r = CstRelation::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
    let a: std::collections::BTreeSet<Value> =
        [Value::sym("a"), Value::sym("c")].into_iter().collect();
    let classical = r.cst_image(&a);
    let p = r.to_process();
    let input = ExtendedSet::classical(
        a.iter()
            .map(|v| Value::Set(ExtendedSet::tuple([v.clone()]))),
    );
    let behavioral: std::collections::BTreeSet<Value> = p
        .apply(&input)
        .iter()
        .filter_map(|(e, _)| {
            e.as_set()
                .and_then(ExtendedSet::as_tuple)
                .map(|t| t[0].clone())
        })
        .collect();
    assert_eq!(classical, behavioral);
}
