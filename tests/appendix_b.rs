//! Appendix B, reproduced exactly: self-application `f[f] ≠ ∅`, and the
//! generation of all four unary maps on a 2-element set from the single
//! carrier `f = {⟨a,a,a,b,b⟩, ⟨b,b,a,a,b⟩}`.

use xst_core::{ExtendedSet, Process, Value};
use xst_testkit::{appendix_b, singleton};

fn tuple(components: &[&str]) -> ExtendedSet {
    ExtendedSet::tuple(components.iter().map(Value::sym))
}

fn classical(tuples: &[&[&str]]) -> ExtendedSet {
    ExtendedSet::classical(tuples.iter().map(|t| Value::Set(tuple(t))))
}

#[test]
fn base_applications_match_derivations_a_through_d() {
    let (f, sigma, omega) = appendix_b();
    let f_sigma = Process::new(f.clone(), sigma);
    let f_omega = Process::new(f, omega);

    // B derivation (a): f_(σ)({⟨a⟩}) = {⟨a⟩}.
    assert_eq!(f_sigma.apply(&singleton("a")), singleton("a"));
    // (b): f_(σ)({⟨b⟩}) = {⟨b⟩}.
    assert_eq!(f_sigma.apply(&singleton("b")), singleton("b"));
    // (c): f_(ω)({⟨a⟩}) = {⟨a,a,b,b,a⟩}.
    assert_eq!(
        f_omega.apply(&singleton("a")),
        classical(&[&["a", "a", "b", "b", "a"]])
    );
    // (d): f_(ω)({⟨b⟩}) = {⟨b,b,a,a,b⟩} permuted = {⟨b,a,a,b,b⟩}.
    assert_eq!(
        f_omega.apply(&singleton("b")),
        classical(&[&["b", "a", "a", "b", "b"]])
    );
}

#[test]
fn self_application_is_nonempty() {
    let (f, _, omega) = appendix_b();
    let f_omega = Process::new(f.clone(), omega);
    // f[f]_ω ≠ ∅ — the headline of Appendix B.
    let ff = f_omega.apply(&f);
    assert!(!ff.is_empty());
    // And the restriction keeps the whole carrier: both tuples witness
    // themselves.
    assert_eq!(
        ff,
        classical(&[&["a", "a", "b", "b", "a"], &["b", "a", "a", "b", "b"]])
    );
}

#[test]
fn the_four_unary_maps_are_generated() {
    let (f, sigma, omega) = appendix_b();
    let f_sigma = Process::new(f.clone(), sigma);
    let f_omega = Process::new(f, omega);

    let g1 = Process::from_pairs([("a", "a"), ("b", "b")]);
    let g2 = Process::from_pairs([("a", "a"), ("b", "a")]);
    let g3 = Process::from_pairs([("a", "b"), ("b", "a")]);
    let g4 = Process::from_pairs([("a", "b"), ("b", "b")]);

    // (a) f_(σ) = g1.
    assert!(f_sigma.equivalent(&g1));
    // (b) f_(ω)(f_(σ)) = g2.
    let b = f_omega.apply_to_process(&f_sigma);
    assert!(b.equivalent(&g2));
    // (c) (f_(ω)(f_(ω)))(f_(σ)) = g3.
    let ff = f_omega.apply_to_process(&f_omega);
    let c = ff.apply_to_process(&f_sigma);
    assert!(c.equivalent(&g3));
    // (d) ((f_(ω)(f_(ω)))(f_(ω)))(f_(σ)) = g4.
    let fff = ff.apply_to_process(&f_omega);
    let d = fff.apply_to_process(&f_sigma);
    assert!(d.equivalent(&g4));

    // The four generated behaviors are pairwise distinct.
    assert!(!b.equivalent(&c));
    assert!(!b.equivalent(&d));
    assert!(!c.equivalent(&d));
    assert!(!f_sigma.equivalent(&b));
}

#[test]
fn carrier_permutation_orbit_has_period_four() {
    let (f, sigma, omega) = appendix_b();
    let f_sigma = Process::new(f.clone(), sigma);
    let f_omega = Process::new(f, omega);
    // Applying f_(ω) four times in the left-nested bracketing returns to
    // the identity behavior.
    let mut current = f_omega.clone();
    for _ in 0..3 {
        current = current.apply_to_process(&f_omega);
    }
    let back = current.apply_to_process(&f_sigma);
    assert!(back.equivalent(&f_sigma), "the orbit closes");
}

#[test]
fn f_sigma_is_the_identity_on_its_domain() {
    // "Other equalities: f_(σ) = I_A" with A = {⟨a⟩, ⟨b⟩}.
    let (f, sigma, _) = appendix_b();
    let f_sigma = Process::new(f, sigma);
    let a = classical(&[&["a"], &["b"]]);
    let id = Process::identity_on(&a).unwrap();
    assert!(f_sigma.equivalent(&id));
    assert!(f_sigma.is_function());
    assert!(f_sigma.is_one_to_one());
}

#[test]
fn consequence_b1_equivalence_implies_domain_equality() {
    // Consequence B.1: f_(σ) = g_(γ) → matching domain projections
    // (checked on the σ-behavior vs its g1 presentation).
    let (f, sigma, _) = appendix_b();
    let f_sigma = Process::new(f, sigma);
    let g1 = Process::from_pairs([("a", "a"), ("b", "b")]);
    assert!(f_sigma.equivalent(&g1));
    assert_eq!(f_sigma.domain(), g1.domain());
    // Note: codomain projections agree here too.
    assert_eq!(f_sigma.codomain(), g1.codomain());
}

#[test]
fn consequence_b2_equivalence_is_transitive() {
    let (f, sigma, _) = appendix_b();
    let p1 = Process::new(f, sigma);
    let p2 = Process::from_pairs([("a", "a"), ("b", "b")]);
    let p3 = Process::identity_on(&classical(&[&["a"], &["b"]])).unwrap();
    assert!(p1.equivalent(&p2));
    assert!(p2.equivalent(&p3));
    assert!(p1.equivalent(&p3));
}

#[test]
fn nothing_requires_the_resultant_behavior_to_be_functional() {
    // The note after the equalities: f_(τ) of Example 8.1 shows a
    // function's inverse behavior need not be functional. Here: the ω
    // behavior itself maps singletons to 5-tuples — functional but not on
    // the same space; its inverse over the permuted carrier is still a
    // behavior.
    let (f, _, omega) = appendix_b();
    let f_omega = Process::new(f, omega);
    assert!(
        f_omega.is_function(),
        "ω-behavior is singleton-to-singleton"
    );
    let inv = f_omega.inverse();
    // The inverse maps 5-tuple witnesses back; it is a legitimate process.
    assert!(inv.is_process());
}
