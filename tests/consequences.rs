//! Property tests for the paper's algebraic Consequences — 7.1 (domain),
//! 8.1 (functions/application), and C.1 (image) — over randomly generated
//! extended sets, relations, and scopes.

use proptest::prelude::*;
use xst_core::ops::{difference, image, intersection, sigma_domain, sigma_restrict, union, Scope};
use xst_core::{ExtendedSet, Process};
use xst_testkit::{arb_pair_relation, arb_set, arb_singleton_input};

fn arb_spec() -> impl Strategy<Value = ExtendedSet> {
    // Positional specs over small tuples, including permutations and fans.
    prop::collection::vec((1i64..5, 1i64..5), 0..4).prop_map(ExtendedSet::from_pairs)
}

proptest! {
    // ---------------- Consequence 7.1: σ-Domain laws ----------------

    /// (a) 𝔇_σ(R ∪ Q) = 𝔇_σ(R) ∪ 𝔇_σ(Q)
    #[test]
    fn domain_7_1_a(r in arb_pair_relation(), q in arb_pair_relation(), s in arb_spec()) {
        prop_assert_eq!(
            sigma_domain(&union(&r, &q), &s),
            union(&sigma_domain(&r, &s), &sigma_domain(&q, &s))
        );
    }

    /// (b) 𝔇_σ(R ∩ Q) ⊆ 𝔇_σ(R) ∩ 𝔇_σ(Q)
    #[test]
    fn domain_7_1_b(r in arb_pair_relation(), q in arb_pair_relation(), s in arb_spec()) {
        let lhs = sigma_domain(&intersection(&r, &q), &s);
        let rhs = intersection(&sigma_domain(&r, &s), &sigma_domain(&q, &s));
        prop_assert!(lhs.is_subset(&rhs));
    }

    /// (c) 𝔇_σ(R) ~ 𝔇_σ(Q) ⊆ 𝔇_σ(R ~ Q)
    #[test]
    fn domain_7_1_c(r in arb_pair_relation(), q in arb_pair_relation(), s in arb_spec()) {
        let lhs = difference(&sigma_domain(&r, &s), &sigma_domain(&q, &s));
        let rhs = sigma_domain(&difference(&r, &q), &s);
        prop_assert!(lhs.is_subset(&rhs));
    }

    /// (d) R ⊆ Q → 𝔇_σ(R) ⊆ 𝔇_σ(Q)
    #[test]
    fn domain_7_1_d(q in arb_pair_relation(), s in arb_spec(), keep in any::<u64>()) {
        // Build R as a pseudo-random subset of Q.
        let members: Vec<_> = q
            .members()
            .iter()
            .enumerate()
            .filter(|(i, _)| keep >> (i % 64) & 1 == 1)
            .map(|(_, m)| m.clone())
            .collect();
        let r = ExtendedSet::from_members(members);
        prop_assert!(r.is_subset(&q));
        prop_assert!(sigma_domain(&r, &s).is_subset(&sigma_domain(&q, &s)));
    }

    /// (e) 𝔇_∅(R) = ∅
    #[test]
    fn domain_7_1_e(r in arb_set(2)) {
        prop_assert!(sigma_domain(&r, &ExtendedSet::empty()).is_empty());
    }

    // ---------------- Consequence 8.1: application laws ----------------

    /// (a) (f ∪ g)_(σ)(x) = f_(σ)(x) ∪ g_(σ)(x)
    #[test]
    fn application_8_1_a(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
        x in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        prop_assert_eq!(
            image(&union(&f, &g), &x, &s),
            union(&image(&f, &x, &s), &image(&g, &x, &s))
        );
    }

    /// (b) (f ∩ g)_(σ)(x) ⊆ f_(σ)(x) ∩ g_(σ)(x)
    #[test]
    fn application_8_1_b(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
        x in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let lhs = image(&intersection(&f, &g), &x, &s);
        let rhs = intersection(&image(&f, &x, &s), &image(&g, &x, &s));
        prop_assert!(lhs.is_subset(&rhs));
    }

    /// (c) f_(σ)(x) ~ g_(σ)(x) ⊆ (f ~ g)_(σ)(x)
    #[test]
    fn application_8_1_c(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
        x in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let lhs = difference(&image(&f, &x, &s), &image(&g, &x, &s));
        let rhs = image(&difference(&f, &g), &x, &s);
        prop_assert!(lhs.is_subset(&rhs));
    }

    // ---------------- Consequence C.1: image laws ----------------

    /// (a) Q[A ∪ B]_σ = Q[A]_σ ∪ Q[B]_σ
    #[test]
    fn image_c1_a(
        q in arb_pair_relation(),
        a in arb_singleton_input(),
        b in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        prop_assert_eq!(
            image(&q, &union(&a, &b), &s),
            union(&image(&q, &a, &s), &image(&q, &b, &s))
        );
    }

    /// (b) Q[A ∩ B]_σ ⊆ Q[A]_σ ∩ Q[B]_σ
    #[test]
    fn image_c1_b(
        q in arb_pair_relation(),
        a in arb_singleton_input(),
        b in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let lhs = image(&q, &intersection(&a, &b), &s);
        let rhs = intersection(&image(&q, &a, &s), &image(&q, &b, &s));
        prop_assert!(lhs.is_subset(&rhs));
    }

    /// (c) Q[A]_σ ~ Q[B]_σ ⊆ Q[A ~ B]_σ
    #[test]
    fn image_c1_c(
        q in arb_pair_relation(),
        a in arb_singleton_input(),
        b in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let lhs = difference(&image(&q, &a, &s), &image(&q, &b, &s));
        let rhs = image(&q, &difference(&a, &b), &s);
        prop_assert!(lhs.is_subset(&rhs));
    }

    /// (d) A ⊆ B → Q[A]_σ ⊆ Q[B]_σ
    #[test]
    fn image_c1_d(
        q in arb_pair_relation(),
        a in arb_singleton_input(),
        b in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let big = union(&a, &b);
        prop_assert!(image(&q, &a, &s).is_subset(&image(&q, &big, &s)));
    }

    /// (e) Q[𝔇_σ1(Q) ∩ A]_⟨σ1,σ2⟩ = Q[A]_⟨σ1,σ2⟩ — for witnesses drawn as
    /// full domain projections (see the interpretive note in
    /// `xst_core::ops::restrict`: partial witnesses may select without
    /// membership in the projection).
    #[test]
    fn image_c1_e_on_projection_witnesses(
        q in arb_pair_relation(),
        other in arb_pair_relation(),
        pick in any::<u64>(),
    ) {
        let s = Scope::pairs();
        let dom = sigma_domain(&q, &s.sigma1);
        // A = pseudo-random subset of Q's domain projection, plus witnesses
        // from an unrelated relation's projection (possibly outside dom).
        let members: Vec<_> = dom
            .members()
            .iter()
            .enumerate()
            .filter(|(i, _)| pick >> (i % 64) & 1 == 1)
            .map(|(_, m)| m.clone())
            .collect();
        let a = union(
            &ExtendedSet::from_members(members),
            &sigma_domain(&other, &s.sigma1),
        );
        prop_assert_eq!(
            image(&q, &intersection(&dom, &a), &s),
            image(&q, &a, &s)
        );
    }

    /// (f) Q[A]_⟨σ,γ⟩ = 𝔇_γ(Q |_σ A) — the fused operator equals the
    /// two-pass pipeline on arbitrary nested sets.
    #[test]
    fn image_c1_f(q in arb_set(2), a in arb_set(2), s1 in arb_spec(), s2 in arb_spec()) {
        let scope = Scope::new(s1, s2);
        prop_assert_eq!(
            image(&q, &a, &scope),
            sigma_domain(&sigma_restrict(&q, &scope.sigma1, &a), &scope.sigma2)
        );
    }

    /// (g) Q[∅]_σ = ∅, ∅[A]_σ = ∅, Q[A]_∅ = ∅
    #[test]
    fn image_c1_g(q in arb_set(2), a in arb_set(2), s in arb_spec()) {
        let scope = Scope::new(s.clone(), s);
        prop_assert!(image(&q, &ExtendedSet::empty(), &scope).is_empty());
        prop_assert!(image(&ExtendedSet::empty(), &a, &scope).is_empty());
        let empty_scope = Scope::new(ExtendedSet::empty(), ExtendedSet::empty());
        prop_assert!(image(&q, &a, &empty_scope).is_empty());
    }

    /// (h) 𝔇_σ(Q) ∩ A = ∅ → Q[A]_⟨σ,γ⟩ = ∅ — again for projection-shaped
    /// witnesses.
    #[test]
    fn image_c1_h_on_projection_witnesses(
        q in arb_pair_relation(),
        other in arb_pair_relation(),
    ) {
        let s = Scope::pairs();
        let dom = sigma_domain(&q, &s.sigma1);
        // Witnesses drawn from another relation's domain, minus Q's.
        let a = difference(&sigma_domain(&other, &s.sigma1), &dom);
        prop_assert!(intersection(&dom, &a).is_empty());
        prop_assert!(image(&q, &a, &s).is_empty());
    }

    /// (i) (Q ∪ R)[A]_σ = Q[A]_σ ∪ R[A]_σ
    #[test]
    fn image_c1_i(
        q in arb_pair_relation(),
        r in arb_pair_relation(),
        a in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        prop_assert_eq!(
            image(&union(&q, &r), &a, &s),
            union(&image(&q, &a, &s), &image(&r, &a, &s))
        );
    }

    /// (j) (Q ∩ R)[A]_σ ⊆ Q[A]_σ ∩ R[A]_σ
    #[test]
    fn image_c1_j(
        q in arb_pair_relation(),
        r in arb_pair_relation(),
        a in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let lhs = image(&intersection(&q, &r), &a, &s);
        let rhs = intersection(&image(&q, &a, &s), &image(&r, &a, &s));
        prop_assert!(lhs.is_subset(&rhs));
    }

    /// (k) Q[A]_σ ~ R[A]_σ ⊆ (Q ~ R)[A]_σ
    #[test]
    fn image_c1_k(
        q in arb_pair_relation(),
        r in arb_pair_relation(),
        a in arb_singleton_input(),
    ) {
        let s = Scope::pairs();
        let lhs = difference(&image(&q, &a, &s), &image(&r, &a, &s));
        let rhs = image(&difference(&q, &r), &a, &s);
        prop_assert!(lhs.is_subset(&rhs));
    }

    // -------- Definition 2.2 / Consequence B.1: process equality --------

    /// Equivalent processes have equal domain and codomain projections.
    #[test]
    fn process_equality_implies_projections(f in arb_pair_relation()) {
        let p = Process::pairs(f.clone());
        let q = Process::pairs(f);
        prop_assert!(p.equivalent(&q));
        prop_assert_eq!(p.domain(), q.domain());
        prop_assert_eq!(p.codomain(), q.codomain());
    }
}

// ---------------- Relative product laws (Definition 10.1) ----------------

proptest! {
    /// The relative product distributes over union in both operands
    /// (it is defined member-wise, so this must hold exactly).
    #[test]
    fn relative_product_distributes_over_union(
        f in arb_pair_relation(),
        f2 in arb_pair_relation(),
        g in arb_pair_relation(),
    ) {
        let sigma = Scope::new(
            ExtendedSet::from_pairs([(xst_core::Value::Int(1), xst_core::Value::Int(1))]),
            ExtendedSet::from_pairs([(xst_core::Value::Int(2), xst_core::Value::Int(1))]),
        );
        let omega = Scope::new(
            ExtendedSet::from_pairs([(xst_core::Value::Int(1), xst_core::Value::Int(1))]),
            ExtendedSet::from_pairs([(xst_core::Value::Int(2), xst_core::Value::Int(2))]),
        );
        use xst_core::ops::relative_product;
        prop_assert_eq!(
            relative_product(&union(&f, &f2), &sigma, &g, &omega),
            union(
                &relative_product(&f, &sigma, &g, &omega),
                &relative_product(&f2, &sigma, &g, &omega)
            )
        );
        prop_assert_eq!(
            relative_product(&g, &sigma, &union(&f, &f2), &omega),
            union(
                &relative_product(&g, &sigma, &f, &omega),
                &relative_product(&g, &sigma, &f2, &omega)
            )
        );
    }

    /// Monotone in both operands, and empty operands yield empty products.
    #[test]
    fn relative_product_monotone_and_strict(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
        extra in arb_pair_relation(),
    ) {
        let sigma = Scope::new(
            ExtendedSet::from_pairs([(xst_core::Value::Int(1), xst_core::Value::Int(1))]),
            ExtendedSet::from_pairs([(xst_core::Value::Int(2), xst_core::Value::Int(1))]),
        );
        let omega = Scope::new(
            ExtendedSet::from_pairs([(xst_core::Value::Int(1), xst_core::Value::Int(1))]),
            ExtendedSet::from_pairs([(xst_core::Value::Int(2), xst_core::Value::Int(2))]),
        );
        use xst_core::ops::relative_product;
        let small = relative_product(&f, &sigma, &g, &omega);
        let big = relative_product(&union(&f, &extra), &sigma, &g, &omega);
        prop_assert!(small.is_subset(&big));
        prop_assert!(relative_product(&ExtendedSet::empty(), &sigma, &g, &omega).is_empty());
        prop_assert!(relative_product(&f, &sigma, &ExtendedSet::empty(), &omega).is_empty());
    }

    /// The CST warm-up shape: the §10 recipe-(1) relative product of pair
    /// relations agrees with classical relational composition computed
    /// independently through the CST layer.
    #[test]
    fn relative_product_agrees_with_cst_composition(
        f in arb_pair_relation(),
        g in arb_pair_relation(),
    ) {
        use xst_core::cst::CstRelation;
        let rf = CstRelation::from_extended(&f).unwrap();
        let rg = CstRelation::from_extended(&g).unwrap();
        let classical = rf.cst_relative_product(&rg).to_extended();
        let scoped = xst_core::ops::pair_compose(&f, &g);
        prop_assert_eq!(classical, scoped);
    }
}
