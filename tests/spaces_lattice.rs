//! Appendices D and E: the lattices of process and function spaces, and the
//! classification of concrete behaviors into them.

use proptest::prelude::*;
use xst_core::spaces::{basic_spaces, in_space, refined_spaces, AssocSet, SpaceSpec};
use xst_core::{ExtendedSet, Process, Value};
use xst_testkit::arb_pair_relation;

#[test]
fn appendix_d_16_basic_8_function() {
    let basic = basic_spaces();
    assert_eq!(basic.len(), 16);
    assert_eq!(basic.iter().filter(|s| s.is_function_space()).count(), 8);
    // All 16 specs are distinct.
    for (i, a) in basic.iter().enumerate() {
        for b in &basic[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

#[test]
fn appendix_e_29_refined_12_function() {
    let refined = refined_spaces();
    assert_eq!(refined.len(), 29);
    assert_eq!(refined.iter().filter(|s| s.is_function_space()).count(), 12);
    for (i, a) in refined.iter().enumerate() {
        for b in &refined[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

#[test]
fn lattice_has_top_and_bottom() {
    let refined = refined_spaces();
    let top = SpaceSpec::process();
    // Every refined non-bottom spec is a subspace of the unrestricted one.
    for s in &refined {
        if !s.assoc.is_bottom() {
            assert!(s.is_subspace_of(&top), "{} ⊄ top", s.notation());
        }
    }
    // Exactly one bottom.
    assert_eq!(refined.iter().filter(|s| s.assoc.is_bottom()).count(), 1);
}

#[test]
fn consequence_6_1_on_the_whole_lattice() {
    // (a)–(d) are instances of: adding a constraint yields a subspace.
    let f_space = SpaceSpec::function();
    let on = SpaceSpec {
        on: true,
        ..f_space.clone()
    };
    let onto = SpaceSpec {
        onto: true,
        ..f_space.clone()
    };
    let both = SpaceSpec {
        on: true,
        onto: true,
        ..f_space.clone()
    };
    assert!(on.is_subspace_of(&f_space)); // (a)
    assert!(onto.is_subspace_of(&f_space)); // (b)
    assert!(both.is_subspace_of(&onto)); // (c)
    assert!(both.is_subspace_of(&on)); // (d)
                                       // Subspace relation is a partial order on the refined lattice.
    let refined = refined_spaces();
    for a in &refined {
        assert!(a.is_subspace_of(a), "reflexive");
        for b in &refined {
            for c in &refined {
                if a.is_subspace_of(b) && b.is_subspace_of(c) {
                    assert!(a.is_subspace_of(c), "transitive");
                }
            }
            if a.is_subspace_of(b) && b.is_subspace_of(a) {
                assert_eq!(a, b, "antisymmetric");
            }
        }
    }
}

#[test]
fn named_spaces_classify_canonical_examples() {
    let dom = ExtendedSet::classical([
        Value::Set(ExtendedSet::tuple(["a"])),
        Value::Set(ExtendedSet::tuple(["b"])),
    ]);
    let cod = ExtendedSet::classical([
        Value::Set(ExtendedSet::tuple(["x"])),
        Value::Set(ExtendedSet::tuple(["y"])),
    ]);
    struct Case {
        name: &'static str,
        p: Process,
        function: bool,
        injective: bool,
        surjective: bool,
        bijective: bool,
    }
    let cases = [
        Case {
            name: "bijection",
            p: Process::from_pairs([("a", "x"), ("b", "y")]),
            function: true,
            injective: true,
            surjective: true,
            bijective: true,
        },
        Case {
            name: "fold (onto a point)",
            p: Process::from_pairs([("a", "x"), ("b", "x")]),
            function: true,
            injective: false,
            surjective: false, // misses y
            bijective: false,
        },
        Case {
            name: "partial injection",
            p: Process::from_pairs([("a", "x")]),
            function: true,
            injective: false, // not ON A (misses b)
            surjective: false,
            bijective: false,
        },
        Case {
            name: "one-to-many",
            p: Process::from_pairs([("a", "x"), ("a", "y"), ("b", "x")]),
            function: false,
            injective: false,
            surjective: false,
            bijective: false,
        },
    ];
    for c in &cases {
        assert!(
            in_space(&c.p, &SpaceSpec::process(), &dom, &cod),
            "{}: always a process from A to B",
            c.name
        );
        assert_eq!(
            in_space(&c.p, &SpaceSpec::function(), &dom, &cod),
            c.function,
            "{}: function",
            c.name
        );
        assert_eq!(
            in_space(&c.p, &SpaceSpec::injective(), &dom, &cod),
            c.injective,
            "{}: injective",
            c.name
        );
        assert_eq!(
            in_space(&c.p, &SpaceSpec::surjective(), &dom, &cod),
            c.surjective,
            "{}: surjective",
            c.name
        );
        assert_eq!(
            in_space(&c.p, &SpaceSpec::bijective(), &dom, &cod),
            c.bijective,
            "{}: bijective",
            c.name
        );
    }
}

#[test]
fn assoc_alphabet_enumerates_8_subsets() {
    let all = AssocSet::all();
    assert_eq!(all.len(), 8);
    assert_eq!(all.iter().filter(|a| a.is_bottom()).count(), 1);
    assert_eq!(all.iter().filter(|a| a.is_functional()).count(), 3);
}

proptest! {
    /// Membership is monotone along the subspace order for random
    /// behaviors: f ∈ S and S ⊆ T imply f ∈ T.
    #[test]
    fn membership_monotone_on_lattice(graph in arb_pair_relation()) {
        prop_assume!(!graph.is_empty());
        let p = Process::pairs(graph);
        let a = p.domain();
        let b = p.codomain();
        prop_assume!(!a.is_empty() && !b.is_empty());
        let refined = refined_spaces();
        for s in &refined {
            if in_space(&p, s, &a, &b) {
                for t in &refined {
                    if s.is_subspace_of(t) {
                        prop_assert!(
                            in_space(&p, t, &a, &b),
                            "{} in {} but not {}",
                            p.graph, s.notation(), t.notation()
                        );
                    }
                }
            }
        }
    }

    /// Every non-empty behavior lands in the unrestricted process space
    /// over its own projections (Definition 6.7 arrow).
    #[test]
    fn arrow_over_own_projections(graph in arb_pair_relation()) {
        prop_assume!(!graph.is_empty());
        let p = Process::pairs(graph);
        let (a, b) = (p.domain(), p.codomain());
        prop_assume!(!a.is_empty() && !b.is_empty());
        prop_assert!(xst_core::spaces::arrow(&p, &a, &b));
    }
}
