//! Integration tests for the extension layer: the text query language,
//! aggregation, closures, snapshots, and parallel loading — all running
//! against the same stored data.

use proptest::prelude::*;
use xst_core::ops::{pair_compose, transitive_closure, union};
use xst_core::{ExtendedSet, Value};
use xst_relational::{algebra, group_by, parse_query, Aggregate, Catalog};
use xst_storage::{
    load_identity_parallel, restore, snapshot, BufferPool, Record, Schema, SetEngine, Storage,
    Table,
};
use xst_testkit::arb_pair_relation;

fn stored_catalog() -> (Storage, BufferPool, Catalog, Table) {
    let storage = Storage::new();
    let mut employees = Table::create(&storage, Schema::new(["eid", "dept", "salary"]));
    employees
        .load(&[
            Record::new([Value::Int(1), Value::sym("eng"), Value::Int(120)]),
            Record::new([Value::Int(2), Value::sym("eng"), Value::Int(100)]),
            Record::new([Value::Int(3), Value::sym("ops"), Value::Int(90)]),
            Record::new([Value::Int(4), Value::sym("ops"), Value::Int(95)]),
            Record::new([Value::Int(5), Value::sym("hr"), Value::Int(80)]),
        ])
        .unwrap();
    let mut reports = Table::create(&storage, Schema::new(["mgr", "sub"]));
    reports
        .load(&[
            Record::new([Value::Int(1), Value::Int(2)]),
            Record::new([Value::Int(2), Value::Int(3)]),
            Record::new([Value::Int(3), Value::Int(4)]),
        ])
        .unwrap();
    let pool = BufferPool::new(storage.clone(), 16);
    let mut catalog = Catalog::new();
    catalog
        .register_table("employees", &employees, &pool)
        .unwrap();
    catalog.register_table("reports", &reports, &pool).unwrap();
    (storage, pool, catalog, employees)
}

#[test]
fn text_queries_over_stored_tables() {
    let (_, _, catalog, _) = stored_catalog();
    let r = parse_query("from employees | where dept = eng | select eid")
        .unwrap()
        .run(&catalog)
        .unwrap();
    assert_eq!(r.len(), 2);
    let joined = parse_query("from employees | join reports on eid = mgr | select dept, sub")
        .unwrap()
        .run(&catalog)
        .unwrap();
    assert_eq!(joined.len(), 3);
}

#[test]
fn aggregation_over_stored_tables() {
    let (_, _, catalog, _) = stored_catalog();
    let by_dept = group_by(
        catalog.get("employees").unwrap(),
        &["dept"],
        &[
            (Aggregate::Count, "eid"),
            (Aggregate::Sum, "salary"),
            (Aggregate::Max, "salary"),
        ],
    )
    .unwrap();
    assert_eq!(by_dept.len(), 3);
    assert!(by_dept.contains_row(&[
        Value::sym("eng"),
        Value::Int(2),
        Value::Int(220),
        Value::Int(120)
    ]));
    assert!(by_dept.contains_row(&[
        Value::sym("hr"),
        Value::Int(1),
        Value::Int(80),
        Value::Int(80)
    ]));
}

#[test]
fn transitive_closure_of_stored_reporting_chain() {
    let (_, pool, catalog, _) = stored_catalog();
    let _ = pool;
    let reports = catalog.get("reports").unwrap();
    let tc = transitive_closure(reports.identity());
    // Chain 1→2→3→4 closes to 6 pairs.
    assert_eq!(tc.card(), 6);
    assert!(tc.contains_element(&ExtendedSet::pair(Value::Int(1), Value::Int(4)).into_value()));
    // Management distance 2 = relation squared.
    let two = pair_compose(reports.identity(), reports.identity());
    assert_eq!(two.card(), 2);
}

#[test]
fn semijoin_antijoin_against_engines() {
    let (_, _, catalog, _) = stored_catalog();
    let employees = catalog.get("employees").unwrap();
    let reports = catalog.get("reports").unwrap();
    let managers = algebra::semijoin(employees, reports, "eid", "mgr").unwrap();
    assert_eq!(managers.len(), 3, "eids 1,2,3 manage someone");
    let leaves = algebra::antijoin(employees, reports, "eid", "mgr").unwrap();
    assert_eq!(leaves.len(), 2, "eids 4,5 manage no one");
    assert_eq!(
        union(managers.identity(), leaves.identity()),
        *employees.identity()
    );
}

#[test]
fn snapshot_restore_preserves_query_results() {
    let (storage, _, catalog, employees) = stored_catalog();
    let q = parse_query("from employees | where dept = ops | select eid").unwrap();
    let before = q.run(&catalog).unwrap();

    let image = snapshot(&storage);
    let restored = restore(&image).unwrap();
    let pool2 = BufferPool::new(restored.clone(), 16);

    // Rebuild the employees relation from the restored disk: file ids are
    // stable, so the original Table handle's pages exist on the clone.
    let identity = {
        let mut b = xst_core::SetBuilder::new();
        let pages = restored.page_count(employees.file.file_id()).unwrap();
        for page in 0..pages {
            let p = pool2
                .get(xst_storage::PageId {
                    file: employees.file.file_id(),
                    page,
                })
                .unwrap();
            for payload in p.iter() {
                b.classical_elem(Value::Set(Record::decode(payload).unwrap().to_tuple()));
            }
        }
        b.build()
    };
    let rel = xst_relational::Relation::from_identity(
        xst_relational::RelSchema::new(["eid", "dept", "salary"]).unwrap(),
        identity,
    )
    .unwrap();
    let mut catalog2 = Catalog::new();
    catalog2.register("employees", rel);
    let after = q.run(&catalog2).unwrap();
    assert_eq!(before.identity(), after.identity());
}

#[test]
fn parallel_load_agrees_with_engine() {
    let storage = Storage::new();
    let mut t = Table::create(&storage, Schema::new(["id", "v"]));
    let rows: Vec<Record> = (0..3_000)
        .map(|i| Record::new([Value::Int(i), Value::Int(i % 97)]))
        .collect();
    t.load(&rows).unwrap();
    let pool = BufferPool::new(storage, 8);
    let sequential = SetEngine::load(&t, &pool).unwrap();
    for threads in [1, 3, 8] {
        assert_eq!(
            &load_identity_parallel(&t.file, threads).unwrap(),
            sequential.identity()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Transitive closure is idempotent and contains its base relation.
    #[test]
    fn closure_laws(r in arb_pair_relation()) {
        let tc = transitive_closure(&r);
        prop_assert!(r.is_subset(&tc));
        prop_assert_eq!(transitive_closure(&tc), tc.clone());
        // Closed under composition with the base relation.
        prop_assert!(pair_compose(&tc, &r).is_subset(&tc));
    }

    /// Relational composition is associative.
    #[test]
    fn pair_compose_associative(
        r in arb_pair_relation(),
        s in arb_pair_relation(),
        t in arb_pair_relation(),
    ) {
        prop_assert_eq!(
            pair_compose(&pair_compose(&r, &s), &t),
            pair_compose(&r, &pair_compose(&s, &t))
        );
    }

    /// Group counts over any single-column relation sum to its size.
    #[test]
    fn group_counts_partition_the_relation(values in prop::collection::vec(0i64..10, 0..40)) {
        let rel = xst_relational::Relation::from_rows(
            xst_relational::RelSchema::new(["v"]).unwrap(),
            values.iter().map(|&v| vec![Value::Int(v)]).collect::<Vec<_>>(),
        ).unwrap();
        let g = group_by(&rel, &["v"], &[(Aggregate::Count, "v")]).unwrap();
        let total: i64 = g
            .rows()
            .iter()
            .map(|row| match row[1] {
                Value::Int(n) => n,
                _ => unreachable!("count is an int"),
            })
            .sum();
        // Relation is a set: duplicates collapse, so counts are all 1 and
        // sum to the number of distinct values.
        prop_assert_eq!(total as usize, rel.len());
        prop_assert_eq!(g.len(), rel.len());
    }

    /// Snapshot → restore is the identity on disks, whatever the contents.
    #[test]
    fn snapshot_roundtrip_random_tables(rows in prop::collection::vec((0i64..1000, 0i64..1000), 0..50)) {
        let storage = Storage::new();
        let mut t = Table::create(&storage, Schema::new(["a", "b"]));
        let records: Vec<Record> = rows
            .iter()
            .map(|&(a, b)| Record::new([Value::Int(a), Value::Int(b)]))
            .collect();
        t.load(&records).unwrap();
        let restored = restore(&snapshot(&storage)).unwrap();
        prop_assert_eq!(restored.file_count(), storage.file_count());
        let pages = storage.page_count(t.file.file_id()).unwrap();
        for page in 0..pages {
            let id = xst_storage::PageId { file: t.file.file_id(), page };
            prop_assert_eq!(
                storage.read_page(id).unwrap().as_bytes().to_vec(),
                restored.read_page(id).unwrap().as_bytes().to_vec()
            );
        }
    }
}
