//! End-to-end distributed tracing and per-request accounting, over real
//! TCP.
//!
//! The contract under test is the protocol-v2 tentpole: a client that
//! originates a trace wraps its requests in `Traced{ctx, ..}`; the
//! serving session adopts the context, so every server-side span —
//! `session.request` down through `query.eval`, `txn.*`, `wal.*` —
//! stitches under the *client's* trace id, parented under the client's
//! span. The batteries here:
//!
//! * one wire request ⇒ one stitched trace (client + server spans share
//!   a trace id, with correct parentage), exportable as xst-trace/1
//!   JSON through the `TraceDump` request;
//! * per-request cost accounting: the server's request log attributes
//!   WAL appends and plan nodes to the exact request that caused them;
//! * v1 ↔ v2 back-compat: a v1 peer handshakes, is seated at v1, and
//!   drives the engine with plain (untraced) requests;
//! * a hand-rolled v2 peer's `Traced` wrapper is adopted verbatim.
//!
//! Client and server share this process, hence one span collector: the
//! stitched forest is directly inspectable without log shipping.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;
use xst_client::Client;
use xst_core::xset;
use xst_query::Expr;
use xst_server::{Request, Response, ServedEngine, Server, ServerConfig};

/// One test at a time: the span collector and request log are
/// process-global, and each test clears them.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    xst_obs::enable();
    xst_obs::collector().clear();
    xst_obs::request_log().clear();
    guard
}

fn start_server() -> (Server, String) {
    let engine = std::sync::Arc::new(ServedEngine::new());
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    (server, addr)
}

fn connect(addr: &str) -> Client {
    let c = Client::connect(addr, "tracing-e2e").unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn one_wire_request_yields_one_stitched_trace() {
    let _guard = serial();
    let (_server, addr) = start_server();
    let mut client = connect(&addr);
    assert_eq!(client.negotiated_version(), xst_server::PROTO_VERSION);

    let set = client
        .eval(&Expr::lit(xset! {"a", "b"}).union(Expr::lit(xset! {"c"})))
        .unwrap();
    assert_eq!(set.card(), 3);

    let spans = xst_obs::collector().take_spans();
    let client_span = spans
        .iter()
        .find(|s| s.name == "client.request")
        .expect("client span recorded");
    let session_span = spans
        .iter()
        .find(|s| s.name == "session.request")
        .expect("server span recorded");
    // One trace id spans the wire...
    assert_ne!(client_span.trace_id, 0);
    assert_eq!(client_span.trace_id, session_span.trace_id);
    // ...with the server's root parented under the client's span.
    assert_eq!(session_span.parent, Some(client_span.id));
    // The engine's own spans sit inside the same trace.
    let eval_span = spans
        .iter()
        .find(|s| s.name == "query.eval")
        .expect("query span recorded");
    assert_eq!(eval_span.trace_id, client_span.trace_id);
}

#[test]
fn trace_dump_exports_the_stitched_forest_as_json() {
    let _guard = serial();
    let (_server, addr) = start_server();
    let mut client = connect(&addr);

    client.eval(&Expr::lit(xset! {"x"})).unwrap();
    let json = client.trace_dump().unwrap();
    assert!(json.contains("\"schema\":\"xst-trace/1\""), "{json}");
    assert!(json.contains("\"name\":\"client.request\""), "{json}");
    assert!(json.contains("\"name\":\"session.request\""), "{json}");

    // Both ends carry the same 0x-prefixed trace id, exactly once each
    // side of the wire: grep for a trace id that tags a client span and
    // a session span alike.
    let spans = xst_obs::collector().take_spans();
    let client_span = spans.iter().find(|s| s.name == "client.request").unwrap();
    let wanted = format!("\"trace_id\":\"{:#018x}\"", client_span.trace_id);
    assert!(json.contains(&wanted), "{wanted} missing from {json}");
}

#[test]
fn request_log_attributes_costs_to_requests() {
    let _guard = serial();
    let (_server, addr) = start_server();
    let mut client = connect(&addr);

    // An autocommitted put appends to the WAL; an eval burns plan nodes.
    client.put("t", &xset! {"p", "q", "r"}).unwrap();
    client
        .eval(&Expr::table("t").union(Expr::lit(xset! {"s"})))
        .unwrap();

    let table = client.request_log(false, 100).unwrap();
    assert!(table.contains("put(t)"), "{table}");
    assert!(table.contains("eval"), "{table}");
    // The put's cost bill charges the WAL work to that request.
    let put_line = table
        .lines()
        .find(|l| l.contains("put(t)"))
        .expect("put line present");
    assert!(put_line.contains("wal="), "{put_line}");
    // The eval's bill charges plan nodes and result rows.
    let eval_line = table
        .lines()
        .find(|l| l.contains(" eval "))
        .expect("eval line present");
    assert!(eval_line.contains("nodes="), "{eval_line}");
    assert!(eval_line.contains("rows="), "{eval_line}");

    // The slow ring stays empty while the threshold is disarmed.
    let slow = client.request_log(true, 100).unwrap();
    assert!(slow.contains("(no requests recorded)"), "{slow}");
}

#[test]
fn v1_peer_handshakes_and_drives_the_engine_untraced() {
    let _guard = serial();
    let (_server, addr) = start_server();

    // A hand-rolled protocol-v1 peer: Hello v1 must be seated at v1.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let hello = Request::Hello {
        version: 1,
        client: "legacy".into(),
    };
    xst_server::write_frame(&mut raw, &hello.encode()).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Welcome { version, .. } => assert_eq!(version, 1),
        other => unreachable!("expected v1 welcome, got {other:?}"),
    }

    // Plain v1 requests work end to end — no Traced wrapper anywhere.
    let eval = Request::Eval {
        expr: Expr::lit(xset! {"v1"}),
    };
    xst_server::write_frame(&mut raw, &eval.encode()).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Value { set } => assert_eq!(set.card(), 1),
        other => unreachable!("expected value, got {other:?}"),
    }

    // The session still accounted the request — under its own fresh
    // trace, since the peer sent no context.
    let spans = xst_obs::collector().take_spans();
    let session_span = spans
        .iter()
        .find(|s| s.name == "session.request")
        .expect("v1 requests are still spanned");
    assert_ne!(session_span.trace_id, 0);
    assert_eq!(session_span.parent, None);
}

#[test]
fn hand_rolled_traced_request_is_adopted_verbatim() {
    let _guard = serial();
    let (_server, addr) = start_server();

    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let hello = Request::Hello {
        version: xst_server::PROTO_VERSION,
        client: "hand-rolled".into(),
    };
    xst_server::write_frame(&mut raw, &hello.encode()).unwrap();
    xst_server::read_frame(&mut raw).unwrap();

    let ctx = xst_obs::TraceContext {
        trace_id: 0xDEAD_BEEF_CAFE_F00D,
        parent_span: 41,
    };
    let wrapped = Request::Traced {
        ctx,
        req: Box::new(Request::Ping),
    };
    xst_server::write_frame(&mut raw, &wrapped.encode()).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Pong
    ));

    let spans = xst_obs::collector().take_spans();
    let session_span = spans
        .iter()
        .find(|s| s.name == "session.request" && s.trace_id == ctx.trace_id)
        .expect("session adopted the remote context");
    assert_eq!(session_span.parent, Some(ctx.parent_span));
}

#[test]
fn client_tracing_opt_out_sends_plain_requests() {
    let _guard = serial();
    let (_server, addr) = start_server();
    let mut client = connect(&addr);
    client.set_tracing(false);

    client.eval(&Expr::lit(xset! {"quiet"})).unwrap();
    let spans = xst_obs::collector().take_spans();
    // No client-side span, and the server minted its own root trace.
    assert!(!spans.iter().any(|s| s.name == "client.request"));
    let session_span = spans
        .iter()
        .find(|s| s.name == "session.request")
        .expect("server still accounts the request");
    assert_eq!(session_span.parent, None);
}
