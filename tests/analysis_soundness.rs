//! Analyzer soundness: the static analysis in `xst-analyze` must never
//! lie about a plan it accepts or a rewrite it verifies.
//!
//! Four claims are under test, on random plans over random bindings:
//!
//! 1. **Acceptance is sound** — a plan the analyzer *proves safe*
//!    evaluates without scope/type errors; a plan it *rejects* really
//!    does fail at runtime (the gate never blocks a working plan).
//! 2. **Emptiness is sound** — a `ProvablyEmpty` verdict means the plan
//!    evaluates to `∅`.
//! 3. **Signatures over-approximate** — every scope observed in the
//!    evaluated result is admitted by the inferred scope signature.
//! 4. **Rewrites preserve signatures** — for every rule in
//!    `default_rules()`, applied alone and all together, the analyzer
//!    finds no contradiction between the plan before and after
//!    (`verify_rewrite`), so optimization cannot change what the
//!    analysis promised.
//!
//! A deterministic test additionally pins the rule roster and drives each
//! rule on a plan where it actually fires.

use proptest::prelude::*;
use xst_analyze::{verify_rewrite, Emptiness};
use xst_core::ops::Scope;
use xst_core::{xset, xtuple, ExtendedSet, Value};
use xst_query::{check, default_rules, env_for, eval, Bindings, Expr, Optimizer};
use xst_testkit::{arb_pair_relation, arb_set};

const TABLES: [&str; 3] = ["t0", "t1", "t2"];

/// Scope specs drawn from the shapes the rules pattern-match on.
fn arb_sigma() -> BoxedStrategy<ExtendedSet> {
    prop_oneof![
        Just(ExtendedSet::tuple([Value::Int(1)])),
        Just(ExtendedSet::tuple([Value::Int(2)])),
        Just(ExtendedSet::tuple([Value::Int(1), Value::Int(2)])),
        Just(ExtendedSet::empty()),
    ]
    .boxed()
}

fn arb_scope() -> BoxedStrategy<Scope> {
    prop_oneof![
        Just(Scope::pairs()),
        Just(Scope::pairs_inverse()),
        (arb_sigma(), arb_sigma()).prop_map(|(s1, s2)| Scope::new(s1, s2)),
    ]
    .boxed()
}

/// Random expression trees over every operator the analyzer abstracts —
/// including `Cross`, whose runtime failure mode (scope collision) is
/// exactly what claim 1 is about.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        3 => prop::sample::select(TABLES.to_vec()).prop_map(Expr::table),
        2 => arb_set(1).prop_map(Expr::lit),
        1 => Just(Expr::lit(ExtendedSet::empty())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        3 => leaf,
        1 => (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(a, b)| a.union(b)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(a, b)| a.intersect(b)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(a, b)| a.difference(b)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(a, b)| a.cross(b)),
        1 => (arb_expr(depth - 1), arb_sigma(), arb_expr(depth - 1))
            .prop_map(|(r, s, a)| r.restrict(s, a)),
        1 => (arb_expr(depth - 1), arb_sigma()).prop_map(|(r, s)| r.domain(s)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1), arb_scope())
            .prop_map(|(r, a, sc)| r.image(a, sc)),
        1 => (arb_expr(depth - 1), arb_scope(), arb_expr(depth - 1), arb_scope())
            .prop_map(|(f, s, g, o)| f.rel_product(s, g, o)),
    ]
    .boxed()
}

fn arb_env() -> impl Strategy<Value = Bindings> {
    (arb_set(2), arb_set(2), arb_pair_relation()).prop_map(|(a, b, c)| {
        let mut env = Bindings::new();
        env.insert(TABLES[0].into(), a);
        env.insert(TABLES[1].into(), b);
        env.insert(TABLES[2].into(), c);
        env
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Claim 1 (acceptance) + claim 2 (emptiness) + claim 3 (signature
    /// over-approximation), checked together on one evaluation.
    #[test]
    fn accepted_plans_evaluate_soundly(expr in arb_expr(3), env in arb_env()) {
        let analysis = check(&expr, &env);
        let result = eval(&expr, &env);

        if analysis.is_rejected() {
            // Rejection claims the plan provably fails; it must fail.
            prop_assert!(result.is_err(), "rejected plan evaluated fine: {expr}");
            return Ok(());
        }
        if analysis.proved_safe() {
            prop_assert!(
                result.is_ok(),
                "proved-safe plan failed at runtime: {expr}: {:?}",
                result.err()
            );
        }
        let Ok(set) = result else { return Ok(()) };

        // Emptiness verdicts are sound in both provable directions.
        match analysis.root.set.emptiness {
            Emptiness::ProvablyEmpty => {
                prop_assert!(set.is_empty(), "ProvablyEmpty but got {set}")
            }
            Emptiness::ProvablyNonEmpty => {
                prop_assert!(!set.is_empty(), "ProvablyNonEmpty but got ∅ for {expr}")
            }
            Emptiness::Unknown => {}
        }

        // Cardinality bounds bracket the observed cardinality.
        let card = set.card() as u64;
        let bounds = &analysis.root.set.card;
        prop_assert!(bounds.lo <= card, "card {card} below lower bound for {expr}");
        if let Some(hi) = bounds.hi {
            prop_assert!(card <= hi, "card {card} above upper bound {hi} for {expr}");
        }

        // The inferred signature admits every observed member scope.
        for (_, scope) in set.iter() {
            prop_assert!(
                analysis.root.set.sig.admits(scope),
                "scope {scope} escapes inferred sig {} for {expr}",
                analysis.root.set.sig
            );
        }
    }

    /// Claim 4: each rule alone, driven to fixpoint, yields a plan whose
    /// analysis does not contradict the original's.
    #[test]
    fn each_rule_preserves_signatures(expr in arb_expr(3), env in arb_env()) {
        let aenv = env_for(&expr, &env);
        let rule_count = default_rules().len();
        for i in 0..rule_count {
            let mut rules = default_rules();
            let rule = rules.swap_remove(i);
            let name = rule.name();
            let (optimized, _trace) = Optimizer::with_rules(vec![rule]).optimize(&expr);
            if let Err(m) = verify_rewrite(&expr, &optimized, &aenv) {
                prop_assert!(false, "{name}: {m} on {expr}");
            }
        }
    }

    /// Claim 4 for the full default rule set at fixpoint — what `eval`
    /// actually runs.
    #[test]
    fn full_optimizer_preserves_signatures(expr in arb_expr(3), env in arb_env()) {
        let (optimized, _trace) = Optimizer::new().optimize(&expr);
        let aenv = env_for(&expr, &env);
        if let Err(m) = verify_rewrite(&expr, &optimized, &aenv) {
            prop_assert!(false, "{m} on {expr}");
        }
    }
}

/// The rule roster is pinned: a new rule must be added here (and thereby
/// enter the verification tests above), and each rule is exercised on a
/// plan where it actually fires, with the rewrite machine-verified.
#[test]
fn every_default_rule_fires_and_verifies() {
    let names: Vec<&str> = default_rules().iter().map(|r| r.name()).collect();
    assert_eq!(
        names,
        [
            "empty-prune",
            "boolean-idempotence",
            "image-fusion",
            "domain-fusion",
            "image-union-merge",
            "input-union-merge",
            "composition-fusion",
            "analyzer-empty-prune",
        ],
        "default_rules() roster changed; extend the trigger table below"
    );

    let t = || Expr::table("t0");
    let sig1 = || ExtendedSet::tuple([Value::Int(1)]);
    let rel = || {
        Expr::lit(xset![
            xtuple!["a", "x"].into_value(),
            xtuple!["b", "y"].into_value()
        ])
    };
    let rel2 = || Expr::lit(xset![xtuple!["c", "z"].into_value()]);
    // One plan per rule, in roster order, chosen so the rule fires.
    let triggers: Vec<Expr> = vec![
        // empty-prune: ∅ ∪ t
        Expr::lit(ExtendedSet::empty()).union(t()),
        // boolean-idempotence: t ∪ t
        t().union(t()),
        // image-fusion: domain(restrict(r, σ, a), σ)
        rel().restrict(sig1(), t()).domain(sig1()),
        // domain-fusion: domain(domain(r, σ), σ)
        rel().domain(sig1()).domain(sig1()),
        // image-union-merge: q[a] ∪ r[a] (shared input)
        rel()
            .image(t(), Scope::pairs())
            .union(rel2().image(t(), Scope::pairs())),
        // input-union-merge: q[a] ∪ q[b] (shared relation)
        rel()
            .image(t(), Scope::pairs())
            .union(rel().image(Expr::table("t1"), Scope::pairs())),
        // composition-fusion: g[f[x]] with literal carriers
        rel().image(rel().image(t(), Scope::pairs()), Scope::pairs()),
        // analyzer-empty-prune: an intersection of scope-disjoint literals
        // (the plain empty-prune rule cannot see it — neither side is ∅)
        Expr::lit(xset!["a" => 1, "b" => 1])
            .intersect(Expr::lit(xset!["a" => 2]))
            .union(t()),
    ];

    let mut bindings = Bindings::new();
    bindings.insert("t0".into(), xset!["m"]);
    bindings.insert("t1".into(), xset!["n"]);

    for (i, trigger) in triggers.iter().enumerate() {
        let mut rules = default_rules();
        let rule = rules.swap_remove(i);
        let name = rule.name();
        let (optimized, trace) = Optimizer::with_rules(vec![rule]).optimize(trigger);
        assert!(
            trace.iter().any(|step| step.rule == name),
            "rule {name} did not fire on its trigger plan {trigger}"
        );
        let aenv = env_for(trigger, &bindings);
        verify_rewrite(trigger, &optimized, &aenv)
            .unwrap_or_else(|m| panic!("rule {name} failed verification: {m}"));
    }
}
