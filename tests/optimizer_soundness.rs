//! Optimizer soundness: every rewrite rule in
//! `xst_query::rules::default_rules()` must preserve semantics — the
//! rewritten plan evaluates to the same extended set as the naive plan on
//! random bindings. Each rule is exercised alone (so a bug cannot hide
//! behind another rule's rewrite) and the full rule set is exercised
//! together through the fixpoint optimizer.

use proptest::prelude::*;
use xst_core::ops::Scope;
use xst_core::{ExtendedSet, Value};
use xst_query::{default_rules, eval, eval_parallel, Bindings, Expr, Optimizer};
use xst_testkit::{arb_pair_relation, arb_set};

const TABLES: [&str; 3] = ["t0", "t1", "t2"];

/// Scope specs drawn from the shapes the rules pattern-match on.
fn arb_sigma() -> BoxedStrategy<ExtendedSet> {
    prop_oneof![
        Just(ExtendedSet::tuple([Value::Int(1)])),
        Just(ExtendedSet::tuple([Value::Int(2)])),
        Just(ExtendedSet::tuple([Value::Int(1), Value::Int(2)])),
        Just(ExtendedSet::tuple([Value::Int(2), Value::Int(1)])),
        Just(ExtendedSet::empty()),
    ]
    .boxed()
}

fn arb_scope() -> BoxedStrategy<Scope> {
    prop_oneof![
        Just(Scope::pairs()),
        Just(Scope::pairs_inverse()),
        (arb_sigma(), arb_sigma()).prop_map(|(s1, s2)| Scope::new(s1, s2)),
    ]
    .boxed()
}

/// Random expression trees biased toward the shapes the rules fire on:
/// unions of images (merge rules), restrict-then-domain (image fusion),
/// nested domains (domain fusion), literal pipelines (composition fusion),
/// duplicate subtrees (idempotence) and empty literals (pruning). `Cross`
/// is excluded: it can error, and pruning an erroring subtree is allowed
/// to change the outcome, which is not the equivalence under test here.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        3 => prop::sample::select(TABLES.to_vec()).prop_map(Expr::table),
        2 => arb_set(1).prop_map(Expr::lit),
        1 => Just(Expr::lit(ExtendedSet::empty())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        2 => leaf,
        1 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| a.union(b)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| a.intersect(b)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| a.difference(b)),
        // Duplicate subtree: the idempotence rule's trigger.
        1 => arb_expr(depth - 1).prop_map(|a| a.clone().union(a)),
        // Restrict-then-domain: the image-fusion trigger.
        1 => (arb_expr(depth - 1), arb_sigma(), arb_expr(depth - 1), arb_sigma())
            .prop_map(|(r, s1, a, s2)| r.restrict(s1, a).domain(s2)),
        1 => (arb_expr(depth - 1), arb_sigma(), arb_expr(depth - 1))
            .prop_map(|(r, s, a)| r.restrict(s, a)),
        // Nested domains: the domain-fusion trigger.
        1 => (arb_expr(depth - 1), arb_sigma(), arb_sigma())
            .prop_map(|(r, s1, s2)| r.domain(s1).domain(s2)),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1), arb_scope())
            .prop_map(|(r, a, sc)| r.image(a, sc)),
        // Union of images sharing the input: the C.1(i) merge trigger.
        1 => (arb_expr(depth - 1), arb_expr(depth - 1), arb_expr(depth - 1), arb_scope())
            .prop_map(|(q, r, a, sc)| {
                q.image(a.clone(), sc.clone()).union(r.image(a, sc))
            }),
        // Union of images sharing the relation: the C.1(a) merge trigger.
        1 => (arb_expr(depth - 1), arb_expr(depth - 1), arb_expr(depth - 1), arb_scope())
            .prop_map(|(q, a, b, sc)| {
                q.clone().image(a, sc.clone()).union(q.image(b, sc))
            }),
        // Literal-carrier pipeline: the Theorem-11.2 fusion trigger.
        1 => (arb_pair_relation(), arb_pair_relation(), arb_expr(depth - 1))
            .prop_map(|(f, g, x)| {
                Expr::lit(g).image(Expr::lit(f).image(x, Scope::pairs()), Scope::pairs())
            }),
    ]
    .boxed()
}

fn arb_env() -> impl Strategy<Value = Bindings> {
    (arb_set(2), arb_set(2), arb_pair_relation()).prop_map(|(a, b, c)| {
        let mut env = Bindings::new();
        env.insert(TABLES[0].into(), a);
        env.insert(TABLES[1].into(), b);
        env.insert(TABLES[2].into(), c);
        env
    })
}

/// Run one rule (by position in `default_rules()`) to fixpoint and check
/// the rewritten plan against the naive plan.
fn check_single_rule(rule_index: usize, expr: &Expr, env: &Bindings) -> Result<(), String> {
    let mut rules = default_rules();
    let rule = rules.swap_remove(rule_index);
    let name = rule.name();
    let (optimized, _trace) = Optimizer::with_rules(vec![rule]).optimize(expr);
    let naive = eval(expr, env).map_err(|e| format!("naive eval failed: {e:?}"))?;
    let rewritten =
        eval(&optimized, env).map_err(|e| format!("{name}: rewritten eval failed: {e:?}"))?;
    if naive != rewritten {
        return Err(format!("{name}: rewrite changed the result"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every rule alone is semantics-preserving on random plans/bindings.
    #[test]
    fn each_rule_is_sound(expr in arb_expr(3), env in arb_env()) {
        let rule_count = default_rules().len();
        for i in 0..rule_count {
            if let Err(msg) = check_single_rule(i, &expr, &env) {
                prop_assert!(false, "{} on {:?}", msg, expr);
            }
        }
    }

    /// The full default rule set, driven to fixpoint, is sound — and the
    /// optimized plan also agrees under parallel evaluation.
    #[test]
    fn full_optimizer_is_sound(expr in arb_expr(3), env in arb_env()) {
        let (optimized, _trace) = Optimizer::new().optimize(&expr);
        let naive = eval(&expr, &env).unwrap();
        let rewritten = eval(&optimized, &env).unwrap();
        prop_assert_eq!(&naive, &rewritten);

        let par = xst_core::ops::Parallelism::new(4).with_threshold(1);
        let (par_result, stats) = eval_parallel(&optimized, &env, &par).unwrap();
        prop_assert_eq!(&naive, &par_result);
        prop_assert_eq!(stats.result_members, naive.card() as u64);
    }

    /// The optimizer never grows a plan.
    #[test]
    fn optimizer_never_grows_plans(expr in arb_expr(3)) {
        let (optimized, _trace) = Optimizer::new().optimize(&expr);
        prop_assert!(optimized.size() <= expr.size());
    }
}
