//! The deterministic network-fault sweep over the cross-process
//! cluster: every coordinator↔shard message of a scripted multi-shard
//! workload is a numbered fault site (the network mirror of the
//! storage battery's I/O sites), and each sweep injects one fault kind
//! at every site, then proves the standing contract after recovery:
//!
//! * **acknowledged ⇒ recoverable** — a commit whose round returned
//!   `Ok` survives coordinator death, lost messages, stalled links,
//!   severed connections, and full shard restarts;
//! * **unacknowledged ⇒ atomically absent** — a commit that never got
//!   its `Ok` leaves no residue on any shard;
//! * **never split-brain** — checked per shard fragment, so a
//!   transaction cannot be half-applied across the partition.
//!
//! Determinism: the coordinator issues strictly sequential round-trips,
//! so the shared message-site counter is a total order; the only clock
//! in play is the client's read deadline, and every timeout funnels
//! into the same abandon-and-recover path. Tests serialize on one lock
//! (global metric registry + one-CPU box).

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;
use xst_client::coord::{CoordError, Coordinator};
use xst_core::ExtendedSet;
use xst_testkit::cluster::{
    count_message_sites, drive_cluster_workload, expected_set, run_with_fault, start_shard_servers,
    sweep_fault_kind, txn_set, verify_recovery, CLUSTER_SHARDS, CLUSTER_TABLE, CLUSTER_TIMEOUT,
    CLUSTER_TXNS,
};
use xst_testkit::netfault::{NetFaultKind, NetFaultPlan, ProxyGroup};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    xst_obs::enable();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The clean path first: coordinator over proxies, full workload, wire
/// recovery, shard restarts — no faults. Also pins the site count's
/// stability: two dry runs must count identical sites, or the sweep's
/// numbering is not deterministic.
#[test]
fn clean_cluster_run_and_site_count_is_deterministic() {
    let _guard = serial();
    let a = count_message_sites();
    let b = count_message_sites();
    assert_eq!(a, b, "message-site numbering must be deterministic");
    // The workload is CLUSTER_TXNS × (begin + put + 2PC commit) across
    // CLUSTER_SHARDS shards plus one handshake per shard; every part
    // crosses the wire, so the count has a hard floor.
    assert!(
        a >= (CLUSTER_SHARDS * 2 + CLUSTER_TXNS * CLUSTER_SHARDS * 8) as u64,
        "implausibly few message sites: {a}"
    );
    verify_recovery(run_with_fault(u64::MAX, NetFaultKind::DropMessage));
}

#[test]
fn sweep_drop_at_every_message_site() {
    let _guard = serial();
    let sites = count_message_sites();
    let fired = sweep_fault_kind(sites, NetFaultKind::DropMessage);
    assert_eq!(fired, sites, "every planned drop must actually fire");
}

#[test]
fn sweep_hold_past_timeout_at_every_message_site() {
    let _guard = serial();
    let sites = count_message_sites();
    let fired = sweep_fault_kind(sites, NetFaultKind::Hold);
    assert_eq!(fired, sites, "every planned stall must actually fire");
}

#[test]
fn sweep_sever_at_every_message_site() {
    let _guard = serial();
    let sites = count_message_sites();
    let fired = sweep_fault_kind(sites, NetFaultKind::Sever);
    assert_eq!(fired, sites, "every planned sever must actually fire");
}

#[test]
fn sweep_coordinator_kill_at_every_message_site() {
    let _guard = serial();
    let sites = count_message_sites();
    let fired = sweep_fault_kind(sites, NetFaultKind::KillAll);
    assert_eq!(fired, sites, "every planned kill must actually fire");
}

/// Satellite: the coordinator dies **between its decision-log flush and
/// the Decide round** — the exact gray zone of 2PC — then restarts over
/// the same durable devices against the same live servers, over real
/// TCP. Every shard must converge to the logged COMMIT even though no
/// Decide was ever delivered.
#[test]
fn coordinator_killed_after_decision_flush_recovers_to_commit() {
    let _guard = serial();
    let cluster = start_shard_servers(CLUSTER_SHARDS);
    let mut coord = Coordinator::connect(&cluster.addrs, Some(CLUSTER_TIMEOUT)).expect("connect");
    let devices = coord.devices();

    // A first, fully-delivered transaction (baseline contents).
    coord.begin().expect("begin 0");
    coord.put(CLUSTER_TABLE, &txn_set(0)).expect("put 0");
    coord.commit().expect("commit 0");

    // The second transaction: decision flushed, Decide suppressed.
    coord.kill_after_decision(true);
    coord.begin().expect("begin 1");
    coord.put(CLUSTER_TABLE, &txn_set(1)).expect("put 1");
    let err = coord.commit().expect_err("the kill hook must fire");
    let gtxn = match err {
        CoordError::KilledAfterDecision { gtxn } => gtxn,
        other => panic!("wanted KilledAfterDecision, got {other}"),
    };
    drop(coord); // the crash: connections die, no Decide ever sent

    // Both shards hold an in-doubt prepare for gtxn now; restart the
    // coordinator node over its surviving decision log.
    let (storage, wal) = devices;
    let mut recovered = Coordinator::recover(&cluster.addrs, storage, wal, Some(CLUSTER_TIMEOUT))
        .expect("coordinator restart");
    assert!(
        recovered.committed_gtxns().contains(&gtxn),
        "the decision for gtxn {gtxn} must be replayed from the log"
    );
    let got = recovered.get(CLUSTER_TABLE).expect("read after recovery");
    assert_eq!(
        got,
        expected_set(&[0, 1]),
        "every shard must converge to the logged COMMIT decision"
    );
}

/// The same gray zone, but the coordinator restarts with the servers
/// *also* restarted from durable state — acknowledged-after-decision
/// commits survive everything dying at once.
#[test]
fn decision_flush_survives_whole_cluster_restart() {
    let _guard = serial();
    let cluster = start_shard_servers(CLUSTER_SHARDS);
    let mut coord = Coordinator::connect(&cluster.addrs, Some(CLUSTER_TIMEOUT)).expect("connect");
    let devices = coord.devices();
    coord.kill_after_decision(true);
    coord.begin().expect("begin");
    coord.put(CLUSTER_TABLE, &txn_set(0)).expect("put");
    let err = coord.commit().expect_err("the kill hook must fire");
    assert!(matches!(err, CoordError::KilledAfterDecision { .. }));
    drop(coord);
    verify_recovery(xst_testkit::cluster::RunOutcome {
        acked: vec![0],
        error: None,
        devices: Some(devices),
        cluster,
    });
}

/// A dead shard during the workload: sever only that shard's link and
/// let the coordinator abort cleanly; nothing may land anywhere.
#[test]
fn unreachable_shard_aborts_whole_transaction() {
    let _guard = serial();
    let cluster = start_shard_servers(CLUSTER_SHARDS);
    let plan = NetFaultPlan::count_only();
    let proxies = ProxyGroup::start(&cluster.addrs, &plan).expect("proxies");
    let mut coord = Coordinator::connect(proxies.addrs(), Some(CLUSTER_TIMEOUT)).expect("connect");
    let devices = coord.devices();
    coord.begin().expect("begin");
    coord.put(CLUSTER_TABLE, &txn_set(0)).expect("put");
    proxies.sever_all(); // the network dies before commit
    let err = drive_commit(&mut coord).expect_err("commit over a dead network must fail");
    assert!(
        !matches!(err, CoordError::KilledAfterDecision { .. }),
        "no decision may exist for an unacknowledged commit"
    );
    drop(coord);
    drop(proxies);
    verify_recovery(xst_testkit::cluster::RunOutcome {
        acked: vec![],
        error: Some(err),
        devices: Some(devices),
        cluster,
    });
}

fn drive_commit(coord: &mut Coordinator) -> Result<u64, CoordError> {
    coord.commit()
}

/// Reads after recovery are exact: the recovered coordinator's gather
/// equals the in-process expectation member-for-member, and per-shard
/// timeouts still bound every recovery round-trip.
#[test]
fn recovered_reads_match_workload_exactly() {
    let _guard = serial();
    let cluster = start_shard_servers(CLUSTER_SHARDS);
    let mut coord = Coordinator::connect(&cluster.addrs, Some(CLUSTER_TIMEOUT)).expect("connect");
    let (acked, err) = drive_cluster_workload(&mut coord);
    assert!(err.is_none(), "clean run failed: {err:?}");
    assert_eq!(acked.len(), CLUSTER_TXNS);
    let got = coord.get(CLUSTER_TABLE).expect("gather");
    let want: ExtendedSet = expected_set(&acked);
    assert_eq!(got, want);
    // Fresh coordinator, fresh devices, same servers: reads are a
    // property of the cluster, not of the coordinator instance.
    let mut other = Coordinator::connect(&cluster.addrs, Some(Duration::from_secs(5)))
        .expect("second coordinator");
    assert_eq!(other.get(CLUSTER_TABLE).expect("gather 2"), want);
}
