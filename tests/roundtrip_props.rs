//! Property tests on representation invariants: canonical form, boolean
//! algebra laws, display/parse round-trips, and storage codec round-trips
//! over arbitrarily nested heterogeneous values.

use proptest::prelude::*;
use xst_core::ops::{difference, disjoint, intersection, symmetric_difference, union};
use xst_core::parse::parse_set;
use xst_core::{ExtendedSet, Value};
use xst_storage::codec::{decode_exact, encode_to_vec};
use xst_testkit::{arb_set, arb_tricky_atom, arb_tricky_set, arb_value};

proptest! {
    /// Canonical form: building from any permutation of members yields the
    /// same set.
    #[test]
    fn canonical_form_is_order_insensitive(s in arb_set(2), seed in any::<u64>()) {
        let mut members = s.members().to_vec();
        // Cheap deterministic shuffle.
        let n = members.len();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i + 7) % (i + 1);
            members.swap(i, j);
        }
        prop_assert_eq!(ExtendedSet::from_members(members), s);
    }

    /// Union is commutative, associative, idempotent; ∅ is its identity.
    #[test]
    fn union_laws(a in arb_set(2), b in arb_set(2), c in arb_set(2)) {
        prop_assert_eq!(union(&a, &b), union(&b, &a));
        prop_assert_eq!(union(&union(&a, &b), &c), union(&a, &union(&b, &c)));
        prop_assert_eq!(union(&a, &a), a.clone());
        prop_assert_eq!(union(&a, &ExtendedSet::empty()), a);
    }

    /// Intersection laws and absorption.
    #[test]
    fn intersection_laws(a in arb_set(2), b in arb_set(2), c in arb_set(2)) {
        prop_assert_eq!(intersection(&a, &b), intersection(&b, &a));
        prop_assert_eq!(
            intersection(&intersection(&a, &b), &c),
            intersection(&a, &intersection(&b, &c))
        );
        prop_assert_eq!(intersection(&a, &a), a.clone());
        prop_assert!(intersection(&a, &ExtendedSet::empty()).is_empty());
        // Absorption: A ∩ (A ∪ B) = A and A ∪ (A ∩ B) = A.
        prop_assert_eq!(intersection(&a, &union(&a, &b)), a.clone());
        prop_assert_eq!(union(&a, &intersection(&a, &b)), a);
    }

    /// Distributivity of ∩ over ∪ and vice versa.
    #[test]
    fn distributive_laws(a in arb_set(2), b in arb_set(2), c in arb_set(2)) {
        prop_assert_eq!(
            intersection(&a, &union(&b, &c)),
            union(&intersection(&a, &b), &intersection(&a, &c))
        );
        prop_assert_eq!(
            union(&a, &intersection(&b, &c)),
            intersection(&union(&a, &b), &union(&a, &c))
        );
    }

    /// Difference interacts with union/intersection as in classical algebra.
    #[test]
    fn difference_laws(a in arb_set(2), b in arb_set(2)) {
        let d = difference(&a, &b);
        prop_assert!(d.is_subset(&a));
        prop_assert!(disjoint(&d, &intersection(&a, &b)));
        prop_assert_eq!(union(&d, &intersection(&a, &b)), a.clone());
        prop_assert_eq!(
            symmetric_difference(&a, &b),
            union(&difference(&a, &b), &difference(&b, &a))
        );
        prop_assert!(difference(&a, &a).is_empty());
    }

    /// Subset is a partial order consistent with the boolean operations.
    #[test]
    fn subset_laws(a in arb_set(2), b in arb_set(2)) {
        prop_assert!(intersection(&a, &b).is_subset(&a));
        prop_assert!(a.is_subset(&union(&a, &b)));
        prop_assert_eq!(a.is_subset(&b) && b.is_subset(&a), a == b);
        prop_assert_eq!(a.is_subset(&b), intersection(&a, &b) == a);
    }

    /// Display → parse round-trips every generated set exactly.
    #[test]
    fn display_parse_roundtrip(s in arb_set(3)) {
        let text = s.to_string();
        let back = parse_set(&text).unwrap();
        prop_assert_eq!(back, s, "text was {}", text);
    }

    /// Display → parse also round-trips the grammar's hard corners: string
    /// escapes (`\"`, `\\`, `\n`, `\t`), grammar-significant characters
    /// *inside* quotes, byte literals, floats with kept fractions, nested
    /// scopes, tuples, and the empty set — a value universe the small-atom
    /// strategy above never reaches.
    #[test]
    fn display_parse_roundtrip_tricky(s in arb_tricky_set(2)) {
        let text = s.to_string();
        let back = parse_set(&text).unwrap();
        prop_assert_eq!(back, s, "text was {}", text);
    }

    /// The binary codec round-trips the tricky universe too.
    #[test]
    fn codec_roundtrip_tricky(s in arb_tricky_set(2)) {
        let v = Value::Set(s);
        let bytes = encode_to_vec(&v);
        prop_assert_eq!(decode_exact(&bytes).unwrap(), v);
    }

    /// Tricky atoms survive a display→parse trip through a scoped member
    /// position as well as an element position.
    #[test]
    fn tricky_atoms_roundtrip_as_scopes(e in arb_tricky_atom(), s in arb_tricky_atom()) {
        let set = ExtendedSet::from_members(vec![xst_core::Member::new(e, s)]);
        let text = set.to_string();
        prop_assert_eq!(parse_set(&text).unwrap(), set, "text was {}", text);
    }

    /// Binary codec round-trips every generated value exactly.
    #[test]
    fn codec_roundtrip(v in arb_value(3)) {
        let bytes = encode_to_vec(&v);
        let back = decode_exact(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Codec output is canonical: equal values encode identically.
    #[test]
    fn codec_is_canonical(s in arb_set(2), seed in any::<u64>()) {
        let mut members = s.members().to_vec();
        let n = members.len();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i + 3) % (i + 1);
            members.swap(i, j);
        }
        let reordered = ExtendedSet::from_members(members);
        prop_assert_eq!(
            encode_to_vec(&Value::Set(s)),
            encode_to_vec(&Value::Set(reordered))
        );
    }

    /// Tuple recognition is stable under the tuple constructor.
    #[test]
    fn tuples_recognize_themselves(components in prop::collection::vec(arb_value(1), 0..5)) {
        let n = components.len();
        let t = ExtendedSet::tuple(components.clone());
        prop_assert_eq!(t.tuple_len(), Some(n));
        prop_assert_eq!(t.as_tuple().unwrap(), components);
    }

    /// Ord on values is a total order: antisymmetric and transitive over
    /// random triples.
    #[test]
    fn value_order_is_total(a in arb_value(2), b in arb_value(2), c in arb_value(2)) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
