//! Stress and adversarial-shape tests: deep nesting, wide sets, long
//! pipelines, and bulk storage — the "repro ≤ 4 because nested
//! heterogeneous sets are awkward with ownership" risk, exercised hard.

use xst_core::ops::{image, sigma_domain, transitive_closure, union, Scope};
use xst_core::parse::parse_set;
use xst_core::{ExtendedSet, Process, Value};
use xst_storage::{BufferPool, Record, Schema, SetEngine, Storage, Table, Wal};

/// Build a tower: s0 = ∅, s_{k+1} = { s_k ^ s_k } — both element *and*
/// scope nest.
fn tower(depth: usize) -> Value {
    let mut v = Value::empty_set();
    for _ in 0..depth {
        v = Value::Set(ExtendedSet::singleton(v.clone(), v));
    }
    v
}

#[test]
fn deep_nesting_is_cheap_to_build_clone_and_compare() {
    // Structural comparison of *independently built* towers doubles work
    // per level (element and scope both nest), so keep that at a depth
    // where 2^d is trivial...
    let a = tower(16);
    let b = tower(16);
    assert_eq!(a, b);
    assert_ne!(a, tower(15));
    assert_eq!(a.depth(), 17); // tower(0) = ∅ is itself depth 1
                               // ...while *shared* spines compare in O(1) via the Arc fast path even
                               // at depths where structural comparison would take 2^500 steps.
    let deep = tower(500);
    let clone = deep.clone();
    assert_eq!(clone, deep);
}

#[test]
fn deep_nesting_roundtrips_through_display_and_codec() {
    // Keep display depth moderate (string size grows with depth).
    let v = tower(12);
    let text = v.to_string();
    assert_eq!(xst_core::parse::parse_value(&text).unwrap(), v);
    let bytes = xst_storage::codec::encode_to_vec(&v);
    assert_eq!(xst_storage::codec::decode_exact(&bytes).unwrap(), v);
}

#[test]
fn wide_sets_canonicalize_and_merge() {
    let n = 200_000i64;
    let a = ExtendedSet::classical((0..n).map(Value::Int));
    let b = ExtendedSet::classical((n / 2..n + n / 2).map(Value::Int));
    let u = union(&a, &b);
    assert_eq!(u.card(), (2 * n - n / 2) as usize);
    assert!(a.is_subset(&u));
    assert!(b.is_subset(&u));
    // Membership stays logarithmic — spot-check a few probes.
    for probe in [0, n / 2, n - 1, n + n / 2 - 1] {
        assert!(u.contains_classical(&Value::Int(probe)));
    }
    assert!(!u.contains_classical(&Value::Int(-1)));
}

#[test]
fn long_composition_chains_stay_correct() {
    // 32 single-step relations i ↦ i+1; the composed behavior adds 32.
    let stages: Vec<Process> = (0..32)
        .map(|k| {
            Process::pairs(ExtendedSet::classical((0..64).map(|i| {
                Value::Set(ExtendedSet::pair(
                    Value::Int(k * 100 + i),
                    Value::Int((k + 1) * 100 + i),
                ))
            })))
        })
        .collect();
    let mut composed = stages[0].clone();
    for s in &stages[1..] {
        composed = Process::compose(s, &composed).unwrap();
    }
    let input = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([Value::Int(7)]))]);
    let out = composed.apply(&input);
    assert_eq!(
        out,
        ExtendedSet::classical([Value::Set(ExtendedSet::tuple([Value::Int(3207)]))])
    );
    // And matches the step-by-step evaluation.
    let mut x = input;
    for s in &stages {
        x = s.apply(&x);
    }
    assert_eq!(out, x);
}

#[test]
fn closure_on_a_large_random_graph_terminates() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let edges = ExtendedSet::classical((0..400).map(|_| {
        Value::Set(ExtendedSet::pair(
            Value::Int(rng.gen_range(0..60)),
            Value::Int(rng.gen_range(0..60)),
        ))
    }));
    let tc = transitive_closure(&edges);
    assert!(edges.is_subset(&tc));
    assert!(tc.card() <= 60 * 60, "bounded by the full square");
    // Idempotent even on dense graphs.
    assert_eq!(transitive_closure(&tc), tc);
}

#[test]
fn image_over_a_large_heterogeneous_relation() {
    // Mix pair tuples, triples, atoms, and scoped members in one carrier.
    let mut members = Vec::new();
    for i in 0..5_000i64 {
        members.push(Value::Set(ExtendedSet::pair(
            Value::Int(i),
            Value::Int(i * 2),
        )));
    }
    for i in 0..500i64 {
        members.push(Value::Set(ExtendedSet::tuple([
            Value::Int(i),
            Value::sym("mid"),
            Value::Int(i * 3),
        ])));
    }
    members.push(Value::sym("stray-atom"));
    let r = ExtendedSet::classical(members);
    let witness = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([Value::Int(250)]))]);
    let out = image(&r, &witness, &Scope::pairs());
    // Pair ⟨250,500⟩ and triple ⟨250,mid,750⟩ both match on position 1;
    // σ2 = ⟨2⟩ projects their second components.
    assert_eq!(out.to_string(), "{⟨500⟩, ⟨mid⟩}");
}

#[test]
fn parser_survives_large_inputs() {
    let big = ExtendedSet::classical((0..2_000).map(Value::Int));
    let text = big.to_string();
    assert!(text.len() > 8_000);
    assert_eq!(parse_set(&text).unwrap(), big);
}

#[test]
fn bulk_storage_identity_for_100k_records() {
    let storage = Storage::new();
    let mut t = Table::create(&storage, Schema::new(["id", "blob"]));
    let rows: Vec<Record> = (0..100_000i64)
        .map(|i| Record::new([Value::Int(i), Value::bytes(i.to_le_bytes())]))
        .collect();
    t.load(&rows).unwrap();
    let pool = BufferPool::new(storage, 16);
    let engine = SetEngine::load(&t, &pool).unwrap();
    assert_eq!(engine.identity().card(), 100_000);
    let hit = engine.select("id", &Value::Int(99_999)).unwrap();
    assert_eq!(hit.card(), 1);
}

#[test]
fn wal_replay_of_many_records() {
    let storage = Storage::new();
    let wal = Wal::new();
    let schema = Schema::new(["id"]);
    let mut t = xst_storage::LoggedTable::create(&storage, schema.clone(), wal.clone());
    for i in 0..10_000i64 {
        t.append(&Record::new([Value::Int(i)])).unwrap();
    }
    drop(t); // crash
    let recovered = xst_storage::LoggedTable::recover(&storage, schema, wal).unwrap();
    let pool = BufferPool::new(storage, 8);
    assert_eq!(recovered.table.file.read_all(&pool).unwrap().len(), 10_000);
}

#[test]
fn domain_projection_of_deeply_scoped_members() {
    // Members whose scopes are themselves towers: σ-domain must project
    // scopes recursively without blowing up.
    let deep_scope = tower(30);
    let r =
        ExtendedSet::from_pairs([(Value::Set(ExtendedSet::pair("a", "b")), deep_scope.clone())]);
    let d = sigma_domain(&r, &ExtendedSet::tuple([1i64]));
    assert_eq!(d.card(), 1);
    // The deep scope projects to ∅ (its members are not tuple-positioned),
    // leaving ⟨a⟩^∅.
    let (e, s) = d
        .iter()
        .next()
        .map(|(e, s)| (e.clone(), s.clone()))
        .unwrap();
    assert_eq!(e.to_string(), "⟨a⟩");
    assert!(s.is_empty_set());
}
