//! Cross-crate observability integration: the span collector, the metrics
//! registry, and EXPLAIN ANALYZE are exercised through the public surface
//! of every layer at once — query evaluation over core kernels, the
//! storage path behind the shell's `.store`/`.load`, and the exposition
//! formats the shell prints.
//!
//! The collector switch and the registry are process-global, so every test
//! here serializes on one mutex and leaves the collector enabled and
//! drained on exit.

use std::sync::{Mutex, MutexGuard, OnceLock};

use xst_core::ops::Parallelism;
use xst_core::{xtuple, ExtendedSet, Scope, Value};
use xst_query::{eval_parallel, explain_analyze, Bindings, Expr};
use xst_shell::Session;

/// Global-state lock: spans and metrics land in process-wide sinks, so
/// tests that toggle or read them must not interleave.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A deterministic scoped set: `n` members over a colliding element domain.
fn scoped(n: i64, stride: i64) -> ExtendedSet {
    ExtendedSet::from_pairs((0..n).map(|i| (Value::Int((i * stride) % (2 * n)), Value::Int(i % 5))))
}

/// A classical relation of `n` pairs over a small key domain.
fn pairs(n: i64) -> ExtendedSet {
    ExtendedSet::classical((0..n).map(|i| {
        Value::Set(ExtendedSet::pair(
            Value::Int(i % 20),
            Value::Int((i * 3) % 20),
        ))
    }))
}

fn env() -> Bindings {
    [
        ("s1".to_string(), scoped(400, 3)),
        ("s2".to_string(), scoped(400, 7)),
        ("r".to_string(), pairs(120)),
        ("probe".to_string(), pairs(6)),
    ]
    .into_iter()
    .collect()
}

/// Every operator shape the analyzed executor supports, as used below.
fn shapes() -> Vec<Expr> {
    vec![
        Expr::table("s1").union(Expr::table("s2")),
        Expr::table("s1")
            .union(Expr::table("s2"))
            .intersect(Expr::table("s1")),
        Expr::table("s1").difference(Expr::table("s2")),
        Expr::table("r").domain(xtuple![2]),
        Expr::table("r").restrict(xtuple![1], Expr::table("probe")),
        Expr::table("r").image(Expr::table("probe"), Scope::pairs()),
        Expr::table("r").rel_product(Scope::pairs(), Expr::table("r"), Scope::pairs()),
        Expr::lit(scoped(24, 5)).cross(Expr::lit(scoped(24, 11))),
    ]
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE is a second executor: it must agree with eval_parallel.
// ---------------------------------------------------------------------------

#[test]
fn explain_analyze_matches_eval_parallel_across_shapes() {
    let _g = obs_lock();
    let env = env();
    for threads in [1, 4] {
        let par = Parallelism::new(threads).with_threshold(1);
        for expr in shapes() {
            let (expect, _) = eval_parallel(&expr, &env, &par).unwrap();
            let report = explain_analyze(&expr, &env, &par).unwrap();
            assert_eq!(
                report.result, expect,
                "threads={threads}, expr={expr:?}: analyzed execution diverged"
            );
            assert_eq!(report.root.rows_out, expect.card() as u64);
            let text = report.to_string();
            assert!(text.contains("operators:"), "{text}");
            assert!(text.contains("rows="), "{text}");
        }
    }
}

// ---------------------------------------------------------------------------
// Spans nest across crate boundaries: query.eval → eval.* → par.*.
// ---------------------------------------------------------------------------

#[test]
fn spans_nest_across_query_and_core_layers() {
    let _g = obs_lock();
    xst_obs::enable();
    xst_obs::collector().take_spans();

    let env = env();
    let par = Parallelism::new(2).with_threshold(1);
    let expr = Expr::table("s1")
        .union(Expr::table("s2"))
        .intersect(Expr::table("s1"));
    eval_parallel(&expr, &env, &par).unwrap();

    let spans = xst_obs::collector().take_spans();
    let name_of = |id: u64| spans.iter().find(|s| s.id == id).map(|s| s.name);
    let find = |name: &str| spans.iter().find(|s| s.name == name);

    let root = find("query.eval").expect("query.eval span recorded");
    assert!(root.parent.is_none(), "query.eval is a root span");
    for kernel in ["par.union", "par.intersection"] {
        let span = find(kernel).unwrap_or_else(|| panic!("{kernel} span recorded"));
        // Walk the parent chain back to the query root: the core kernel's
        // span must sit underneath the query layer's operator span.
        let mut chain = Vec::new();
        let mut cur = span.parent;
        while let Some(pid) = cur {
            let parent = spans.iter().find(|s| s.id == pid).expect("parent recorded");
            chain.push(parent.name);
            cur = parent.parent;
        }
        assert_eq!(
            chain.last().copied(),
            Some("query.eval"),
            "{kernel}: {chain:?}"
        );
        assert!(
            chain.iter().any(|n| n.starts_with("eval.")),
            "{kernel} not under an operator span: {chain:?} (names: {:?})",
            spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
        assert!(
            span.attrs.iter().any(|(k, _)| *k == "chunks"),
            "fan-out attr"
        );
        let _ = name_of(span.id);
    }
}

// ---------------------------------------------------------------------------
// The disabled path is inert: no spans buffered, no counter movement.
// ---------------------------------------------------------------------------

#[test]
fn disabled_collector_records_nothing_anywhere() {
    let _g = obs_lock();
    let probe = xst_obs::registry().counter("obs_itest_probe_total", "integration probe");
    xst_obs::disable();
    xst_obs::collector().take_spans();
    let before = probe.get();

    probe.inc();
    let env = env();
    let par = Parallelism::new(2).with_threshold(1);
    for expr in shapes() {
        eval_parallel(&expr, &env, &par).unwrap();
    }

    assert!(
        xst_obs::collector().is_empty(),
        "spans recorded while disabled"
    );
    assert_eq!(probe.get(), before, "counter moved while disabled");
    xst_obs::enable();
}

// ---------------------------------------------------------------------------
// The shell end to end: .explain, .store/.load, .metrics exposition.
// ---------------------------------------------------------------------------

#[test]
fn shell_explain_store_and_metrics_flow() {
    let _g = obs_lock();
    let mut s = Session::new();
    let run = |s: &mut Session, line: &str| -> String {
        s.eval_line(line)
            .unwrap_or_else(|e| panic!("'{line}' failed: {e}"))
            .unwrap_or_default()
    };

    run(&mut s, "let s1 = {a^1, b^2, c}");
    run(&mut s, "let s2 = {b^2, d}");

    let report = run(&mut s, ".explain union s1 s2");
    assert!(report.contains("operators:"), "{report}");
    assert!(report.contains("union"), "{report}");
    assert!(report.contains("rows=3"), "{report}");
    assert!(report.contains("result members"), "{report}");

    run(&mut s, ".store s1");
    let loaded = run(&mut s, ".load s1 as t1");
    assert!(loaded.contains("t1"), "{loaded}");
    assert_eq!(run(&mut s, "union t1 s2"), run(&mut s, "union s1 s2"));

    let text = run(&mut s, ".metrics");
    for family in [
        "xst_storage_pool_hit_ratio",
        "xst_storage_pool_hits_total",
        "xst_storage_wal_append_ns_bucket",
        "xst_storage_page_write_ns_bucket",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }

    let json = run(&mut s, ".metrics json");
    assert!(json.contains("\"xst_storage_pool_hit_ratio\""), "{json}");

    // Reset must zero the storage families it owns: a fresh exposition
    // shows the counters again only after new traffic.
    assert_eq!(run(&mut s, ".metrics reset"), "metrics reset");
    let text = run(&mut s, ".metrics");
    let hits_zeroed = text
        .lines()
        .filter(|l| l.starts_with("xst_storage_pool_hits_total"))
        .all(|l| l.ends_with(" 0"));
    assert!(hits_zeroed, "hit counters survive reset:\n{text}");
}

// ---------------------------------------------------------------------------
// The hit-ratio gauge distinguishes "no traffic" from "all misses".
// ---------------------------------------------------------------------------

#[test]
fn idle_pool_hit_ratio_exports_the_negative_sentinel() {
    use xst_storage::{BufferPool, Storage, PAGE_SIZE};

    let _g = obs_lock();
    xst_obs::enable();
    let gauge = xst_obs::registry().gauge(
        "xst_storage_pool_hit_ratio",
        "Aggregate buffer-pool hit ratio over all shards (0..1; -1 before any traffic).",
    );

    // An idle pool must not masquerade as a 0% hit rate (the signature of
    // a *thrashing* pool): it publishes the -1 sentinel instead.
    let storage = Storage::new();
    let pool = BufferPool::new(storage.clone(), 4);
    pool.publish_metrics();
    assert_eq!(gauge.get(), -1.0, "idle pool must publish the sentinel");

    // After real traffic the gauge returns to the honest 0..=1 range.
    let file = storage.create_file();
    let mut page = xst_storage::Page::new();
    page.insert(&[7u8; 16]).unwrap();
    storage.append_page(file, &page).unwrap();
    let id = xst_storage::PageId { file, page: 0 };
    let _ = pool.get(id).unwrap();
    let _ = pool.get(id).unwrap();
    pool.publish_metrics();
    let ratio = gauge.get();
    assert!(
        (0.0..=1.0).contains(&ratio),
        "after traffic the ratio is honest, got {ratio} (page size {PAGE_SIZE})"
    );
}

// ---------------------------------------------------------------------------
// Trace toggling through the shell switches the whole process.
// ---------------------------------------------------------------------------

#[test]
fn shell_trace_show_renders_cross_layer_spans() {
    let _g = obs_lock();
    let mut s = Session::new();
    let run = |s: &mut Session, line: &str| -> String {
        s.eval_line(line)
            .unwrap_or_else(|e| panic!("'{line}' failed: {e}"))
            .unwrap_or_default()
    };

    run(&mut s, ".trace on");
    run(&mut s, "let a = {1, 2, 3}");
    run(&mut s, ".explain union a {4}");
    let shown = run(&mut s, ".trace show");
    assert!(shown.contains("query.explain_analyze"), "{shown}");

    // Showing drains the buffer; a second show is empty.
    assert_eq!(run(&mut s, ".trace show"), "no spans collected");

    run(&mut s, ".trace off");
    run(&mut s, "union a {5}");
    run(&mut s, ".trace on");
    assert_eq!(run(&mut s, ".trace show"), "no spans collected");
}
