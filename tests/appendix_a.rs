//! Appendix A, reproduced exactly: nested application is ambiguous, and the
//! two bracketings of `f_(σ) g_(ω) (h)` are both non-empty yet different.
//!
//! The fixture is the paper's own:
//!
//! ```text
//! f = { ⟨y,z⟩^⟨∅,∅⟩, ⟨a,x,b,k⟩^⟨∅,∅,∅,∅⟩ }
//! g = { ⟨x,y⟩^⟨∅,∅⟩, ⟨a,b⟩^⟨∅,∅⟩ }
//! p = { ⟨x,k⟩^⟨∅,∅⟩ }
//! h = { ⟨x⟩^⟨∅⟩ }
//! σ = ⟨⟨1,3⟩, ⟨2,4⟩⟩,  ω = ⟨⟨1⟩, ⟨2⟩⟩
//! ```

use xst_core::process::{enumerate_interpretations, eval_interpretation, Evaluated};
use xst_core::{ExtendedSet, Process, Scope, Value};

fn empty() -> Value {
    Value::empty_set()
}

/// A tuple whose membership scope is the tuple of ∅s of matching arity —
/// the paper writes these as `⟨y,z⟩^{⟨∅,∅⟩}`.
fn tagged_tuple(components: &[&str]) -> (Value, Value) {
    let elem = ExtendedSet::tuple(components.iter().map(Value::sym));
    let scope = ExtendedSet::tuple(components.iter().map(|_| empty()));
    (Value::Set(elem), Value::Set(scope))
}

fn fixture() -> (Process, Process, Process, ExtendedSet) {
    let f = ExtendedSet::from_pairs([
        tagged_tuple(&["y", "z"]),
        tagged_tuple(&["a", "x", "b", "k"]),
    ]);
    let g = ExtendedSet::from_pairs([tagged_tuple(&["x", "y"]), tagged_tuple(&["a", "b"])]);
    let p = ExtendedSet::from_pairs([tagged_tuple(&["x", "k"])]);
    let h = {
        let (e, s) = tagged_tuple(&["x"]);
        ExtendedSet::from_pairs([(e, s)])
    };
    let sigma = Scope::new(ExtendedSet::tuple([1i64, 3]), ExtendedSet::tuple([2i64, 4]));
    let omega = Scope::pairs();
    (
        Process::new(f, sigma),
        Process::new(g, omega.clone()),
        Process::new(p, omega),
        h,
    )
}

#[test]
fn domain_projections_match_paper() {
    let (f, _, _, _) = fixture();
    // 𝔇_σ1(f) = {⟨y⟩^⟨∅⟩, ⟨a,b⟩^⟨∅,∅⟩}
    let d1 = f.domain();
    let (y1, ys) = tagged_tuple(&["y"]);
    let (ab, abs) = tagged_tuple(&["a", "b"]);
    assert_eq!(d1, ExtendedSet::from_pairs([(y1, ys), (ab, abs)]));
    // 𝔇_σ2(f) = {⟨z⟩^⟨∅⟩, ⟨x,k⟩^⟨∅,∅⟩}
    let d2 = f.codomain();
    let (z1, zs) = tagged_tuple(&["z"]);
    let (xk, xks) = tagged_tuple(&["x", "k"]);
    assert_eq!(d2, ExtendedSet::from_pairs([(z1, zs), (xk, xks)]));
}

#[test]
fn intermediate_results_match_paper() {
    let (f, g, p, h) = fixture();

    // f_(σ)({⟨y⟩^⟨∅⟩}) = {⟨z⟩^⟨∅⟩}
    let (y, ys) = tagged_tuple(&["y"]);
    let input_y = ExtendedSet::from_pairs([(y, ys)]);
    let (z, zs) = tagged_tuple(&["z"]);
    assert_eq!(f.apply(&input_y), ExtendedSet::from_pairs([(z, zs)]));

    // f_(σ)(g) = {⟨x,k⟩^⟨∅,∅⟩} — the carrier of p.
    let fg = f.apply(&g.graph);
    assert_eq!(fg, p.graph);

    // g_(ω)(h) = {⟨y⟩^⟨∅⟩}
    let (y2, ys2) = tagged_tuple(&["y"]);
    assert_eq!(g.apply(&h), ExtendedSet::from_pairs([(y2, ys2)]));

    // p_(ω)(h) = {⟨k⟩^⟨∅⟩}
    let (k, ks) = tagged_tuple(&["k"]);
    assert_eq!(p.apply(&h), ExtendedSet::from_pairs([(k, ks)]));
}

#[test]
fn the_two_bracketings_differ_and_are_both_nonempty() {
    let (f, g, _, h) = fixture();

    // Interpretation (a): f_(σ)(g_(ω)(h)).
    let a = f.apply(&g.apply(&h));
    // Interpretation (b): (f_(σ)(g_(ω)))(h) — nested application first.
    let b = f.apply_to_process(&g).apply(&h);

    assert!(!a.is_empty(), "interpretation (a) must be non-empty");
    assert!(!b.is_empty(), "interpretation (b) must be non-empty");
    assert_ne!(a, b, "the bracketings disagree (k ≠ z)");

    let (z, zs) = tagged_tuple(&["z"]);
    assert_eq!(a, ExtendedSet::from_pairs([(z, zs)]));
    let (k, ks) = tagged_tuple(&["k"]);
    assert_eq!(b, ExtendedSet::from_pairs([(k, ks)]));
}

#[test]
fn enumerated_interpretations_cover_both_bracketings() {
    let (f, g, _, h) = fixture();
    let trees = enumerate_interpretations(2);
    assert_eq!(trees.len(), 2, "two processes → two interpretations");
    let results: Vec<ExtendedSet> = trees
        .iter()
        .map(
            |t| match eval_interpretation(t, &[f.clone(), g.clone()], &h).unwrap() {
                Evaluated::Set(s) => s,
                Evaluated::Process(_) => panic!("chains ending in a set input realize sets"),
            },
        )
        .collect();
    // The two enumerated results are exactly {⟨z⟩} and {⟨k⟩}.
    let (z, zs) = tagged_tuple(&["z"]);
    let (k, ks) = tagged_tuple(&["k"]);
    let expect_a = ExtendedSet::from_pairs([(z, zs)]);
    let expect_b = ExtendedSet::from_pairs([(k, ks)]);
    assert!(results.contains(&expect_a));
    assert!(results.contains(&expect_b));
}

#[test]
fn three_process_chain_has_five_interpretations() {
    // Example 4.2's count, evaluated. The Appendix B self-application
    // carrier makes the ambiguity semantic: different bracketings of
    // f_(ω) f_(ω) f_(σ) (x) realize different sets.
    use xst_testkit::{appendix_b, singleton};
    let (carrier, sigma, omega) = appendix_b();
    let f_sigma = Process::new(carrier.clone(), sigma);
    let f_omega = Process::new(carrier, omega);
    let chain = [f_omega.clone(), f_omega, f_sigma];
    let input = singleton("a");

    let trees = enumerate_interpretations(3);
    assert_eq!(trees.len(), 5);
    let mut distinct = std::collections::BTreeSet::new();
    for t in &trees {
        let r = eval_interpretation(t, &chain, &input).unwrap();
        let Evaluated::Set(s) = r else {
            panic!("chain applied to a set realizes a set")
        };
        distinct.insert(format!("{s}"));
    }
    // At least two of the five differ (ambiguity is semantic, not just
    // syntactic): the fully-right-nested bracketing permutes tuples while
    // the left-nested one lands in the g3 swap behavior.
    assert!(distinct.len() >= 2, "interpretations: {distinct:?}");
    assert!(
        distinct.contains("{⟨b⟩}"),
        "left-nested = g3(a) = {{⟨b⟩}}: {distinct:?}"
    );
}
