//! The crash-safety tentpole: exhaustive fault-site enumeration.
//!
//! For the scripted workload in `xst_testkit::crash` — batched appends,
//! interleaved checkpoints, a final scan — these tests crash at *every*
//! injectable I/O site, for every fault kind, recover, and assert the
//! durability contract at each one:
//!
//! > acknowledged ⇒ recoverable, unacknowledged ⇒ atomically absent.
//!
//! On top of the exhaustive sweep: retry-absorption runs (transient faults
//! under a retrying policy must be invisible), give-up runs (persistent
//! transient failure must surface, not loop), and a proptest-randomized
//! fault-schedule sweep.

use proptest::prelude::*;
use xst_storage::{FaultKind, FaultPlan, FaultSchedule, RetryPolicy};
use xst_testkit::crash::{
    count_sharded_sites, count_sites, count_txn_sites, drive_sharded_workload, drive_txn_workload,
    drive_workload, exhaustive_crash_sweep, exhaustive_sharded_crash_sweep,
    exhaustive_txn_crash_sweep, recover_and_rows, recover_sharded_table, recover_txn_tables,
    BATCHES, SHARDED_COMMITS, SHARDED_SPREAD, TXN_COMMITS,
};

// ---------------------------------------------------------------------------
// The exhaustive sweep, one fault kind per test so failures localize.
// ---------------------------------------------------------------------------

#[test]
fn every_site_recovers_from_failed_writes() {
    let sites = exhaustive_crash_sweep(FaultKind::WriteFail);
    assert!(sites >= 10, "workload too small to mean anything: {sites}");
}

#[test]
fn every_site_recovers_from_torn_writes() {
    // 37 bytes: tears mid-frame for pages and mid-header for WAL flushes.
    exhaustive_crash_sweep(FaultKind::TornWrite(37));
}

#[test]
fn every_site_recovers_from_nearly_complete_torn_writes() {
    // A large prefix persists — the nastier tear, where the frame looks
    // almost intact.
    exhaustive_crash_sweep(FaultKind::TornWrite(4000));
}

#[test]
fn every_site_recovers_from_failed_syncs() {
    exhaustive_crash_sweep(FaultKind::SyncFail);
}

#[test]
fn every_site_recovers_from_short_reads() {
    exhaustive_crash_sweep(FaultKind::ShortRead(512));
}

#[test]
fn every_site_recovers_from_unretried_transient_faults() {
    exhaustive_crash_sweep(FaultKind::Transient);
}

// ---------------------------------------------------------------------------
// Retry absorbs transient faults; bounded attempts give up honestly.
// ---------------------------------------------------------------------------

#[test]
fn periodic_transient_faults_are_invisible_under_retry() {
    let plan = FaultPlan::new(FaultSchedule::EveryNth(3), FaultKind::Transient);
    let run = drive_workload(Some(&plan), RetryPolicy::default());
    assert_eq!(run.crashed, None, "retry must absorb every periodic fault");
    assert_eq!(run.acked.len(), BATCHES.iter().sum::<usize>());
    assert!(plan.injected_count() > 0, "faults actually fired");
    // And the contract still holds if we crash right at the end.
    assert_eq!(recover_and_rows(&run), run.acked);
}

#[test]
fn persistent_transient_failure_exhausts_the_budget_and_surfaces() {
    // Every single I/O op faults: retries fault too, so the first batch
    // flush must give up after its bounded attempts.
    let plan = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::Transient);
    let run = drive_workload(Some(&plan), RetryPolicy::new(3, 10, 1_000));
    assert!(run.crashed.is_some(), "persistent failure must surface");
    assert_eq!(run.acked.len(), 0, "nothing was ever acknowledged");
    assert_eq!(
        plan.injected_count(),
        3,
        "exactly max_attempts flushes tried"
    );
    assert_eq!(recover_and_rows(&run), Vec::new());
}

#[test]
fn site_count_is_stable_across_runs() {
    // Determinism underwrites the whole harness: the same workload must
    // enumerate the same sites every time, with no wall-clock randomness.
    let a = count_sites();
    let b = count_sites();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Fault-compose: the same sweep one layer up, through the transaction
// layer. Acknowledged commits survive recovery in full; conflict-aborted,
// failed, and in-flight transactions are atomically absent.
// ---------------------------------------------------------------------------

#[test]
fn every_site_recovers_committed_txns_from_failed_writes() {
    let sites = exhaustive_txn_crash_sweep(FaultKind::WriteFail);
    assert!(
        sites >= 10,
        "txn workload too small to mean anything: {sites}"
    );
}

#[test]
fn every_site_recovers_committed_txns_from_torn_writes() {
    exhaustive_txn_crash_sweep(FaultKind::TornWrite(37));
}

#[test]
fn every_site_recovers_committed_txns_from_failed_syncs() {
    exhaustive_txn_crash_sweep(FaultKind::SyncFail);
}

#[test]
fn every_site_recovers_committed_txns_from_short_reads() {
    exhaustive_txn_crash_sweep(FaultKind::ShortRead(512));
}

#[test]
fn every_site_recovers_committed_txns_from_unretried_transients() {
    exhaustive_txn_crash_sweep(FaultKind::Transient);
}

#[test]
fn txn_commits_survive_fault_free_crash_and_inflight_txns_vanish() {
    // The no-fault baseline: all commits acknowledged, the in-flight
    // transaction buffered at crash time leaves no trace.
    let run = drive_txn_workload(None, RetryPolicy::none());
    assert_eq!(run.crashed, None);
    let expected_t = TXN_COMMITS - (TXN_COMMITS - 1) / 3; // inserts minus periodic deletes
    assert_eq!(run.acked[0].1.len(), expected_t);
    assert_eq!(run.acked[1].1.len(), TXN_COMMITS);
    assert_eq!(recover_txn_tables(&run), run.acked);
}

#[test]
fn txn_retry_absorbs_periodic_transients() {
    let plan = FaultPlan::new(FaultSchedule::EveryNth(3), FaultKind::Transient);
    let run = drive_txn_workload(Some(&plan), RetryPolicy::default());
    assert_eq!(run.crashed, None, "retry must absorb every periodic fault");
    assert!(plan.injected_count() > 0, "faults actually fired");
    assert_eq!(recover_txn_tables(&run), run.acked);
}

#[test]
fn txn_site_count_is_stable_across_runs() {
    assert_eq!(count_txn_sites(), count_txn_sites());
}

// ---------------------------------------------------------------------------
// The sweep across shards: crash inside any phase of two-phase commit —
// a shard's prepare flush, the coordinator's decision flush, a local
// commit marker, a heap apply — on any shard, and recovery must be
// all-or-nothing for every distributed transaction.
// ---------------------------------------------------------------------------

#[test]
fn every_2pc_site_recovers_distributed_commits_from_failed_writes() {
    let sites = exhaustive_sharded_crash_sweep(FaultKind::WriteFail);
    assert!(
        sites >= 10,
        "sharded workload too small to mean anything: {sites}"
    );
}

#[test]
fn every_2pc_site_recovers_distributed_commits_from_torn_writes() {
    exhaustive_sharded_crash_sweep(FaultKind::TornWrite(37));
}

#[test]
fn every_2pc_site_recovers_distributed_commits_from_nearly_complete_torn_writes() {
    exhaustive_sharded_crash_sweep(FaultKind::TornWrite(4000));
}

#[test]
fn every_2pc_site_recovers_distributed_commits_from_failed_syncs() {
    exhaustive_sharded_crash_sweep(FaultKind::SyncFail);
}

#[test]
fn every_2pc_site_recovers_distributed_commits_from_short_reads() {
    exhaustive_sharded_crash_sweep(FaultKind::ShortRead(512));
}

#[test]
fn every_2pc_site_recovers_distributed_commits_from_unretried_transients() {
    exhaustive_sharded_crash_sweep(FaultKind::Transient);
}

#[test]
fn sharded_commits_survive_fault_free_crash_and_inflight_dtxns_vanish() {
    let run = drive_sharded_workload(None, RetryPolicy::none());
    assert_eq!(run.crashed, None);
    // One single-record txn, the rest SHARDED_SPREAD-record spreads,
    // minus the periodic deletes of earlier rows.
    let inserts = 1 + (SHARDED_COMMITS - 1) * SHARDED_SPREAD as usize;
    let deletes = (SHARDED_COMMITS - 1) / 3;
    assert_eq!(run.acked.len(), inserts - deletes);
    assert_eq!(recover_sharded_table(&run), run.acked);
}

#[test]
fn sharded_retry_absorbs_periodic_transients() {
    let plan = FaultPlan::new(FaultSchedule::EveryNth(3), FaultKind::Transient);
    let run = drive_sharded_workload(Some(&plan), RetryPolicy::default());
    assert_eq!(run.crashed, None, "retry must absorb every periodic fault");
    assert!(plan.injected_count() > 0, "faults actually fired");
    assert_eq!(recover_sharded_table(&run), run.acked);
}

#[test]
fn sharded_site_count_is_stable_across_runs() {
    assert_eq!(count_sharded_sites(), count_sharded_sites());
}

// ---------------------------------------------------------------------------
// Randomized fault schedules: the contract is schedule-independent.
// ---------------------------------------------------------------------------

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::WriteFail),
        Just(FaultKind::SyncFail),
        Just(FaultKind::Transient),
        (1usize..4096).prop_map(FaultKind::TornWrite),
        (1usize..4096).prop_map(FaultKind::ShortRead),
    ]
}

fn arb_schedule() -> impl Strategy<Value = FaultSchedule> {
    prop_oneof![
        (0usize..40).prop_map(|k| FaultSchedule::AtSite(k as u64)),
        (1usize..8).prop_map(|k| FaultSchedule::EveryNth(k as u64)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn randomized_fault_schedules_preserve_the_contract(
        kind in arb_kind(),
        schedule in arb_schedule(),
        attempts in 1u32..5,
    ) {
        let plan = FaultPlan::new(schedule, kind);
        let run = drive_workload(Some(&plan), RetryPolicy::new(attempts, 100, 10_000));
        // Whatever happened — clean run, absorbed faults, crash anywhere —
        // recovery must produce exactly the acknowledged records.
        let rows = recover_and_rows(&run);
        prop_assert_eq!(
            rows,
            run.acked.clone(),
            "kind {}, schedule {:?}, attempts {}: crash {:?}",
            kind,
            schedule,
            attempts,
            run.crashed
        );
    }

    #[test]
    fn randomized_fault_schedules_preserve_the_txn_contract(
        kind in arb_kind(),
        schedule in arb_schedule(),
        attempts in 1u32..5,
    ) {
        let plan = FaultPlan::new(schedule, kind);
        let run = drive_txn_workload(Some(&plan), RetryPolicy::new(attempts, 100, 10_000));
        let tables = recover_txn_tables(&run);
        prop_assert_eq!(
            tables,
            run.acked.clone(),
            "kind {}, schedule {:?}, attempts {}: crash {:?}",
            kind,
            schedule,
            attempts,
            run.crashed
        );
    }

    #[test]
    fn randomized_fault_schedules_preserve_the_2pc_contract(
        kind in arb_kind(),
        schedule in arb_schedule(),
        attempts in 1u32..5,
    ) {
        let plan = FaultPlan::new(schedule, kind);
        let run = drive_sharded_workload(Some(&plan), RetryPolicy::new(attempts, 100, 10_000));
        let rows = recover_sharded_table(&run);
        prop_assert_eq!(
            rows,
            run.acked.clone(),
            "kind {}, schedule {:?}, attempts {}: crash {:?}",
            kind,
            schedule,
            attempts,
            run.crashed
        );
    }
}
