//! Differential test layer: the set engine and the record engine are two
//! implementations of the same relational semantics, and every parallel
//! kernel is a reimplementation of its sequential oracle. Random workloads
//! must agree member-exactly in both directions.

use proptest::prelude::*;
use xst_core::ops::{
    image, intersection, par_image, par_intersection, par_relative_product, par_sigma_restrict,
    par_union, relative_product, sigma_restrict, union, Parallelism, Scope,
};
use xst_core::{ExtendedSet, Value};
use xst_storage::{
    restructure_records, restructure_set, BufferPool, ColumnTable, Record, RecordEngine,
    Restructuring, Schema, SetEngine, Storage, Table,
};
use xst_testkit::{arb_pair_relation, arb_set};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A forced-parallel policy: every kernel fans out regardless of size.
fn forced(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_threshold(1)
}

// ---------------------------------------------------------------------------
// Set engine vs record engine on random workloads.
// ---------------------------------------------------------------------------

/// Rows over a small value domain so selections hit and joins collide.
fn arb_rows(cols: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0i64..6, cols..cols + 1), 0..max_rows)
}

fn make_table(storage: &Storage, names: &[&str], rows: &[Vec<i64>]) -> Table {
    let mut t = Table::create(storage, Schema::new(names.iter().copied()));
    let records: Vec<Record> = rows
        .iter()
        .map(|r| Record::new(r.iter().map(|&v| Value::Int(v))))
        .collect();
    t.load(&records).unwrap();
    t
}

/// Both engines over both sequential and parallel set evaluation.
fn engines<'a>(table: &Table, pool: &'a BufferPool) -> (RecordEngine<'a>, SetEngine, SetEngine) {
    let rec = RecordEngine::new(pool);
    let seq = SetEngine::load(table, pool).unwrap();
    let par = SetEngine::load(table, pool)
        .unwrap()
        .with_parallelism(forced(4));
    (rec, seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Selection: record scan ≡ set-engine image, sequential and parallel.
    #[test]
    fn select_agrees(rows in arb_rows(3, 40), col in 0usize..3, key in 0i64..6) {
        let storage = Storage::new();
        let table = make_table(&storage, &["a", "b", "c"], &rows);
        let pool = BufferPool::new(storage, 16);
        let (rec, seq, par) = engines(&table, &pool);
        let field = ["a", "b", "c"][col];
        let key = Value::Int(key);

        let from_records = rec.select(&table, field, &key).unwrap();
        let from_sets = SetEngine::to_records(&seq.select(field, &key).unwrap()).unwrap();
        let from_par = SetEngine::to_records(&par.select(field, &key).unwrap()).unwrap();
        prop_assert_eq!(&from_records, &from_sets);
        prop_assert_eq!(&from_sets, &from_par);
    }

    /// Projection onto a random non-empty column subset.
    #[test]
    fn project_agrees(rows in arb_rows(3, 40), mask in 1usize..8) {
        let storage = Storage::new();
        let table = make_table(&storage, &["a", "b", "c"], &rows);
        let pool = BufferPool::new(storage, 16);
        let (rec, seq, par) = engines(&table, &pool);
        let fields: Vec<&str> = ["a", "b", "c"]
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| *f)
            .collect();

        let from_records = rec.project(&table, &fields).unwrap();
        let from_sets = SetEngine::to_records(&seq.project(&fields).unwrap()).unwrap();
        let from_par = SetEngine::to_records(&par.project(&fields).unwrap()).unwrap();
        prop_assert_eq!(&from_records, &from_sets);
        prop_assert_eq!(&from_sets, &from_par);
    }

    /// Equi-join on shared-domain columns (record nested loop vs relative
    /// product), sequential and parallel.
    #[test]
    fn join_agrees(left in arb_rows(2, 24), right in arb_rows(2, 24)) {
        let storage = Storage::new();
        let lt = make_table(&storage, &["a", "k"], &left);
        let rt = make_table(&storage, &["k2", "b"], &right);
        let pool = BufferPool::new(storage, 16);
        let rec = RecordEngine::new(&pool);
        let ls = SetEngine::load(&lt, &pool).unwrap();
        let rs = SetEngine::load(&rt, &pool).unwrap();
        let lp = SetEngine::load(&lt, &pool).unwrap().with_parallelism(forced(4));

        let from_records = rec.join(&lt, &rt, "k", "k2").unwrap();
        let from_sets = SetEngine::to_records(&ls.join(&rs, "k", "k2").unwrap()).unwrap();
        let from_par = SetEngine::to_records(&lp.join(&rs, "k", "k2").unwrap()).unwrap();
        prop_assert_eq!(&from_records, &from_sets);
        prop_assert_eq!(&from_sets, &from_par);
    }

    /// Boolean table ops: union/intersect/difference across both engines.
    #[test]
    fn boolean_ops_agree(a in arb_rows(2, 24), b in arb_rows(2, 24)) {
        let storage = Storage::new();
        let at = make_table(&storage, &["x", "y"], &a);
        let bt = make_table(&storage, &["x", "y"], &b);
        let pool = BufferPool::new(storage, 16);
        let rec = RecordEngine::new(&pool);
        let asq = SetEngine::load(&at, &pool).unwrap();
        let bsq = SetEngine::load(&bt, &pool).unwrap();
        let apar = SetEngine::load(&at, &pool).unwrap().with_parallelism(forced(4));

        let u_rec = rec.union(&at, &bt).unwrap();
        prop_assert_eq!(&u_rec, &SetEngine::to_records(&asq.union(&bsq)).unwrap());
        prop_assert_eq!(&u_rec, &SetEngine::to_records(&apar.union(&bsq)).unwrap());
        let i_rec = rec.intersect(&at, &bt).unwrap();
        prop_assert_eq!(&i_rec, &SetEngine::to_records(&asq.intersect(&bsq)).unwrap());
        prop_assert_eq!(&i_rec, &SetEngine::to_records(&apar.intersect(&bsq)).unwrap());
        let d_rec = rec.difference(&at, &bt).unwrap();
        prop_assert_eq!(&d_rec, &SetEngine::to_records(&asq.difference(&bsq)).unwrap());
    }
}

// ---------------------------------------------------------------------------
// Column store vs the row path: layout must be invisible to the data.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Reconstructed column-store rows ≡ the row table's scan, and the two
    /// representations share one set identity, on random tables.
    #[test]
    fn colstore_reconstruction_agrees_with_row_path(rows in arb_rows(3, 40)) {
        let storage = Storage::new();
        let row_table = make_table(&storage, &["a", "b", "c"], &rows);
        let records: Vec<Record> = rows
            .iter()
            .map(|r| Record::new(r.iter().map(|&v| Value::Int(v))))
            .collect();
        let mut col_table = ColumnTable::create(&storage, Schema::new(["a", "b", "c"]));
        col_table.load(&records).unwrap();
        let pool = BufferPool::new(storage, 16);

        prop_assert_eq!(&col_table.reconstruct(&pool).unwrap(), &records);
        let row_identity = SetEngine::load(&row_table, &pool).unwrap();
        prop_assert_eq!(
            &col_table.identity(&pool).unwrap(),
            row_identity.identity(),
            "layout must be invisible to the identity"
        );
    }

    /// A single materialized column ≡ the row engine's projection of that
    /// field (order-insensitive: projection is a set, a column is a list).
    #[test]
    fn colstore_column_scan_agrees_with_projection(rows in arb_rows(3, 40), col in 0usize..3) {
        let storage = Storage::new();
        let row_table = make_table(&storage, &["a", "b", "c"], &rows);
        let records: Vec<Record> = rows
            .iter()
            .map(|r| Record::new(r.iter().map(|&v| Value::Int(v))))
            .collect();
        let mut col_table = ColumnTable::create(&storage, Schema::new(["a", "b", "c"]));
        col_table.load(&records).unwrap();
        let pool = BufferPool::new(storage, 16);
        let field = ["a", "b", "c"][col];

        // Row order is preserved column-wise.
        let column = col_table.read_column(&pool, field).unwrap();
        let expected: Vec<Value> = rows.iter().map(|r| Value::Int(r[col])).collect();
        prop_assert_eq!(&column, &expected);

        // And deduplicated it is exactly the set-engine projection.
        let mut distinct: Vec<Record> =
            column.into_iter().map(|v| Record::new([v])).collect();
        distinct.sort();
        distinct.dedup();
        let engine = SetEngine::load(&row_table, &pool).unwrap();
        let projected =
            SetEngine::to_records(&engine.project(&[field]).unwrap()).unwrap();
        prop_assert_eq!(&distinct, &projected);
    }

    /// Record-processing restructure ≡ σ-domain restructure on random
    /// tables and random column selections (permutes, projects, and
    /// duplicates columns).
    #[test]
    fn restructure_disciplines_agree(
        rows in arb_rows(3, 40),
        picks in prop::collection::vec(0usize..3, 1..5),
    ) {
        let storage = Storage::new();
        let table = make_table(&storage, &["a", "b", "c"], &rows);
        let pool = BufferPool::new(storage.clone(), 16);
        let columns: Vec<(String, &'static str)> = picks
            .iter()
            .enumerate()
            .map(|(j, &p)| (format!("out{j}"), ["a", "b", "c"][p]))
            .collect();
        let spec = Restructuring::new(&table.schema, columns).unwrap();

        let new_table = restructure_records(&table, &pool, &storage, &spec).unwrap();
        let mut rec_rows = new_table.file.read_all(&pool).unwrap();
        rec_rows.sort();
        rec_rows.dedup(); // the record path keeps duplicates; the set path cannot
        let engine = SetEngine::load(&table, &pool).unwrap();
        let set_rows =
            SetEngine::to_records(&restructure_set(engine.identity(), &spec)).unwrap();
        prop_assert_eq!(&rec_rows, &set_rows);
    }
}

// ---------------------------------------------------------------------------
// Parallel kernels vs their sequential oracles at 1, 2, 4, 8 threads.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// `par_union` ≡ `union` on arbitrary (nested, scoped) extended sets.
    #[test]
    fn par_union_matches_oracle(a in arb_set(2), b in arb_set(2)) {
        let oracle = union(&a, &b);
        for k in THREADS {
            prop_assert_eq!(&par_union(&a, &b, &forced(k)), &oracle);
        }
    }

    /// `par_intersection` ≡ `intersection`, both operand orders.
    #[test]
    fn par_intersection_matches_oracle(a in arb_set(2), b in arb_set(2)) {
        let oracle = intersection(&a, &b);
        for k in THREADS {
            prop_assert_eq!(&par_intersection(&a, &b, &forced(k)), &oracle);
            prop_assert_eq!(&par_intersection(&b, &a, &forced(k)), &oracle);
        }
    }

    /// `par_sigma_restrict` ≡ `sigma_restrict` for arbitrary σ and A.
    #[test]
    fn par_restrict_matches_oracle(r in arb_set(2), sigma in arb_set(1), a in arb_set(2)) {
        let oracle = sigma_restrict(&r, &sigma, &a);
        for k in THREADS {
            prop_assert_eq!(&par_sigma_restrict(&r, &sigma, &a, &forced(k)), &oracle);
        }
    }

    /// `par_image` ≡ `image` on random pair relations under ⟨⟨1⟩,⟨2⟩⟩.
    #[test]
    fn par_image_matches_oracle(r in arb_pair_relation(), a in arb_set(2)) {
        let scope = Scope::pairs();
        let oracle = image(&r, &a, &scope);
        for k in THREADS {
            prop_assert_eq!(&par_image(&r, &a, &scope, &forced(k)), &oracle);
        }
    }

    /// `par_relative_product` ≡ `relative_product` under §10 recipe (1).
    #[test]
    fn par_rel_product_matches_oracle(f in arb_pair_relation(), g in arb_pair_relation()) {
        let sigma = Scope::new(
            ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
            ExtendedSet::from_pairs([(Value::Int(2), Value::Int(1))]),
        );
        let omega = Scope::new(
            ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
            ExtendedSet::from_pairs([(Value::Int(2), Value::Int(2))]),
        );
        let oracle = relative_product(&f, &sigma, &g, &omega);
        for k in THREADS {
            prop_assert_eq!(
                &par_relative_product(&f, &sigma, &g, &omega, &forced(k)),
                &oracle
            );
        }
    }

    /// Also at a larger cardinality than `arb_set` reaches: random classical
    /// relations wide enough that every thread count gets real chunks.
    #[test]
    fn par_kernels_match_on_wide_inputs(seed in 0u32..64) {
        let n = 200 + (seed as usize) * 7;
        let r = ExtendedSet::classical((0..n).map(|i| {
            Value::Set(ExtendedSet::pair(
                Value::Int((i as i64 * 13 + seed as i64) % 97),
                Value::Int(i as i64 % 11),
            ))
        }));
        let a = ExtendedSet::classical((0..20).map(|i| {
            Value::Set(ExtendedSet::tuple([Value::Int(i as i64)]))
        }));
        let scope = Scope::pairs();
        let oracle = image(&r, &a, &scope);
        for k in THREADS {
            prop_assert_eq!(&par_image(&r, &a, &scope, &forced(k)), &oracle);
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-process sharding: routing invariants. The member-hash router is
// the contract both deployments (in-process ShardedEngine, wire
// Coordinator) share — it must be a pure function of member identity,
// partition without loss or duplication, and be invisible to query
// results at any shard count.
// ---------------------------------------------------------------------------

mod routing {
    use proptest::prelude::*;
    use xst_core::ops::{gather, Parallelism};
    use xst_core::{ExtendedSet, SetBuilder, Value};
    use xst_query::{eval_parallel, eval_sharded, merge_bindings, Expr, ShardedBindings};
    use xst_storage::{codec, shard_of, Record};
    use xst_testkit::arb_set;

    const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

    /// A set's members as routing-key records (`[element, scope]` —
    /// the wire layout every served table uses).
    fn member_records(set: &ExtendedSet) -> Vec<Record> {
        set.members()
            .iter()
            .map(|m| Record::new([m.element.clone(), m.scope.clone()]))
            .collect()
    }

    /// Hash-partition `set` into `shards` member-disjoint fragments,
    /// exactly as both engines route writes.
    fn route(set: &ExtendedSet, shards: usize) -> Vec<ExtendedSet> {
        let mut builders: Vec<SetBuilder> = (0..shards).map(|_| SetBuilder::new()).collect();
        for (m, rec) in set.members().iter().zip(member_records(set)) {
            builders[shard_of(&rec, shards)].scoped(m.element.clone(), m.scope.clone());
        }
        builders.into_iter().map(SetBuilder::build).collect()
    }

    /// A small random plan over two bound tables (subset-producing and
    /// member-transforming operators both appear, so the sharded
    /// evaluator exercises aligned and fallback lowerings).
    fn plan(shape: u8) -> Expr {
        let ta = || Expr::table("ta");
        let tb = || Expr::table("tb");
        match shape % 6 {
            0 => ta().union(tb()),
            1 => ta().intersect(tb()),
            2 => ta().difference(tb()),
            3 => ta().union(tb()).intersect(ta()),
            4 => ta().difference(tb()).union(tb().difference(ta())),
            _ => ta().intersect(ta().union(tb())),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// `shard_of` is a pure function of the member's bit-exact
        /// codec identity: a record surviving an encode/decode
        /// round-trip routes to the same shard at every shard count.
        #[test]
        fn shard_of_stable_across_codec_round_trip(set in arb_set(2)) {
            for rec in member_records(&set) {
                let bytes = codec::encode_to_vec(&Value::Set(rec.to_tuple()));
                let decoded = codec::decode_exact(&bytes).expect("codec round-trip");
                let Value::Set(tuple) = decoded else {
                    panic!("record tuple must decode as a set");
                };
                let vals = tuple.as_tuple().expect("tuple layout survives");
                let rebuilt = Record::new(vals);
                for shards in SHARD_COUNTS {
                    prop_assert_eq!(
                        shard_of(&rec, shards),
                        shard_of(&rebuilt, shards),
                        "routing must survive the codec round-trip"
                    );
                }
                prop_assert_eq!(shard_of(&rec, 1), 0, "one shard takes everything");
            }
        }

        /// Routing partitions exactly: no member lost, none duplicated,
        /// none misrouted, and the gather of the fragments is the set.
        #[test]
        fn fragments_partition_without_loss_or_duplication(set in arb_set(2)) {
            for shards in SHARD_COUNTS {
                let frags = route(&set, shards);
                prop_assert_eq!(frags.len(), shards);
                let total: usize = frags.iter().map(ExtendedSet::card).sum();
                prop_assert_eq!(total, set.card(), "no duplicates, no losses");
                for (i, frag) in frags.iter().enumerate() {
                    for m in frag.members() {
                        let rec = Record::new([m.element.clone(), m.scope.clone()]);
                        prop_assert_eq!(
                            shard_of(&rec, shards), i,
                            "member on shard {} routes elsewhere", i
                        );
                    }
                }
                prop_assert_eq!(&gather(&frags), &set, "gather must rebuild the set");
            }
        }

        /// Gather-of-fragments ≡ whole-set evaluation for arbitrary
        /// plans at 1/2/4 shards: the partition is invisible to every
        /// query result.
        #[test]
        fn sharded_eval_matches_whole_eval(
            a in arb_set(2),
            b in arb_set(2),
            shape in 0u8..6,
        ) {
            let expr = plan(shape);
            for shards in SHARD_COUNTS {
                let mut sharded = ShardedBindings::new();
                sharded.insert("ta".to_string(), route(&a, shards));
                sharded.insert("tb".to_string(), route(&b, shards));
                let whole = merge_bindings(&sharded);
                let (scattered, _) =
                    eval_sharded(&expr, &sharded, &Parallelism::sequential())
                        .expect("sharded eval");
                let (gathered, _) =
                    eval_parallel(&expr, &whole, &Parallelism::sequential())
                        .expect("whole eval");
                prop_assert_eq!(
                    &scattered, &gathered,
                    "shard count {} must be invisible to plan {}", shards, shape
                );
            }
        }
    }

    /// The cross-process path: the same invariants over real TCP.
    /// A wire coordinator scatters a tricky set across two shard
    /// servers; per-shard fragment reads must show exact, disjoint,
    /// correctly-routed fragments, and coordinator reads/evals must
    /// equal the in-process expectation.
    #[test]
    fn cross_process_routing_matches_in_process() {
        use std::time::Duration;
        use xst_client::coord::Coordinator;
        use xst_client::Client;
        use xst_testkit::cluster::start_shard_servers;

        let set = {
            let mut b = SetBuilder::new();
            for i in 0..24i64 {
                b.scoped(Value::Int(i), Value::Int(i % 3));
            }
            b.scoped(
                Value::Set(ExtendedSet::pair(Value::Int(7), Value::Int(9))),
                Value::Int(5),
            );
            b.build()
        };
        const SHARDS: usize = 2;
        let cluster = start_shard_servers(SHARDS);
        let mut coord = Coordinator::connect(&cluster.addrs, Some(Duration::from_secs(5)))
            .expect("connect coordinator");
        coord.put("r", &set).expect("scatter put");

        // Whole-set read and trivial eval both rebuild the set.
        assert_eq!(coord.get("r").expect("gather read"), set);
        let expr = Expr::table("r").union(Expr::table("r"));
        assert_eq!(coord.eval(&expr).expect("wire eval"), set);

        // Per-shard fragments: disjoint, complete, correctly routed.
        let mut frags = Vec::new();
        for (i, addr) in cluster.addrs.iter().enumerate() {
            let mut c = Client::connect(addr, "frag-probe").expect("connect shard");
            let frag = c.frag_read("r").expect("frag read");
            for m in frag.members() {
                let rec = Record::new([m.element.clone(), m.scope.clone()]);
                assert_eq!(
                    shard_of(&rec, SHARDS),
                    i,
                    "member {m:?} served by shard {i} but routes elsewhere"
                );
            }
            frags.push(frag);
        }
        let total: usize = frags.iter().map(ExtendedSet::card).sum();
        assert_eq!(total, set.card(), "no duplicates across shards");
        assert_eq!(gather(&frags), set, "fragments gather to the set");
        assert_eq!(frags, route(&set, SHARDS), "wire routing ≡ local routing");
    }
}
