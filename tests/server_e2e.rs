//! The end-to-end network battery: many real clients, one served engine,
//! over real TCP.
//!
//! Everything here drives the server the way production would — through
//! `xst-client` over a socket — and asserts the engine's standing
//! contracts hold *across the wire*:
//!
//! * snapshot isolation with first-committer-wins, visible as a typed
//!   `TxnConflict` error code;
//! * read-your-own-writes per session, invisibility across sessions;
//! * results byte-identical to in-process `eval_parallel` on the same
//!   plans and bindings;
//! * abort-on-disconnect: a dead client's transaction releases its
//!   snapshot (checked on the manager and on the `xst_txn_active` gauge);
//! * connection-cap overflow rejected with a typed error and counted;
//! * and the crash sweep: with the deterministic fault plan armed *over
//!   the wire*, a commit acknowledged over the wire is recoverable and
//!   an unacknowledged one is atomically absent — at every fault site.
//!
//! Tests serialize on one lock: the metric registry is process-global,
//! and a network battery on one CPU is more deterministic run one test
//! at a time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use xst_client::{Client, ClientError};
use xst_core::ops::Parallelism;
use xst_core::{xset, ExtendedSet};
use xst_query::{eval_parallel, Bindings, Expr};
use xst_server::{
    member_schema, records_identity_to_set, ErrorCode, Request, Response, ServedEngine, Server,
    ServerConfig,
};
use xst_storage::{FaultKind, FaultPlan, FaultSchedule};

/// One test at a time: the obs registry is global, and gauge assertions
/// would race across tests otherwise.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    xst_obs::enable();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn start_server(config: ServerConfig) -> (Server, Arc<ServedEngine>, String) {
    let engine = Arc::new(ServedEngine::new());
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", config).unwrap();
    let addr = server.addr().to_string();
    (server, engine, addr)
}

fn connect(addr: &str, name: &str) -> Client {
    let c = Client::connect(addr, name).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------------
// The concurrent-client battery.
// ---------------------------------------------------------------------------

/// ≥ 8 concurrent clients, mixed workloads: per-client private tables
/// with autocommit round-trips and wire-vs-in-process eval equality,
/// plus an all-clients conflict race on one shared record.
#[test]
fn eight_concurrent_clients_mixed_workloads() {
    let _guard = serial();
    const CLIENTS: usize = 8;
    let (server, engine, addr) = start_server(ServerConfig::default());
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let commits = Arc::new(AtomicUsize::new(0));
    let conflicts = Arc::new(AtomicUsize::new(0));

    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        let commits = Arc::clone(&commits);
        let conflicts = Arc::clone(&conflicts);
        threads.push(std::thread::spawn(move || {
            let mut c = connect(&addr, &format!("worker-{i}"));
            // Private-table workload: autocommit put, RYOW get, and a
            // wire eval that must match a locally computed expectation.
            let table = format!("t{i}");
            let mine = ExtendedSet::classical([i as i64, i as i64 + 100]);
            let applied = c.put(&table, &mine).unwrap();
            assert_eq!(applied.rows, 2);
            assert!(applied.autocommit_ts.is_some());
            let got = records_identity_to_set(&c.get(&table).unwrap()).unwrap();
            assert_eq!(got, mine, "client {i}: get must round-trip its put");

            // The conflict race: everyone writes the SAME record inside
            // explicit transactions whose snapshots all predate any
            // commit (the barrier sits between begin and commit).
            c.begin().unwrap();
            c.put("shared", &xset![0]).unwrap();
            barrier.wait();
            match c.commit() {
                Ok(_) => {
                    commits.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => {
                    assert!(
                        e.is_conflict(),
                        "client {i}: loss must be a typed TxnConflict, got {e}"
                    );
                    conflicts.fetch_add(1, Ordering::SeqCst);
                }
            }

            // Post-race eval through the same session.
            let expr = Expr::table(&table).union(Expr::table("shared"));
            c.eval(&expr).unwrap()
        }));
    }
    let results: Vec<ExtendedSet> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    // First committer wins: exactly one of the eight identical writes
    // committed; every other loss surfaced as a typed conflict.
    assert_eq!(commits.load(Ordering::SeqCst), 1, "exactly one winner");
    assert_eq!(conflicts.load(Ordering::SeqCst), CLIENTS - 1);

    // Byte-identical results: re-run every plan in-process against the
    // same engine's latest commits.
    for (i, wire_result) in results.iter().enumerate() {
        let table = format!("t{i}");
        let expr = Expr::table(&table).union(Expr::table("shared"));
        let mut b = Bindings::new();
        for name in [table.as_str(), "shared"] {
            b.insert(
                name.to_string(),
                (*engine.mgr().latest_identity(name).unwrap()).clone(),
            );
        }
        let (local, _) = eval_parallel(&expr, &b, &Parallelism::sequential()).unwrap();
        assert_eq!(wire_result, &local, "client {i} result identity");
        assert_eq!(
            wire_result.to_string(),
            local.to_string(),
            "client {i} result display bytes"
        );
    }
    drop(server);
}

#[test]
fn ryow_within_a_session_invisible_across_sessions() {
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig::default());
    let mut a = connect(&addr, "a");
    let mut b = connect(&addr, "b");

    a.begin().unwrap();
    a.put("t", &xset![7]).unwrap();
    // A reads its own buffered write...
    let a_sees = records_identity_to_set(&a.get("t").unwrap()).unwrap();
    assert_eq!(a_sees, xset![7]);
    // ...B sees the table as absent or empty until A commits.
    match b.get("t") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Storage),
        Ok(identity) => assert!(identity.is_empty()),
        Err(e) => unreachable!("unexpected failure: {e}"),
    }
    // Eval agrees with get on both sides of the commit.
    let expr = Expr::table("t");
    assert_eq!(a.eval(&expr).unwrap().card(), 1);
    a.commit().unwrap();
    let b_sees = records_identity_to_set(&b.get("t").unwrap()).unwrap();
    assert_eq!(b_sees, xset![7]);
}

#[test]
fn snapshot_stability_under_a_concurrent_commit() {
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig::default());
    let mut reader = connect(&addr, "reader");
    let mut writer = connect(&addr, "writer");

    writer.put("t", &xset![1]).unwrap();
    reader.begin().unwrap();
    let before = reader.eval(&Expr::table("t")).unwrap();
    // A foreign commit lands while the reader's snapshot is open.
    writer.put("t", &xset![2]).unwrap();
    let after = reader.eval(&Expr::table("t")).unwrap();
    assert_eq!(
        before.to_string(),
        after.to_string(),
        "an open snapshot must not move under a foreign commit"
    );
    reader.commit().unwrap();
    // A fresh read sees both writes.
    let latest = records_identity_to_set(&reader.get("t").unwrap()).unwrap();
    assert_eq!(latest, xset![1, 2]);
}

// ---------------------------------------------------------------------------
// Session lifecycle.
// ---------------------------------------------------------------------------

#[test]
fn client_drop_mid_txn_aborts_and_releases_the_snapshot() {
    let _guard = serial();
    let (_server, engine, addr) = start_server(ServerConfig::default());
    let active_gauge = xst_obs::registry().gauge(
        xst_obs::names::TXN_ACTIVE,
        "Transactions currently open (each pins a snapshot identity).",
    );

    let mut c = connect(&addr, "doomed");
    c.begin().unwrap();
    c.put("t", &xset![1]).unwrap();
    wait_for("txn to register", || engine.mgr().active_txns() == 1);
    assert_eq!(active_gauge.get(), 1.0, "gauge mirrors the open txn");

    // Kill the client mid-transaction: no commit, no abort, just a
    // vanished peer.
    drop(c);

    // The server must notice, abort the txn, and release its snapshot —
    // no version-chain pinning leak.
    wait_for("disconnect abort", || engine.mgr().active_txns() == 0);
    wait_for("gauge release", || active_gauge.get() == 0.0);
    // The aborted write is gone: the table never came into existence.
    let mut probe = connect(&addr, "probe");
    match probe.get("t") {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Storage),
        Ok(identity) => assert!(identity.is_empty()),
        Err(e) => unreachable!("unexpected failure: {e}"),
    }
}

/// The `xst_txn_active` gauge must return exactly to baseline on EVERY
/// session exit path — commit, abort, a conflict-losing commit, a
/// vanished peer, and a server shutdown with sessions still open. Any
/// path that forgets its decrement drifts the gauge forever (it is
/// process-global), so each path gets its own connection here.
#[test]
fn txn_active_gauge_returns_to_zero_on_every_exit_path() {
    let _guard = serial();
    let (server, engine, addr) = start_server(ServerConfig::default());
    let active_gauge = xst_obs::registry().gauge(
        xst_obs::names::TXN_ACTIVE,
        "Transactions currently open (each pins a snapshot identity).",
    );
    let baseline = active_gauge.get();

    // Path 1: explicit commit.
    let mut c = connect(&addr, "committer");
    c.begin().unwrap();
    c.put("t", &xset![1]).unwrap();
    assert_eq!(active_gauge.get(), baseline + 1.0);
    c.commit().unwrap();
    assert_eq!(active_gauge.get(), baseline, "commit path leaked");

    // Path 2: explicit abort.
    c.begin().unwrap();
    c.put("t", &xset![2]).unwrap();
    c.abort().unwrap();
    assert_eq!(active_gauge.get(), baseline, "abort path leaked");

    // Path 3: a commit that LOSES first-committer-wins validation. The
    // loser's transaction is dead server-side; its gauge count must go
    // with it.
    let mut rival = connect(&addr, "rival");
    c.begin().unwrap();
    c.put("t", &xset![3]).unwrap();
    rival.begin().unwrap();
    rival.put("t", &xset![3]).unwrap();
    c.commit().unwrap();
    let e = rival.commit().unwrap_err();
    assert!(e.is_conflict(), "{e}");
    assert_eq!(active_gauge.get(), baseline, "conflict-loss path leaked");

    // Path 4: the peer vanishes mid-transaction.
    c.begin().unwrap();
    c.put("t", &xset![4]).unwrap();
    wait_for("txn registered", || active_gauge.get() == baseline + 1.0);
    drop(c);
    wait_for("disconnect released the gauge", || {
        active_gauge.get() == baseline
    });

    // Path 5: server shutdown with a session mid-transaction.
    let mut last = connect(&addr, "open-at-shutdown");
    last.begin().unwrap();
    last.put("t", &xset![5]).unwrap();
    wait_for("txn registered", || active_gauge.get() == baseline + 1.0);
    let mut server = server;
    server.stop();
    wait_for("shutdown released the gauge", || {
        active_gauge.get() == baseline
    });
    assert_eq!(engine.sharded().active_txns(), 0);
}

/// An N-shard engine opens one sub-transaction per shard for every
/// distributed transaction; the gauge (and begin/commit counters) must
/// count the DISTRIBUTED transaction once, not once per shard.
#[test]
fn sharded_engine_counts_one_distributed_txn_not_one_per_shard() {
    let _guard = serial();
    let engine = Arc::new(ServedEngine::with_shards(3));
    let server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let active_gauge = xst_obs::registry().gauge(
        xst_obs::names::TXN_ACTIVE,
        "Transactions currently open (each pins a snapshot identity).",
    );
    let baseline = active_gauge.get();

    let mut c = connect(&addr, "sharded");
    c.begin().unwrap();
    // Enough members to touch several shards.
    let spread = ExtendedSet::classical((0..32).collect::<Vec<i64>>());
    c.put("wide", &spread).unwrap();
    wait_for("one distributed txn on the gauge", || {
        active_gauge.get() == baseline + 1.0
    });
    assert_eq!(engine.sharded().active_txns(), 1);
    c.commit().unwrap();
    wait_for("distributed commit released the gauge", || {
        active_gauge.get() == baseline
    });
    // The committed members survive the scatter: gather returns them all.
    let got = records_identity_to_set(&c.get("wide").unwrap()).unwrap();
    assert_eq!(got, spread);
    drop(c);
    drop(server);
}

/// Toggling the collector mid-transaction must not drift the gauge in
/// either direction: a txn begun while disabled never decrements, and a
/// txn begun while enabled decrements exactly once even if the collector
/// was toggled in between.
#[test]
fn txn_active_gauge_survives_collector_toggles() {
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig::default());
    let active_gauge = xst_obs::registry().gauge(
        xst_obs::names::TXN_ACTIVE,
        "Transactions currently open (each pins a snapshot identity).",
    );
    let baseline = active_gauge.get();

    // Begun disabled, released enabled: no decrement (would go negative).
    xst_obs::disable();
    let mut c = connect(&addr, "toggler");
    c.begin().unwrap();
    xst_obs::enable();
    c.abort().unwrap();
    assert_eq!(active_gauge.get(), baseline, "phantom decrement");

    // Begun enabled, released disabled-then-enabled: exactly one
    // decrement, applied when the txn actually ends.
    c.begin().unwrap();
    assert_eq!(active_gauge.get(), baseline + 1.0);
    xst_obs::disable();
    c.abort().unwrap();
    xst_obs::enable();
    assert_eq!(active_gauge.get(), baseline, "missed decrement");
}

#[test]
fn connection_cap_overflow_rejected_with_typed_error_and_counted() {
    let _guard = serial();
    let rejected_counter = xst_obs::registry().counter(
        xst_obs::names::SERVER_ADMISSION_REJECTED_TOTAL,
        "Connections rejected by admission control (cap and queue both full).",
    );
    let rejected_before = rejected_counter.get();

    let (_server, _engine, addr) = start_server(ServerConfig {
        max_sessions: 2,
        max_queued: 0,
        queue_wait: Duration::from_millis(100),
        banner: "capped".into(),
    });
    // Fill both slots.
    let _one = connect(&addr, "one");
    let _two = connect(&addr, "two");
    // The third must be rejected with the typed admission error.
    match Client::connect(&addr, "three") {
        Err(ClientError::Rejected(msg)) => {
            assert!(msg.contains("capacity"), "{msg}");
        }
        Err(e) => unreachable!("expected typed rejection, got error {e}"),
        Ok(_) => unreachable!("expected typed rejection, got admission"),
    }
    wait_for("rejection counted", || {
        rejected_counter.get() > rejected_before
    });

    // A freed slot re-admits: drop one session, retry.
    drop(_one);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut readmitted = loop {
        match Client::connect(&addr, "retry") {
            Ok(c) => break c,
            Err(ClientError::Rejected(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => unreachable!("retry failed: {e}"),
        }
    };
    readmitted.ping().unwrap();
}

#[test]
fn queued_connection_is_seated_when_a_slot_frees() {
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig {
        max_sessions: 1,
        max_queued: 4,
        queue_wait: Duration::from_secs(10),
        banner: "queued".into(),
    });
    let first = connect(&addr, "first");
    // The second connection parks in the admission queue; free the slot
    // shortly after and the queued connection must be admitted.
    let addr2 = addr.clone();
    let waiter = std::thread::spawn(move || {
        let mut c = connect(&addr2, "second");
        c.ping().unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    drop(first);
    waiter.join().unwrap();
}

// ---------------------------------------------------------------------------
// Adversarial bytes against a live server.
// ---------------------------------------------------------------------------

#[test]
fn garbage_bytes_get_a_structured_protocol_error_not_a_crash() {
    use std::io::Write as _;
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig::default());

    // Raw garbage (bad magic): the server must answer with a structured
    // protocol error frame and close — and keep serving others.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(&[0xAAu8; 64]).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
        other => unreachable!("expected protocol error, got {other:?}"),
    }

    // An oversize length header: same structured answer.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut attack = Vec::new();
    attack.extend_from_slice(b"XSTP");
    attack.extend_from_slice(&u32::MAX.to_le_bytes());
    attack.extend_from_slice(&0u32.to_le_bytes());
    raw.write_all(&attack).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
        other => unreachable!("expected protocol error, got {other:?}"),
    }

    // A malformed *message* in a valid frame, post-handshake: the
    // session answers the error and SURVIVES for the next request.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let hello = Request::Hello {
        version: xst_server::PROTO_VERSION,
        client: "adversary".into(),
    };
    xst_server::write_frame(&mut raw, &hello.encode()).unwrap();
    let welcome = xst_server::read_frame(&mut raw).unwrap();
    assert!(matches!(
        Response::decode(&welcome).unwrap(),
        Response::Welcome { .. }
    ));
    xst_server::write_frame(&mut raw, &[0xFFu8; 16]).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
        other => unreachable!("expected protocol error, got {other:?}"),
    }
    xst_server::write_frame(&mut raw, &Request::Ping.encode()).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Pong
    ));
}

#[test]
fn version_mismatch_is_a_typed_handshake_failure() {
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig::default());
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let hello = Request::Hello {
        version: 999,
        client: "from the future".into(),
    };
    xst_server::write_frame(&mut raw, &hello.encode()).unwrap();
    let payload = xst_server::read_frame(&mut raw).unwrap();
    match Response::decode(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Version),
        other => unreachable!("expected version error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The crash sweep, across the wire.
// ---------------------------------------------------------------------------

/// A wire-workload set: `n` members padded wide enough that a commit's
/// op-log batch spans heap pages and exercises heap-flush fault sites,
/// not just WAL appends (mirrors the testkit's padded txn workload).
fn padded_set(tag: &str, n: usize) -> ExtendedSet {
    ExtendedSet::classical(
        (0..n).map(|i| xst_core::Value::str(format!("{tag}-{i}-{}", "y".repeat(370)))),
    )
}

fn preload_set() -> ExtendedSet {
    padded_set("preload", 4)
}

/// Tags of the explicit wire transactions the sweep crashes within.
const WIRE_TXNS: [&str; 4] = ["txn-a", "txn-b", "txn-c", "txn-d"];

/// The scripted wire workload the sweep crashes at every site of:
/// an unfaulted autocommitted preload, then two explicit transactions.
/// Returns the sets whose commits were ACKNOWLEDGED over the wire.
fn drive_wire_txns(c: &mut Client) -> Vec<ExtendedSet> {
    let mut acked = vec![preload_set()];
    for txn_set in WIRE_TXNS.map(|tag| padded_set(tag, 4)) {
        c.begin().unwrap();
        c.put("shared", &txn_set).unwrap();
        match c.commit() {
            Ok(_) => acked.push(txn_set),
            // The injected crash: stop driving, like a real outage.
            Err(_) => break,
        }
    }
    acked
}

fn expected_members(acked: &[ExtendedSet]) -> ExtendedSet {
    let mut all: Vec<xst_core::Value> = Vec::new();
    for set in acked {
        for m in set.members() {
            all.push(m.element.clone());
        }
    }
    ExtendedSet::classical(all)
}

/// Count the fault sites the wire workload touches after arming (the
/// preload stays unfaulted so the table always exists).
fn count_wire_sites() -> u64 {
    let (server, engine, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr, "probe");
    c.put("shared", &preload_set()).unwrap();
    let plan = FaultPlan::counting();
    engine.storage().install_faults(&plan);
    engine.wal().install_faults(&plan);
    drive_wire_txns(&mut c);
    engine.storage().clear_faults();
    engine.wal().clear_faults();
    drop(server);
    plan.sites_seen()
}

/// The acceptance-criteria test: acknowledged ⇒ recoverable for commits
/// issued over the wire, proven by crashing at every injectable site
/// with the fault plan armed across the wire.
#[test]
fn crash_at_every_commit_site_over_the_wire_preserves_acked_commits() {
    let _guard = serial();
    let sites = count_wire_sites();
    assert!(
        sites >= 4,
        "wire workload too small to mean anything: {sites}"
    );
    assert_eq!(
        sites,
        count_wire_sites(),
        "site enumeration is deterministic"
    );

    let mut crashes = 0u64;
    let mut partial_acks = 0u64;
    for k in 0..sites {
        let (server, engine, addr) = start_server(ServerConfig::default());
        let mut c = connect(&addr, &format!("crash-site-{k}"));
        c.put("shared", &preload_set()).unwrap();
        // Arm the deterministic fault ACROSS THE WIRE: this is the hook
        // that makes the durability contract testable from outside.
        c.arm_faults(FaultSchedule::AtSite(k), FaultKind::WriteFail)
            .unwrap();
        let acked = drive_wire_txns(&mut c);
        let full = 1 + WIRE_TXNS.len();
        if acked.len() < full {
            crashes += 1;
        }
        if acked.len() > 1 && acked.len() < full {
            partial_acks += 1; // some txn acked over the wire, then the crash
        }
        drop(c);
        drop(server);

        // Recover from durable state alone and hold the contract:
        // acknowledged ⇒ recovered, unacknowledged ⇒ atomically absent.
        let recovered = engine.recover(&[("shared", member_schema())]).unwrap();
        let identity = recovered.latest_identity("shared").unwrap();
        let got = records_identity_to_set(&identity).unwrap();
        assert_eq!(
            got,
            expected_members(&acked),
            "site {k}: recovered state must be exactly the acknowledged commits"
        );
    }
    assert!(
        crashes > 0,
        "no site ever crashed a commit — sweep is vacuous"
    );
    assert!(
        partial_acks > 0,
        "no site crashed BETWEEN the two commits — the ack⇒recoverable case was never exercised"
    );
}

// ---------------------------------------------------------------------------
// Metrics over the wire.
// ---------------------------------------------------------------------------

#[test]
fn metrics_exposition_travels_the_wire() {
    let _guard = serial();
    let (_server, _engine, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr, "metrics");
    c.ping().unwrap();
    let text = c.metrics(false).unwrap();
    assert!(
        text.contains(xst_obs::names::SERVER_REQUESTS_TOTAL),
        "prometheus exposition must carry the server families"
    );
    let json = c.metrics(true).unwrap();
    assert!(json.contains(xst_obs::names::SERVER_ACCEPTED_TOTAL));
}
