//! Transaction isolation suite: snapshot isolation, first-committer-wins,
//! and the deterministic interleaving sweep against the sequential oracle.
//!
//! The sweep is the tentpole check: every enumerable schedule of small
//! concurrent workloads must be final-state serializable — some serial
//! order of the transactions that actually committed produces the same
//! table. The harness must also *convict* a deliberately broken conflict
//! check, proving the oracle has teeth.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xst_core::Value;
use xst_storage::{Record, Schema, Storage, StorageError, TxnManager, Wal};
use xst_testkit::sched::{
    check_schedule, enumerate_schedules, find_serial_equivalent, kv_schema, random_schedule, row,
    run_schedule, schedule_count, serial_rows, steps_of, Op, Script, TABLE,
};

fn fresh() -> TxnManager {
    let mgr = TxnManager::new(&Storage::new(), Wal::new());
    mgr.create_table(TABLE, kv_schema()).unwrap();
    mgr
}

// ---------------------------------------------------------------------------
// Direct isolation properties.
// ---------------------------------------------------------------------------

#[test]
fn snapshot_reads_are_stable_under_concurrent_commits() {
    let mgr = fresh();
    mgr.autocommit_insert(TABLE, &[row(1, 10), row(2, 20)])
        .unwrap();
    let mut reader = mgr.begin();
    let first = reader.scan(TABLE).unwrap();
    // Ten commits land while the reader stays open; its view never moves,
    // through both raw scans and the set-engine query surface.
    for i in 0..10 {
        mgr.autocommit_insert(TABLE, &[row(100 + i, i)]).unwrap();
        assert_eq!(reader.scan(TABLE).unwrap(), first, "scan after commit {i}");
        let engine = reader.engine(TABLE).unwrap();
        assert_eq!(engine.identity().card(), 2, "engine after commit {i}");
    }
    assert_eq!(
        mgr.begin().scan(TABLE).unwrap().len(),
        12,
        "new txns see all"
    );
}

#[test]
fn read_your_own_writes_and_abort_discards_them() {
    let mgr = fresh();
    mgr.autocommit_insert(TABLE, &[row(1, 10)]).unwrap();
    let mut txn = mgr.begin();
    txn.insert(TABLE, row(2, 20)).unwrap();
    txn.delete(TABLE, row(1, 10)).unwrap();
    assert_eq!(txn.scan(TABLE).unwrap(), vec![row(2, 20)]);
    txn.abort();
    assert_eq!(
        mgr.begin().scan(TABLE).unwrap(),
        vec![row(1, 10)],
        "abort undone"
    );
    // An implicitly dropped transaction aborts too.
    let mut dropped = mgr.begin();
    dropped.insert(TABLE, row(9, 90)).unwrap();
    drop(dropped);
    assert_eq!(mgr.begin().scan(TABLE).unwrap(), vec![row(1, 10)]);
}

#[test]
fn first_committer_wins_and_loser_can_rerun() {
    let mgr = fresh();
    mgr.autocommit_insert(TABLE, &[row(1, 0)]).unwrap();
    let mut t1 = mgr.begin();
    let mut t2 = mgr.begin();
    for t in [&mut t1, &mut t2] {
        t.delete(TABLE, row(1, 0)).unwrap();
        t.insert(TABLE, row(1, 1)).unwrap();
    }
    t1.commit().unwrap();
    match t2.commit() {
        Err(StorageError::TxnConflict { table, .. }) => assert_eq!(table, TABLE),
        other => panic!("expected TxnConflict, got {other:?}"),
    }
    // The standard client response: re-run against a fresh snapshot.
    let mut retry = mgr.begin();
    retry.delete(TABLE, row(1, 1)).unwrap();
    retry.insert(TABLE, row(1, 2)).unwrap();
    retry.commit().unwrap();
    assert_eq!(mgr.begin().scan(TABLE).unwrap(), vec![row(1, 2)]);
}

// ---------------------------------------------------------------------------
// The interleaving sweep: exhaustive schedules vs the sequential oracle.
// ---------------------------------------------------------------------------

/// Sweep every interleaving of `scripts`, asserting each outcome has a
/// serial witness. Serial outcomes are precomputed per committed-subset
/// permutation (they depend only on which transactions committed, not on
/// the schedule), so the sweep cost is one scheduled run per schedule.
fn sweep_all(scripts: &[Script]) -> usize {
    let n = scripts.len();
    // Precompute the oracle for every permutation of every subset.
    let mut oracle: BTreeMap<Vec<usize>, Vec<Record>> = BTreeMap::new();
    let mut perms_of_subsets = vec![vec![]];
    for mask in 0u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        perms_of_subsets.extend(permute(&members));
    }
    for perm in perms_of_subsets {
        oracle
            .entry(perm)
            .or_insert_with_key(|p| serial_rows(scripts, p));
    }
    let schedules = enumerate_schedules(&steps_of(scripts));
    for schedule in &schedules {
        let outcome = run_schedule(scripts, schedule, false);
        let committed: Vec<usize> = (0..n).filter(|&i| outcome.committed[i]).collect();
        let witnessed = permute(&committed)
            .into_iter()
            .any(|perm| oracle[&perm] == outcome.final_rows);
        assert!(
            witnessed,
            "schedule {schedule:?} over {scripts:?} is not serializable: \
             committed={committed:?}, final_rows={:?}",
            outcome.final_rows
        );
    }
    schedules.len()
}

fn permute(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permute(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

#[test]
fn two_txn_two_op_sweep_enumerates_exactly_twenty_schedules() {
    // The acceptance-criteria case: 2 transactions × 2 ops each = (3+3)
    // steps, C(6,3) = 20 interleavings, every one serializable.
    let scripts: Vec<Script> = vec![
        vec![Op::Increment(1), Op::Insert(2)],
        vec![Op::Increment(1), Op::Delete(2)],
    ];
    assert_eq!(schedule_count(&steps_of(&scripts)), 20);
    assert_eq!(sweep_all(&scripts), 20);
}

#[test]
fn exhaustive_sweep_small_workloads() {
    // A spread of ≤3-transaction, ≤3-op workloads chosen for maximal
    // contention: read-modify-writes on shared keys, blind inserts,
    // deletes of rows another transaction recreates.
    let workloads: Vec<Vec<Script>> = vec![
        vec![vec![Op::Increment(1)], vec![Op::Increment(1)]],
        vec![
            vec![Op::Insert(1), Op::Delete(1)],
            vec![Op::Increment(1), Op::Read],
        ],
        vec![
            vec![Op::Increment(1), Op::Increment(2), Op::Read],
            vec![Op::Increment(2), Op::Increment(1)],
        ],
        vec![
            vec![Op::Increment(1)],
            vec![Op::Increment(1)],
            vec![Op::Increment(1)],
        ],
        vec![
            vec![Op::Insert(1), Op::Increment(1)],
            vec![Op::Delete(1), Op::Insert(3)],
            vec![Op::Read, Op::Increment(3)],
        ],
    ];
    let mut total = 0;
    for scripts in &workloads {
        total += sweep_all(scripts);
    }
    // C(4,2) + C(6,3) + C(7,3) + 6!/2!³ + 9!/3!³ — the sweep really
    // enumerated them all.
    assert_eq!(total, 6 + 20 + 35 + 90 + 1680);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "34 650 schedules; run in release (CI does)"
)]
fn exhaustive_sweep_three_by_three() {
    // The full 3-transaction × 3-op case: 12!/(4!)³ = 34 650 schedules.
    let scripts: Vec<Script> = vec![
        vec![Op::Increment(1), Op::Insert(2), Op::Read],
        vec![Op::Increment(1), Op::Delete(2), Op::Increment(3)],
        vec![Op::Insert(2), Op::Increment(3), Op::Increment(1)],
    ];
    assert_eq!(sweep_all(&scripts), 34_650);
}

#[test]
fn broken_conflict_detection_is_convicted_by_the_sweep() {
    // The guard test: with first-committer-wins disabled, at least one
    // schedule must produce an outcome NO serial order explains. If the
    // harness can't convict a deliberately broken implementation, its
    // green runs mean nothing.
    let scripts: Vec<Script> = vec![vec![Op::Increment(1)], vec![Op::Increment(1)]];
    let mut convicted = 0;
    for schedule in enumerate_schedules(&steps_of(&scripts)) {
        let outcome = run_schedule(&scripts, &schedule, true);
        if find_serial_equivalent(&scripts, &outcome).is_none() {
            convicted += 1;
        }
    }
    assert!(
        convicted > 0,
        "the oracle must flag lost updates under broken conflict detection"
    );
    // And the correct implementation passes every one of the same schedules.
    for schedule in enumerate_schedules(&steps_of(&scripts)) {
        check_schedule(&scripts, &schedule, false);
    }
}

// ---------------------------------------------------------------------------
// Seed-replayable randomized schedules beyond the exhaustive envelope.
// ---------------------------------------------------------------------------

fn arb_script(max_ops: usize) -> impl Strategy<Value = Script> {
    let op = prop_oneof![
        (1i64..4).prop_map(Op::Insert),
        (1i64..4).prop_map(Op::Delete),
        (1i64..4).prop_map(Op::Increment),
        Just(Op::Read),
    ];
    prop::collection::vec(op, 1..max_ops + 1)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Random 2–4-transaction workloads under seed-replayable random
    /// schedules: every outcome must have a serial witness. A failure
    /// prints the scripts and the schedule seed — rerunning with that seed
    /// replays the exact interleaving.
    #[test]
    fn randomized_schedules_are_serializable(
        scripts in prop::collection::vec(arb_script(4), 2..5),
        seed in any::<u64>(),
    ) {
        let schedule = random_schedule(&steps_of(&scripts), seed);
        let outcome = run_schedule(&scripts, &schedule, false);
        prop_assert!(
            find_serial_equivalent(&scripts, &outcome).is_some(),
            "seed {seed}: schedule {schedule:?} not serializable; \
             committed={:?} final={:?}",
            outcome.committed,
            outcome.final_rows
        );
    }

    /// Whatever the schedule, a committed increment is never lost: the
    /// final value at each key equals the number of committed increments
    /// of that key (when increments are the only ops in play).
    #[test]
    fn committed_increments_are_never_lost(
        per_txn in prop::collection::vec((1i64..3, 1usize..4), 2..4),
        seed in any::<u64>(),
    ) {
        let scripts: Vec<Script> = per_txn
            .iter()
            .map(|&(k, n)| vec![Op::Increment(k); n])
            .collect();
        let schedule = random_schedule(&steps_of(&scripts), seed);
        let outcome = run_schedule(&scripts, &schedule, false);
        for key in 1i64..3 {
            let expected: i64 = per_txn
                .iter()
                .zip(&outcome.committed)
                .filter(|&(&(k, _), &c)| c && k == key)
                .map(|(&(_, n), _)| n as i64)
                .sum();
            let got = outcome
                .final_rows
                .iter()
                .filter(|r| r.values().first() == Some(&Value::Int(key)))
                .map(|r| match r.values().get(1) {
                    Some(Value::Int(v)) => *v,
                    _ => 0,
                })
                .sum::<i64>();
            prop_assert_eq!(got, expected, "seed {}, key {}", seed, key);
        }
    }
}

// ---------------------------------------------------------------------------
// Real threads: snapshot readers do not block — or observe — a writer.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_readers_never_observe_intermediate_states() {
    // The writer commits atomic PAIRS: every commit inserts ⟨i, i⟩ and
    // ⟨1000+i, i⟩ in one transaction. The invariant every reader checks:
    // low-key rows and high-key rows always balance. A torn (partially
    // visible) commit would break it instantly.
    let mgr = fresh();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let mgr = mgr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snapshots_checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = mgr.begin();
                    let rows = txn.scan(TABLE).unwrap();
                    let low = rows
                        .iter()
                        .filter(|r| matches!(r.values().first(), Some(Value::Int(k)) if *k < 1000))
                        .count();
                    assert_eq!(rows.len(), low * 2, "intermediate state observed: {rows:?}");
                    // Pinned snapshots stay stable while held.
                    assert_eq!(txn.scan(TABLE).unwrap(), rows);
                    txn.commit().unwrap();
                    snapshots_checked += 1;
                }
                snapshots_checked
            })
        })
        .collect();
    for i in 0..200i64 {
        let mut txn = mgr.begin();
        txn.insert(TABLE, row(i, i)).unwrap();
        txn.insert(TABLE, row(1000 + i, i)).unwrap();
        txn.commit().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checked: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(checked > 0, "readers made progress alongside the writer");
    assert_eq!(mgr.begin().scan(TABLE).unwrap().len(), 400);
}

// ---------------------------------------------------------------------------
// Durability wiring: the commit path really is the group-commit WAL path.
// ---------------------------------------------------------------------------

#[test]
fn committed_schedule_outcomes_survive_recovery() {
    let storage = Storage::new();
    let wal = Wal::new();
    let mgr = TxnManager::new(&storage, wal.clone());
    mgr.create_table(TABLE, kv_schema()).unwrap();
    mgr.create_table("other", Schema::new(["k", "v"])).unwrap();
    // Two committed transactions (one multi-table), one conflict-aborted,
    // one in-flight at crash time.
    mgr.autocommit_insert(TABLE, &[row(1, 0)]).unwrap();
    let mut t1 = mgr.begin();
    let mut t2 = mgr.begin();
    for t in [&mut t1, &mut t2] {
        t.delete(TABLE, row(1, 0)).unwrap();
        t.insert(TABLE, row(1, 1)).unwrap();
    }
    t1.insert("other", row(7, 70)).unwrap();
    t1.commit().unwrap();
    assert!(t2.commit().is_err(), "t2 loses first-committer-wins");
    let mut inflight = mgr.begin();
    inflight.insert(TABLE, row(9, 90)).unwrap();
    std::mem::forget(inflight); // crash with the txn open
    let expected = mgr.begin().scan(TABLE).unwrap();
    drop(mgr);
    wal.drop_staged(); // staged-but-unacknowledged bytes die with the process
    let recovered = TxnManager::recover(
        &storage,
        wal,
        Wal::new(),
        &[(TABLE, kv_schema()), ("other", Schema::new(["k", "v"]))],
    )
    .unwrap();
    assert_eq!(recovered.begin().scan(TABLE).unwrap(), expected);
    assert_eq!(recovered.begin().scan("other").unwrap(), vec![row(7, 70)]);
}
