//! The whole paper, replayed through the interactive shell: every command
//! a user would type at `xst-shell`, with the printed outputs pinned.

use xst_shell::Session;

fn run(s: &mut Session, line: &str) -> String {
    s.eval_line(line)
        .unwrap_or_else(|e| panic!("'{line}' failed: {e}"))
        .unwrap_or_default()
}

#[test]
fn example_8_1_walkthrough() {
    let mut s = Session::new();
    run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}");
    assert_eq!(run(&mut s, "apply f {⟨a⟩}"), "{⟨x⟩}");
    assert_eq!(run(&mut s, "function? f"), "true");
    // The inverse behavior (explicit τ = ⟨⟨2⟩,⟨1⟩⟩) is one-to-many.
    assert_eq!(run(&mut s, "image f {⟨x⟩} ⟨2⟩ ⟨1⟩"), "{⟨a⟩, ⟨c⟩}");
}

#[test]
fn composition_walkthrough() {
    let mut s = Session::new();
    run(&mut s, "let f = {⟨a, b⟩, ⟨c, d⟩}");
    run(&mut s, "let g = {⟨b, z⟩, ⟨d, w⟩}");
    assert_eq!(run(&mut s, "compose g f"), "{⟨a, z⟩, ⟨c, w⟩}");
    // Composition agrees with staging.
    run(&mut s, "let gf = {⟨a, z⟩, ⟨c, w⟩}");
    assert_eq!(run(&mut s, "apply gf {⟨a⟩}"), "{⟨z⟩}");
}

#[test]
fn reachability_walkthrough() {
    let mut s = Session::new();
    run(&mut s, "let edges = {⟨a, b⟩, ⟨b, c⟩, ⟨c, d⟩}");
    let tc = run(&mut s, "tc edges");
    for pair in ["⟨a, b⟩", "⟨a, c⟩", "⟨a, d⟩", "⟨b, d⟩"] {
        assert!(tc.contains(pair), "{tc} missing {pair}");
    }
}

#[test]
fn scoped_membership_walkthrough() {
    let mut s = Session::new();
    run(&mut s, "let m = {a^1, a^2, b}");
    assert_eq!(run(&mut s, "card m"), "3");
    assert_eq!(run(&mut s, "domain m {1^9}"), "∅");
    // Re-scoping a flat set of atoms projects nothing (atoms have no
    // members) — the σ-domain of atom members is empty.
    run(&mut s, "let pairs = {⟨p, q⟩}");
    assert_eq!(run(&mut s, "domain pairs ⟨2⟩"), "{⟨q⟩}");
}

#[test]
fn session_state_is_cumulative_and_error_tolerant() {
    let mut s = Session::new();
    run(&mut s, "let a = {1}");
    assert!(s.eval_line("union a missing").is_err());
    run(&mut s, "let b = {2}");
    assert_eq!(run(&mut s, "union a b"), "{1, 2}");
    let vars = run(&mut s, "vars");
    assert!(vars.contains("a = {1}") && vars.contains("b = {2}"));
}
