//! Axiom-level properties of the extended set universe, verified on random
//! sets — the "Extended Set Theory" foundation (the paper's reference [1])
//! underneath the behavior algebra.

use proptest::prelude::*;
use xst_core::ops::{
    big_union, difference, intersection, pairing, powerset, replacement, separation, union,
};
use xst_core::{ExtendedSet, Member, Value};
use xst_testkit::{arb_set, arb_value};

/// Small sets only — powerset is exponential.
fn arb_small_set() -> impl Strategy<Value = ExtendedSet> {
    prop::collection::vec(((0i64..5).prop_map(Value::Int), 0i64..3), 0..6).prop_map(|pairs| {
        ExtendedSet::from_members(
            pairs
                .into_iter()
                .map(|(e, s)| Member::new(e, Value::Int(s)))
                .collect(),
        )
    })
}

proptest! {
    /// Extensionality (scoped form): two sets are equal iff they have the
    /// same scoped memberships.
    #[test]
    fn extensionality(a in arb_set(2), b in arb_set(2)) {
        let same_members = a.members() == b.members();
        prop_assert_eq!(a == b, same_members);
    }

    /// Pairing: {a, b} contains exactly a and b.
    #[test]
    fn pairing_axiom(a in arb_value(2), b in arb_value(2)) {
        let p = pairing(&a, &b);
        prop_assert!(p.contains_classical(&a));
        prop_assert!(p.contains_classical(&b));
        prop_assert!(p.card() <= 2 && p.card() >= 1);
        prop_assert_eq!(p.card() == 1, a == b);
    }

    /// Powerset: |P(A)| = 2^|A|; members are exactly the subsets.
    #[test]
    fn powerset_axiom(a in arb_small_set()) {
        let p = powerset(&a);
        prop_assert_eq!(p.card(), 1usize << a.card());
        for (e, _) in p.iter() {
            prop_assert!(e.as_set().unwrap().is_subset(&a));
        }
        // A itself and ∅ are members.
        prop_assert!(p.contains_classical(&Value::Set(a.clone())));
        prop_assert!(p.contains_classical(&Value::empty_set()));
    }

    /// Union axiom: x ∈_s ⋃A iff some set-member of A has x ∈_s it.
    #[test]
    fn union_axiom(a in arb_set(2)) {
        let u = big_union(&a);
        for (e, _) in a.iter() {
            if let Some(inner) = e.as_set() {
                prop_assert!(inner.is_subset(&u));
            }
        }
        // And nothing else: every member of u is witnessed.
        for m in u.members() {
            let witnessed = a.iter().any(|(e, _)| {
                e.as_set().is_some_and(|inner| inner.contains(&m.element, &m.scope))
            });
            prop_assert!(witnessed);
        }
    }

    /// Separation: the filtered set is the largest subset satisfying the
    /// predicate.
    #[test]
    fn separation_axiom(a in arb_set(2)) {
        let sep = separation(&a, |e, _| !matches!(e, Value::Bool(_)));
        prop_assert!(sep.is_subset(&a));
        for m in a.members() {
            let keep = !matches!(m.element, Value::Bool(_));
            prop_assert_eq!(sep.contains(&m.element, &m.scope), keep);
        }
    }

    /// Replacement: the image set is no larger and is fully covered.
    #[test]
    fn replacement_axiom(a in arb_set(2)) {
        let image = replacement(&a, |e| Value::Set(ExtendedSet::tuple([e.clone()])));
        prop_assert_eq!(image.card(), a.card(), "injective replacement preserves card");
        let collapsed = replacement(&a, |_| Value::Int(0));
        prop_assert_eq!(collapsed.card(), a.distinct_scopes());
    }

    /// Boolean structure: the member lattice is distributive with ∅ as
    /// bottom (a sanity bundle the other suites rely on).
    #[test]
    fn lattice_bundle(a in arb_set(2), b in arb_set(2)) {
        prop_assert_eq!(union(&a, &b).is_empty(), a.is_empty() && b.is_empty());
        prop_assert!(intersection(&a, &b).is_subset(&union(&a, &b)));
        prop_assert_eq!(
            difference(&a, &intersection(&a, &b)),
            difference(&a, &b)
        );
    }
}

#[test]
fn powerset_of_powerset_nests() {
    // P(P({x})) has 4 members; deep nesting stays canonical.
    let a = ExtendedSet::classical([Value::sym("x")]);
    let pp = powerset(&powerset(&a));
    assert_eq!(pp.card(), 4);
    for (e, _) in pp.iter() {
        for (inner, _) in e.as_set().unwrap().iter() {
            assert!(inner.as_set().unwrap().is_subset(&a));
        }
    }
}
