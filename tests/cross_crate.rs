//! End-to-end integration across the whole stack: storage → identities →
//! engines → relational algebra → query optimizer. The 1977 pitch is that
//! one mathematical model covers all of these layers; these tests hold the
//! layers against each other.

use proptest::prelude::*;
use xst_core::Value;
use xst_query::{eval, Optimizer};
use xst_relational::{algebra, Catalog, Query, RelSchema, Relation};
use xst_storage::{
    restructure_records, restructure_set, BufferPool, Index, Record, RecordEngine, Restructuring,
    Schema, SetEngine, Storage, Table,
};

fn sample_db() -> (Storage, Table, Table) {
    let storage = Storage::new();
    let mut users = Table::create(&storage, Schema::new(["uid", "name", "dept"]));
    users
        .load(&[
            Record::new([Value::Int(1), Value::str("ann"), Value::sym("eng")]),
            Record::new([Value::Int(2), Value::str("bo"), Value::sym("ops")]),
            Record::new([Value::Int(3), Value::str("cy"), Value::sym("eng")]),
            Record::new([Value::Int(4), Value::str("di"), Value::sym("hr")]),
        ])
        .unwrap();
    let mut tickets = Table::create(&storage, Schema::new(["tid", "uid", "sev"]));
    tickets
        .load(&[
            Record::new([Value::Int(100), Value::Int(1), Value::Int(2)]),
            Record::new([Value::Int(101), Value::Int(1), Value::Int(1)]),
            Record::new([Value::Int(102), Value::Int(3), Value::Int(3)]),
            Record::new([Value::Int(103), Value::Int(9), Value::Int(1)]),
        ])
        .unwrap();
    (storage, users, tickets)
}

#[test]
fn storage_to_relational_to_query_pipeline() {
    let (storage, users, tickets) = sample_db();
    let pool = BufferPool::new(storage, 16);
    let mut catalog = Catalog::new();
    catalog.register_table("users", &users, &pool).unwrap();
    catalog.register_table("tickets", &tickets, &pool).unwrap();

    // Names of engineers with a severity-3 ticket.
    let q = Query::from("users")
        .select_eq("dept", Value::sym("eng"))
        .join("tickets", "uid", "uid")
        .select_eq("sev", Value::Int(3))
        .project(&["name"]);
    let result = q.run(&catalog).unwrap();
    assert_eq!(result.len(), 1);
    assert!(result.contains_row(&[Value::str("cy")]));

    // The compiled expression evaluates to the same identity, optimized or
    // not.
    let expr = q.to_expr(&catalog).unwrap();
    let bindings = catalog.bindings();
    let raw = eval(&expr, &bindings).unwrap();
    let (optimized, _) = Optimizer::new().optimize(&expr);
    let opt = eval(&optimized, &bindings).unwrap();
    assert_eq!(raw, opt);
    assert_eq!(&raw, result.identity());
}

#[test]
fn engines_agree_end_to_end() {
    let (storage, users, tickets) = sample_db();
    let pool = BufferPool::new(storage, 16);
    let rec = RecordEngine::new(&pool);
    let su = SetEngine::load(&users, &pool).unwrap();
    let st = SetEngine::load(&tickets, &pool).unwrap();

    // Selection.
    assert_eq!(
        rec.select(&users, "dept", &Value::sym("eng")).unwrap(),
        SetEngine::to_records(&su.select("dept", &Value::sym("eng")).unwrap()).unwrap()
    );
    // Projection.
    assert_eq!(
        rec.project(&users, &["dept"]).unwrap(),
        SetEngine::to_records(&su.project(&["dept"]).unwrap()).unwrap()
    );
    // Join.
    assert_eq!(
        rec.join(&users, &tickets, "uid", "uid").unwrap(),
        SetEngine::to_records(&su.join(&st, "uid", "uid").unwrap()).unwrap()
    );
}

#[test]
fn index_pushdown_reads_fewer_pages_than_scan() {
    // Large file, selective predicate: the index-driven plan touches a
    // fraction of the pages (experiment E3's shape).
    let storage = Storage::new();
    let mut table = Table::create(&storage, Schema::new(["id", "payload"]));
    let records: Vec<Record> = (0..20_000)
        .map(|i| Record::new([Value::Int(i), Value::str(format!("row-{i}"))]))
        .collect();
    table.load(&records).unwrap();
    let pool = BufferPool::new(storage, 4);

    let index = Index::build(&table.file, &pool, 0).unwrap();

    // Full-scan cost.
    pool.clear();
    pool.reset_stats();
    let mut scan_hits = 0;
    table
        .file
        .scan(&pool, |_, r| {
            if r.get(0) == Some(&Value::Int(12_345)) {
                scan_hits += 1;
            }
            Ok(())
        })
        .unwrap();
    let scan_reads = pool.stats().disk_reads;

    // Index-driven cost.
    pool.clear();
    pool.reset_stats();
    let rids = index.lookup(&Value::Int(12_345));
    let pages = Index::pages_of(&rids);
    let mut idx_hits = 0;
    table
        .file
        .scan_pages(&pool, &pages, |_, r| {
            if r.get(0) == Some(&Value::Int(12_345)) {
                idx_hits += 1;
            }
            Ok(())
        })
        .unwrap();
    let idx_reads = pool.stats().disk_reads;

    assert_eq!(scan_hits, 1);
    assert_eq!(idx_hits, 1);
    assert!(scan_reads > 50, "the file spans many pages: {scan_reads}");
    assert_eq!(idx_reads, 1, "point access touches one page");
}

#[test]
fn restructure_disciplines_agree_and_differ_in_io() {
    let (storage, users, _) = sample_db();
    let pool = BufferPool::new(storage.clone(), 16);
    let spec = Restructuring::new(&users.schema, [("dept", "dept"), ("uid", "uid")]).unwrap();

    let engine = SetEngine::load(&users, &pool).unwrap();
    storage.reset_stats();
    let set_way = restructure_set(engine.identity(), &spec);
    assert_eq!(storage.stats().transfers(), 0, "re-scope is storage-free");

    let record_way = restructure_records(&users, &pool, &storage, &spec).unwrap();
    assert!(storage.stats().disk_writes > 0, "rewrite pays page writes");

    let mut rec_rows = record_way.file.read_all(&pool).unwrap();
    rec_rows.sort();
    rec_rows.dedup();
    assert_eq!(rec_rows, SetEngine::to_records(&set_way).unwrap());
}

#[test]
fn relation_algebra_matches_engine_results() {
    let (storage, users, _) = sample_db();
    let pool = BufferPool::new(storage, 16);
    let engine = SetEngine::load(&users, &pool).unwrap();
    let rel = Relation::from_identity(
        RelSchema::new(["uid", "name", "dept"]).unwrap(),
        engine.identity().clone(),
    )
    .unwrap();
    let via_algebra = algebra::select_eq(&rel, "dept", &Value::sym("eng")).unwrap();
    let via_engine = engine.select("dept", &Value::sym("eng")).unwrap();
    assert_eq!(via_algebra.identity(), &via_engine);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random single-column tables: the two engines agree on boolean
    /// operations whatever the data.
    #[test]
    fn engines_agree_on_random_boolean_ops(
        xs in prop::collection::btree_set(0i64..50, 0..30),
        ys in prop::collection::btree_set(0i64..50, 0..30),
    ) {
        let storage = Storage::new();
        let schema = Schema::new(["v"]);
        let mut a = Table::create(&storage, schema.clone());
        let rows_a: Vec<Record> = xs.iter().map(|&i| Record::new([Value::Int(i)])).collect();
        a.load(&rows_a).unwrap();
        let mut b = Table::create(&storage, schema);
        let rows_b: Vec<Record> = ys.iter().map(|&i| Record::new([Value::Int(i)])).collect();
        b.load(&rows_b).unwrap();
        let pool = BufferPool::new(storage, 8);
        let rec = RecordEngine::new(&pool);
        let sa = SetEngine::load(&a, &pool).unwrap();
        let sb = SetEngine::load(&b, &pool).unwrap();
        prop_assert_eq!(
            rec.union(&a, &b).unwrap(),
            SetEngine::to_records(&sa.union(&sb)).unwrap()
        );
        prop_assert_eq!(
            rec.intersect(&a, &b).unwrap(),
            SetEngine::to_records(&sa.intersect(&sb)).unwrap()
        );
        prop_assert_eq!(
            rec.difference(&a, &b).unwrap(),
            SetEngine::to_records(&sa.difference(&sb)).unwrap()
        );
    }

    /// Random two-table joins: engines and relational algebra agree.
    #[test]
    fn engines_agree_on_random_joins(
        left in prop::collection::btree_set((0i64..20, 0i64..8), 0..20),
        right in prop::collection::btree_set((0i64..8, 0i64..20), 0..20),
    ) {
        let storage = Storage::new();
        let mut l = Table::create(&storage, Schema::new(["a", "k"]));
        let rows_l: Vec<Record> = left
            .iter()
            .map(|&(a, k)| Record::new([Value::Int(a), Value::Int(k)]))
            .collect();
        l.load(&rows_l).unwrap();
        let mut r = Table::create(&storage, Schema::new(["k", "b"]));
        let rows_r: Vec<Record> = right
            .iter()
            .map(|&(k, b)| Record::new([Value::Int(k), Value::Int(b)]))
            .collect();
        r.load(&rows_r).unwrap();
        let pool = BufferPool::new(storage, 8);
        let rec = RecordEngine::new(&pool);
        let sl = SetEngine::load(&l, &pool).unwrap();
        let sr = SetEngine::load(&r, &pool).unwrap();
        prop_assert_eq!(
            rec.join(&l, &r, "k", "k").unwrap(),
            SetEngine::to_records(&sl.join(&sr, "k", "k").unwrap()).unwrap()
        );
    }
}
