//! Example 9.1 from the paper: one set carries *all four* square roots of
//! 16, and σ-Value selects among them by scope. Multi-valued "functions"
//! stop being a paradox when results are sets with scoped members.
//!
//! Run with `cargo run --example sqrt_multivalue`.

use xst_core::ops::{labeled_values, sigma_value};
use xst_core::prelude::*;

/// Build the full square-root set of a perfect square: real roots under
/// scopes ⟨+⟩/⟨-⟩, imaginary roots of the negation under ⟨i⟩/⟨-i⟩
/// (represented symbolically).
fn sqrt_set(n: i64) -> ExtendedSet {
    let root = (n as f64).sqrt();
    let exact = root as i64;
    assert_eq!(exact * exact, n, "demo uses perfect squares");
    labeled_values([
        ("+", Value::Int(exact)),
        ("-", Value::Int(-exact)),
        ("i", Value::sym(format!("{exact}i"))),
        ("-i", Value::sym(format!("-{exact}i"))),
    ])
}

fn main() -> XstResult<()> {
    let roots = sqrt_set(16);
    println!("√√16 = {roots}");
    for label in ["+", "-", "i", "-i"] {
        let v = sigma_value(&roots, &Value::sym(label))?;
        println!("𝒱_{label:<2}(√√16) = {v}");
    }

    // The classical Value operation (Definition 9.9) needs a classically
    // scoped member — absent here, so it is undefined. That is the point:
    // nothing is lost, selection just has to say which root it wants.
    match xst_core::ops::value(&roots) {
        Err(e) => println!("𝒱(√√16) is undefined: {e}"),
        Ok(v) => unreachable!("no classical member, got {v}"),
    }

    // A "function" that returns the whole root set is a perfectly good XST
    // behavior: sets-to-sets.
    let sqrt16 = ExtendedSet::pair(Value::Int(16), Value::Set(sqrt_set(16)));
    let sqrt25 = ExtendedSet::pair(Value::Int(25), Value::Set(sqrt_set(25)));
    let sqrt = Process::pairs(ExtendedSet::classical([
        Value::Set(sqrt16),
        Value::Set(sqrt25),
    ]));
    let image = sqrt.apply(&ExtendedSet::classical([Value::Set(ExtendedSet::tuple([
        Value::Int(25),
    ]))]));
    println!("\nsqrt({{⟨25⟩}}) = {image}");
    Ok(())
}
