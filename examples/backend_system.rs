//! The VLDB-1977 pitch end to end: a (simulated) backend information
//! system where every layer — pages, files, indexes, queries — is governed
//! by one mathematical model.
//!
//! * data lives in slotted pages on a simulated disk,
//! * its identity is an extended set (bit-exact through the binary codec),
//! * queries arrive as text, compile to the XST algebra, and are optimized
//!   by paper-law rewrites,
//! * access cost is counted in page transfers and cut by restriction
//!   pushdown,
//! * the whole disk snapshots to a checksummed image and restores.
//!
//! Run with `cargo run --example backend_system`.

use xst_core::Value;
use xst_relational::{group_by, parse_query, Aggregate, Catalog};
use xst_storage::{restore, snapshot, BufferPool, Index, Record, Schema, Storage, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. populate the backend ---------------------------------------
    let storage = Storage::new();
    let mut orders = Table::create(&storage, Schema::new(["oid", "region", "amount"]));
    let regions = ["emea", "apac", "amer"];
    let rows: Vec<Record> = (0..5_000)
        .map(|i| {
            Record::new([
                Value::Int(i),
                Value::sym(regions[(i % 3) as usize]),
                Value::Int((i * 37) % 500),
            ])
        })
        .collect();
    orders.load(&rows)?;
    println!(
        "loaded {} orders into {} pages",
        orders.file.record_count(),
        orders.file.page_count()?
    );

    // ---- 2. text query through the optimizer ---------------------------
    let pool = BufferPool::new(storage.clone(), 32);
    let mut catalog = Catalog::new();
    catalog.register_table("orders", &orders, &pool)?;
    let q = parse_query(
        "from orders | where region = emea | where amount in (0, 37, 74) | select oid, amount",
    )?;
    let result = q.run(&catalog)?;
    println!("\ntext query matched {} orders", result.len());
    let expr = q.to_expr(&catalog)?;
    println!("compiled : {expr}");
    let (optimized, trace) = xst_query::Optimizer::new().optimize(&expr);
    println!("optimized: {optimized} ({} rewrites)", trace.len());

    // ---- 3. aggregation over the same identity -------------------------
    let totals = group_by(
        catalog.get("orders")?,
        &["region"],
        &[(Aggregate::Count, "oid"), (Aggregate::Sum, "amount")],
    )?;
    println!("\nrevenue by region:\n{totals}");

    // ---- 4. access-path economics ---------------------------------------
    let index = Index::build(&orders.file, &pool, 0)?;
    let key = Value::Int(2_500);
    pool.clear();
    pool.reset_stats();
    let mut via_scan = None;
    orders.file.scan(&pool, |_, r| {
        if r.get(0) == Some(&key) {
            via_scan = Some(r);
        }
        Ok(())
    })?;
    let scan_reads = pool.stats().disk_reads;
    pool.clear();
    pool.reset_stats();
    let pages = Index::pages_of(&index.lookup(&key));
    let mut via_index = None;
    orders.file.scan_pages(&pool, &pages, |_, r| {
        if r.get(0) == Some(&key) {
            via_index = Some(r);
        }
        Ok(())
    })?;
    println!(
        "point lookup: scan = {scan_reads} page reads, pushdown = {} page reads",
        pool.stats().disk_reads
    );
    assert_eq!(via_scan, via_index);

    // ---- 5. snapshot / restore -----------------------------------------
    let image = snapshot(&storage);
    println!("\nsnapshot: {} bytes (checksummed)", image.len());
    let restored = restore(&image)?;
    let pool2 = BufferPool::new(restored, 32);
    let mut catalog2 = Catalog::new();
    catalog2.register_table("orders", &orders_on(&pool2), &pool2)?;
    let again = q.run(&catalog2)?;
    assert_eq!(again.identity(), result.identity());
    println!("restored disk answers the same query identically: true");
    Ok(())
}

/// Re-open the orders table shape against a restored disk: the heap file is
/// file 0 with the same schema. (A production system would persist the
/// catalog in the snapshot too; re-declaring the schema keeps the example
/// focused on the storage identity.)
fn orders_on(pool: &BufferPool) -> Table {
    let storage = pool.storage().clone();
    let mut t = Table::create(&storage, Schema::new(["oid", "region", "amount"]));
    // Rebuild from the restored file-0 pages through the pool.
    let mut rows = Vec::new();
    let pages = storage
        .page_count(xst_storage::FileId(0))
        .expect("file 0 exists");
    for page in 0..pages {
        let p = pool
            .get(xst_storage::PageId {
                file: xst_storage::FileId(0),
                page,
            })
            .expect("page readable");
        for payload in p.iter() {
            rows.push(Record::decode(payload).expect("valid record"));
        }
    }
    t.load(&rows).expect("reload");
    t
}
