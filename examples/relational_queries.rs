//! The relational model as extended set processing: a suppliers-and-parts
//! workload stored in slotted pages, loaded through its set identity, and
//! queried with the XST algebra.
//!
//! Run with `cargo run --example relational_queries`.

use xst_core::Value;
use xst_relational::{Catalog, Query};
use xst_storage::{BufferPool, Record, Schema, Storage, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- store data in real pages ------------------------------------
    let storage = Storage::new();
    let mut suppliers = Table::create(&storage, Schema::new(["sid", "sname", "city"]));
    suppliers.load(&[
        Record::new([Value::Int(1), Value::str("Smith"), Value::sym("london")]),
        Record::new([Value::Int(2), Value::str("Jones"), Value::sym("paris")]),
        Record::new([Value::Int(3), Value::str("Blake"), Value::sym("paris")]),
        Record::new([Value::Int(4), Value::str("Clark"), Value::sym("london")]),
        Record::new([Value::Int(5), Value::str("Adams"), Value::sym("athens")]),
    ])?;
    let mut supplies = Table::create(&storage, Schema::new(["sid", "pid", "qty"]));
    supplies.load(&[
        Record::new([Value::Int(1), Value::Int(100), Value::Int(300)]),
        Record::new([Value::Int(1), Value::Int(200), Value::Int(200)]),
        Record::new([Value::Int(2), Value::Int(100), Value::Int(400)]),
        Record::new([Value::Int(3), Value::Int(200), Value::Int(200)]),
        Record::new([Value::Int(4), Value::Int(300), Value::Int(100)]),
    ])?;
    let pool = BufferPool::new(storage.clone(), 16);

    // ---- lift into set identities ------------------------------------
    let mut catalog = Catalog::new();
    catalog.register_table("suppliers", &suppliers, &pool)?;
    catalog.register_table("supplies", &supplies, &pool)?;
    println!("catalog: {:?}", catalog.names());
    println!("page transfers so far: {}", pool.stats().transfers());

    // ---- queries ------------------------------------------------------
    // Q1: names of suppliers in London.
    let q1 = Query::from("suppliers")
        .select_eq("city", Value::sym("london"))
        .project(&["sname"]);
    println!("\nQ1 london suppliers:\n{}", q1.run(&catalog)?);

    // Q2: cities that supply part 200.
    let q2 = Query::from("suppliers")
        .join("supplies", "sid", "sid")
        .select_eq("pid", Value::Int(200))
        .project(&["city"]);
    println!("Q2 cities supplying part 200:\n{}", q2.run(&catalog)?);

    // Q3: suppliers that supply nothing (difference).
    let sids_supplying = Query::from("supplies").project(&["sid"]).run(&catalog)?;
    let mut catalog2 = catalog.clone();
    catalog2.register("sids_supplying", sids_supplying);
    let q3 = Query::from("suppliers")
        .project(&["sid"])
        .difference("sids_supplying");
    let idle = q3.run(&catalog2)?;
    println!("Q3 suppliers supplying nothing:\n{idle}");

    // The compiled form of Q2, before and after the law-driven optimizer.
    let expr = q2.to_expr(&catalog)?;
    println!("Q2 compiled : {expr}");
    Ok(())
}
