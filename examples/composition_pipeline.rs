//! Composition as program optimization (§11).
//!
//! A three-stage data-cleaning pipeline — normalize, classify, route — is
//! fused by the optimizer into a *single* relative product, eliminating the
//! intermediate result sets entirely (Theorem 11.2: the composition is
//! always constructible). The evaluator's statistics show what fusion
//! saves.
//!
//! Run with `cargo run --example composition_pipeline`.

use xst_core::prelude::*;
use xst_query::{eval_counted, explain, Bindings, Expr, Optimizer};

fn main() -> XstResult<()> {
    // Stage 1: normalize raw codes.
    let normalize = xset![
        ExtendedSet::pair("USD", "usd").into_value(),
        ExtendedSet::pair("usd", "usd").into_value(),
        ExtendedSet::pair("EUR", "eur").into_value(),
        ExtendedSet::pair("eur", "eur").into_value(),
        ExtendedSet::pair("GBP", "gbp").into_value()
    ];
    // Stage 2: classify into regions.
    let classify = xset![
        ExtendedSet::pair("usd", "americas").into_value(),
        ExtendedSet::pair("eur", "emea").into_value(),
        ExtendedSet::pair("gbp", "emea").into_value()
    ];
    // Stage 3: route to a processing queue.
    let route = xset![
        ExtendedSet::pair("americas", "queue-1").into_value(),
        ExtendedSet::pair("emea", "queue-2").into_value()
    ];

    // The literal pipeline: route[classify[normalize[x]]].
    let pipeline = Expr::lit(route).image(
        Expr::lit(classify).image(
            Expr::lit(normalize).image(Expr::table("x"), Scope::pairs()),
            Scope::pairs(),
        ),
        Scope::pairs(),
    );

    println!("-- EXPLAIN --------------------------------------------------");
    print!("{}", explain(&pipeline));

    let (optimized, trace) = Optimizer::new().optimize(&pipeline);
    println!(
        "\nstages before: 3 applications, after: 1 (fusions fired: {})",
        trace
            .iter()
            .filter(|t| t.rule == "composition-fusion")
            .count()
    );

    // Run both plans on a batch and compare work.
    let batch = ExtendedSet::classical(
        ["USD", "usd", "EUR", "eur", "GBP"]
            .into_iter()
            .map(|c| Value::Set(ExtendedSet::tuple([c]))),
    );
    let mut env = Bindings::new();
    env.insert("x".into(), batch);

    let (r1, s1) = eval_counted(&pipeline, &env)?;
    let (r2, s2) = eval_counted(&optimized, &env)?;
    assert_eq!(r1, r2, "fusion must preserve semantics");
    println!("\nresult        : {r1}");
    println!("naive plan    : {s1}");
    println!("fused plan    : {s2}");
    println!(
        "intermediate members eliminated: {}",
        s1.intermediate_members - s2.intermediate_members
    );
    Ok(())
}
