//! Quickstart: scoped sets, image, and application in a few lines.
//!
//! Run with `cargo run --example quickstart`.

use xst_core::prelude::*;

fn main() -> XstResult<()> {
    // An extended set has *scoped* members: x ∈_s A.
    let s = xset!["a" => 1, "b" => 2, "c"];
    println!("set        : {s}");
    println!("a ∈_1 s    : {}", s.contains(&sym("a"), &Value::Int(1)));
    println!("a ∈_2 s    : {}", s.contains(&sym("a"), &Value::Int(2)));

    // Ordered pairs and tuples are *defined* sets: ⟨x,y⟩ = {x^1, y^2}.
    let pair = ExtendedSet::pair("x", "y");
    println!("⟨x,y⟩      : {pair} = {{x^1, y^2}}");

    // The paper's Example 8.1: a function as set behavior.
    let f = Process::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
    println!("\nf          : {}", f.graph);
    println!("is function: {}", f.is_function());

    // Application is image: f_(σ)(x) = 𝔇_σ2(f |_σ1 x).
    let input = parse_set("{⟨a⟩}")?;
    println!("f({{⟨a⟩}})   : {}", f.apply(&input));

    // The inverse behavior shares the carrier but flips the scope — and is
    // not a function (x has two preimages).
    let inv = f.inverse();
    println!("\nf⁻¹ is function: {}", inv.is_function());
    println!("f⁻¹({{⟨x⟩}})    : {}", inv.apply(&parse_set("{⟨x⟩}")?));

    // Composition constructs a single carrier for the whole pipeline
    // (Theorem 11.2).
    let g = Process::from_pairs([("x", "up"), ("y", "down")]);
    let h = Process::compose(&g, &f)?;
    println!("\n(g∘f)({{⟨a⟩}}) : {}", h.apply(&input));
    println!("g(f({{⟨a⟩}}))  : {}", g.apply(&f.apply(&input)));
    Ok(())
}
