//! Appendix B end-to-end: self-application.
//!
//! When functions are subsets of a Cartesian product, `f[f]` is hard to
//! even state. In XST a behavior's carrier is just a set, so a set can act
//! on itself. The paper exhibits a single 5-tuple carrier `f` that, through
//! nested self-application, generates **all four** unary maps on a 2-element
//! set. This example replays the whole derivation — note that bracketing
//! matters (Example 4.2): `(f_(ω)(f_(ω)))(f_(σ))` is not `f_(ω)(f_(ω)(f_(σ)))`.
//!
//! Run with `cargo run --example self_application`.

use xst_core::prelude::*;

fn main() -> XstResult<()> {
    // f = {⟨a,a,a,b,b⟩, ⟨b,b,a,a,b⟩}
    let f_graph = xset![
        ExtendedSet::tuple(["a", "a", "a", "b", "b"]).into_value(),
        ExtendedSet::tuple(["b", "b", "a", "a", "b"]).into_value()
    ];
    let sigma = Scope::pairs(); // ⟨⟨1⟩, ⟨2⟩⟩
    let omega = Scope::new(
        ExtendedSet::tuple([1i64]),
        ExtendedSet::tuple([1i64, 3, 4, 5, 2]),
    ); // ⟨⟨1⟩, ⟨1,3,4,5,2⟩⟩

    let f_sigma = Process::new(f_graph.clone(), sigma.clone());
    let f_omega = Process::new(f_graph, omega);

    // The four unary maps on {a, b}:
    let g1 = Process::from_pairs([("a", "a"), ("b", "b")]); // identity
    let g2 = Process::from_pairs([("a", "a"), ("b", "a")]); // collapse to a
    let g3 = Process::from_pairs([("a", "b"), ("b", "a")]); // swap
    let g4 = Process::from_pairs([("a", "b"), ("b", "b")]); // collapse to b

    // (a) f_(σ) = g1 — the identity on {⟨a⟩, ⟨b⟩} (also I_A, Appendix B).
    println!(
        "(a) f_(σ) = g1 (identity)          : {}",
        f_sigma.equivalent(&g1)
    );
    let id = Process::identity_on(&xset![
        ExtendedSet::tuple(["a"]).into_value(),
        ExtendedSet::tuple(["b"]).into_value()
    ])?;
    println!(
        "    f_(σ) = I_A                    : {}",
        f_sigma.equivalent(&id)
    );

    // (b) f_(ω)(f_(σ)) = g2 — one self-application.
    let b = f_omega.apply_to_process(&f_sigma);
    println!("(b) f_(ω)(f_(σ)) = g2              : {}", b.equivalent(&g2));

    // (c) (f_(ω)(f_(ω)))(f_(σ)) = g3 — the *left*-nested bracketing.
    let ff = f_omega.apply_to_process(&f_omega);
    let c = ff.apply_to_process(&f_sigma);
    println!("(c) (f_(ω)(f_(ω)))(f_(σ)) = g3     : {}", c.equivalent(&g3));

    // (d) ((f_(ω)(f_(ω)))(f_(ω)))(f_(σ)) = g4.
    let fff = ff.apply_to_process(&f_omega);
    let d = fff.apply_to_process(&f_sigma);
    println!(
        "(d) ((f_(ω)(f_(ω)))(f_(ω)))(f_(σ)) = g4: {}",
        d.equivalent(&g4)
    );

    // One more turn of the crank closes the orbit back at the identity.
    let ffff = fff.apply_to_process(&f_omega);
    let e = ffff.apply_to_process(&f_sigma);
    println!("    one more self-application = g1 : {}", e.equivalent(&g1));

    // Show one concrete application table.
    println!("\nbehavior table for (f_(ω)(f_(ω)))(f_(σ)) — the swap g3:");
    for x in ["a", "b"] {
        let input = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([x]))]);
        println!("  {x} ↦ {}", c.apply(&input));
    }
    Ok(())
}
