//! # xst — Extended Set Theory in Rust (facade crate)
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`xst_core`] (re-exported as `core`) — the theory: scoped sets, the operation algebra,
//!   processes, function spaces, the CST layer, textual notation;
//! * [`xst_storage`] (as `storage`) — pages, buffer pool with I/O accounting,
//!   heap files, indexes, WAL, snapshots, the set- vs record-processing
//!   engines;
//! * [`xst_query`] (as `query`) — logical expressions, law-justified rewrites,
//!   the cost-guarded fixpoint optimizer;
//! * [`xst_relational`] (as `relational`) — relations as extended sets, the
//!   algebra, aggregation, the textual query language.
//!
//! See the repository README for the architecture tour and EXPERIMENTS.md
//! for the reproduction index. The `examples/` directory exercises the
//! public API end to end; start with `cargo run --example quickstart`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use xst_core as core;
pub use xst_query as query;
pub use xst_relational as relational;
pub use xst_storage as storage;

/// One-stop imports: `use xst::prelude::*;`.
pub mod prelude {
    pub use xst_core::prelude::*;
    pub use xst_query::{eval, eval_counted, explain, Bindings, Expr, Optimizer};
    pub use xst_relational::{parse_query, Aggregate, Catalog, Query, RelSchema, Relation};
    pub use xst_storage::{
        BufferPool, Index, Record, RecordEngine, Schema, SetEngine, Storage, Table,
    };
}
