//! # xst-shell — an interactive calculator for extended set theory
//!
//! A [`Session`] holds named bindings and evaluates one command per line:
//!
//! ```text
//! let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}
//! apply f {⟨a⟩}                  -- f_(⟨⟨1⟩,⟨2⟩⟩)(x)
//! image f {⟨x⟩} ⟨2⟩ ⟨1⟩          -- explicit scope pair (the inverse here)
//! union f g · intersect · difference
//! domain f ⟨1⟩ · restrict f ⟨1⟩ {⟨a⟩}
//! compose g f                    -- binds nothing; prints the carrier
//! tc r                           -- transitive closure of a pair relation
//! card f · function? f · show f · vars · help
//! ```
//!
//! Operands are either bound names or inline set literals in the crate's
//! textual notation; the parser figures out which.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use xst_core::ops::{
    difference, image, intersection, pair_compose, sigma_domain, sigma_restrict,
    transitive_closure, union,
};
use xst_core::parse::parse_set;
use xst_core::{ExtendedSet, Process, Scope, XstError, XstResult};

/// An interactive session: named set bindings plus command evaluation.
#[derive(Default)]
pub struct Session {
    bindings: BTreeMap<String, ExtendedSet>,
}

impl Session {
    /// Fresh session with no bindings.
    pub fn new() -> Session {
        Session::default()
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&ExtendedSet> {
        self.bindings.get(name)
    }

    /// Evaluate one command line. `Ok(None)` means "nothing to print"
    /// (empty line or comment).
    pub fn eval_line(&mut self, line: &str) -> XstResult<Option<String>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("--") {
            return Ok(None);
        }
        // `let name = <set expression>` is the only statement form.
        if let Some(rest) = line.strip_prefix("let ") {
            let (name, expr) = rest.split_once('=').ok_or_else(|| err("let needs '='"))?;
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(format!("bad binding name '{name}'")));
            }
            let value = self.operand(expr.trim())?;
            self.bindings.insert(name.to_string(), value);
            return Ok(Some(format!("{name} bound")));
        }
        let mut parts = Tokens::new(line);
        let command = parts.next_word()?;
        let out = match command.as_str() {
            "help" => HELP.to_string(),
            "vars" => {
                if self.bindings.is_empty() {
                    "no bindings".to_string()
                } else {
                    let mut s = String::new();
                    for (name, set) in &self.bindings {
                        let _ = writeln!(s, "{name} = {set}");
                    }
                    s.trim_end().to_string()
                }
            }
            "show" => self.operand(&parts.rest()?)?.to_string(),
            "card" => self.operand(&parts.rest()?)?.card().to_string(),
            "union" | "intersect" | "difference" | "compose" => {
                let a = self.operand(&parts.next_operand()?)?;
                let b = self.operand(&parts.rest()?)?;
                match command.as_str() {
                    "union" => union(&a, &b).to_string(),
                    "intersect" => intersection(&a, &b).to_string(),
                    "difference" => difference(&a, &b).to_string(),
                    // compose g f prints the composed pair-relation carrier.
                    _ => pair_compose(&b, &a).to_string(),
                }
            }
            "apply" => {
                let f = self.operand(&parts.next_operand()?)?;
                let x = self.operand(&parts.rest()?)?;
                Process::pairs(f).apply(&x).to_string()
            }
            "image" => {
                let r = self.operand(&parts.next_operand()?)?;
                let a = self.operand(&parts.next_operand()?)?;
                let s1 = self.operand(&parts.next_operand()?)?;
                let s2 = self.operand(&parts.rest()?)?;
                image(&r, &a, &Scope::new(s1, s2)).to_string()
            }
            "domain" => {
                let r = self.operand(&parts.next_operand()?)?;
                let spec = self.operand(&parts.rest()?)?;
                sigma_domain(&r, &spec).to_string()
            }
            "restrict" => {
                let r = self.operand(&parts.next_operand()?)?;
                let spec = self.operand(&parts.next_operand()?)?;
                let a = self.operand(&parts.rest()?)?;
                sigma_restrict(&r, &spec, &a).to_string()
            }
            "tc" => transitive_closure(&self.operand(&parts.rest()?)?).to_string(),
            "function?" => {
                let f = self.operand(&parts.rest()?)?;
                Process::pairs(f).is_function().to_string()
            }
            other => return Err(err(format!("unknown command '{other}' (try 'help')"))),
        };
        Ok(Some(out))
    }

    /// Resolve an operand: a bound name or an inline set literal.
    fn operand(&self, text: &str) -> XstResult<ExtendedSet> {
        let text = text.trim();
        if text.is_empty() {
            return Err(err("missing operand"));
        }
        if let Some(set) = self.bindings.get(text) {
            return Ok(set.clone());
        }
        parse_set(text).map_err(|e| {
            if text.chars().all(|c| c.is_alphanumeric() || c == '_') {
                err(format!("no binding named '{text}'"))
            } else {
                e
            }
        })
    }
}

/// Splits a command line into whitespace-separated operands, keeping
/// bracketed set literals (`{...}`, `⟨...⟩`, `<...>`) intact.
struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str) -> Tokens<'a> {
        Tokens { rest: line.trim() }
    }

    fn next_word(&mut self) -> XstResult<String> {
        let word = self.next_operand()?;
        Ok(word)
    }

    /// One operand: a balanced bracket group or a bare word.
    fn next_operand(&mut self) -> XstResult<String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Err(err("missing operand"));
        }
        let mut depth = 0i32;
        for (i, c) in self.rest.char_indices() {
            match c {
                '{' | '⟨' | '<' | '(' => depth += 1,
                '}' | '⟩' | '>' | ')' => depth -= 1,
                c if c.is_whitespace() && depth == 0 => {
                    let (head, tail) = self.rest.split_at(i);
                    self.rest = tail;
                    return Ok(head.to_string());
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(err("unbalanced brackets in operand"));
        }
        let out = self.rest.to_string();
        self.rest = "";
        Ok(out)
    }

    /// Everything left on the line as one operand.
    fn rest(&mut self) -> XstResult<String> {
        let out = self.rest.trim().to_string();
        self.rest = "";
        if out.is_empty() {
            Err(err("missing operand"))
        } else {
            Ok(out)
        }
    }
}

fn err(message: impl Into<String>) -> XstError {
    XstError::Parse {
        offset: 0,
        message: message.into(),
    }
}

const HELP: &str = "\
commands:
  let NAME = SET              bind a set (literal notation: {a^1, ⟨b,c⟩, ∅})
  show X · card X · vars      inspect
  union A B · intersect A B · difference A B
  apply F X                   F as pair behavior: F_(⟨⟨1⟩,⟨2⟩⟩)(X)
  image R A S1 S2             R[A] under the scope pair ⟨S1, S2⟩
  domain R SPEC · restrict R SPEC A
  compose G F                 pair-relation composition carrier (g ∘ f)
  tc R                        transitive closure of a pair relation
  function? F                 Definition 8.2 test
  help · quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut Session, line: &str) -> String {
        session.eval_line(line).unwrap().unwrap_or_default()
    }

    #[test]
    fn bind_and_show() {
        let mut s = Session::new();
        assert_eq!(run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩}"), "f bound");
        assert_eq!(run(&mut s, "show f"), "{⟨a, x⟩, ⟨b, y⟩}");
        assert_eq!(run(&mut s, "card f"), "2");
        assert!(run(&mut s, "vars").contains("f = "));
    }

    #[test]
    fn comments_and_blank_lines_are_silent() {
        let mut s = Session::new();
        assert_eq!(s.eval_line("").unwrap(), None);
        assert_eq!(s.eval_line("# a comment").unwrap(), None);
        assert_eq!(s.eval_line("-- also a comment").unwrap(), None);
    }

    #[test]
    fn boolean_commands() {
        let mut s = Session::new();
        run(&mut s, "let a = {1, 2}");
        run(&mut s, "let b = {2, 3}");
        assert_eq!(run(&mut s, "union a b"), "{1, 2, 3}");
        assert_eq!(run(&mut s, "intersect a b"), "{2}");
        assert_eq!(run(&mut s, "difference a b"), "{1}");
        // Inline literals work as operands too.
        assert_eq!(run(&mut s, "union a {9}"), "{1, 2, 9}");
    }

    #[test]
    fn behavior_commands() {
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}");
        assert_eq!(run(&mut s, "apply f {⟨a⟩}"), "{⟨x⟩}");
        assert_eq!(run(&mut s, "function? f"), "true");
        // Explicit inverse scope: one-to-many.
        assert_eq!(run(&mut s, "image f {⟨x⟩} ⟨2⟩ ⟨1⟩"), "{⟨a⟩, ⟨c⟩}");
        assert_eq!(run(&mut s, "domain f ⟨2⟩"), "{⟨x⟩, ⟨y⟩}");
        assert_eq!(run(&mut s, "restrict f ⟨1⟩ {⟨a⟩}"), "{⟨a, x⟩}");
    }

    #[test]
    fn compose_and_closure() {
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, b⟩}");
        run(&mut s, "let g = {⟨b, c⟩}");
        assert_eq!(run(&mut s, "compose g f"), "{⟨a, c⟩}");
        run(&mut s, "let r = {⟨a, b⟩, ⟨b, c⟩}");
        let tc = run(&mut s, "tc r");
        assert!(tc.contains("⟨a, c⟩"), "{tc}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        assert!(s.eval_line("frobnicate x").is_err());
        assert!(s.eval_line("show nope").is_err());
        assert!(s.eval_line("let = {1}").is_err());
        assert!(s.eval_line("let bad name = {1}").is_err());
        assert!(s.eval_line("union {1}").is_err(), "missing operand");
        assert!(s.eval_line("show {unbalanced").is_err());
        // The session survives errors.
        assert_eq!(run(&mut s, "card {1, 2}"), "2");
    }

    #[test]
    fn paper_appendix_b_in_the_shell() {
        // The self-application demo is expressible interactively.
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, a, a, b, b⟩, ⟨b, b, a, a, b⟩}");
        // f as a pair behavior is the identity on ⟨a⟩/⟨b⟩.
        assert_eq!(run(&mut s, "apply f {⟨a⟩}"), "{⟨a⟩}");
        // The ω-scoped image permutes the carrier.
        assert_eq!(
            run(&mut s, "image f {⟨a⟩} ⟨1⟩ ⟨1, 3, 4, 5, 2⟩"),
            "{⟨a, a, b, b, a⟩}"
        );
    }

    #[test]
    fn help_lists_commands() {
        let mut s = Session::new();
        let h = run(&mut s, "help");
        for cmd in ["let", "union", "apply", "image", "tc", "function?"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }
}
