//! # xst-shell — an interactive calculator for extended set theory
//!
//! A [`Session`] holds named bindings and evaluates one command per line:
//!
//! ```text
//! let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}
//! apply f {⟨a⟩}                  -- f_(⟨⟨1⟩,⟨2⟩⟩)(x)
//! image f {⟨x⟩} ⟨2⟩ ⟨1⟩          -- explicit scope pair (the inverse here)
//! union f g · intersect · difference
//! domain f ⟨1⟩ · restrict f ⟨1⟩ {⟨a⟩}
//! compose g f                    -- binds nothing; prints the carrier
//! tc r                           -- transitive closure of a pair relation
//! card f · function? f · show f · vars · help
//! ```
//!
//! Operands are either bound names or inline set literals in the crate's
//! textual notation; the parser figures out which.
//!
//! Observability commands (see the README's "Observability" section):
//!
//! ```text
//! .explain <op> ...     optimize + execute, print the per-operator tree
//! .check <op> ...       static analysis only: sig, emptiness, diagnostics
//! .metrics [json]       metrics exposition (Prometheus text or JSON)
//! .metrics reset        zero every registered series
//! .trace on|off|show    toggle the collector / render collected spans
//! .trace export         dump collected spans as xst-trace/1 JSON
//! .top [N]              most expensive accounted requests (cost bills)
//! .slow [MS|off]        show the slow-query ring / arm its threshold
//! .faults on|off|status deterministic fault injection on the store's I/O
//! .store NAME           persist a binding through the WAL + buffer pool
//! .load NAME as NEW     read it back through the pool into NEW
//! ```
//!
//! Transaction commands (snapshot isolation over the MVCC layer; see the
//! README's "Transactions" section):
//!
//! ```text
//! .begin                open a snapshot-isolated transaction
//! .put NAME             write the binding's members into txn table NAME
//! .get NAME as NEW      snapshot-read table NAME into binding NEW
//! .commit               first-committer-wins validate + group-commit
//! .abort                discard the open transaction's writes
//! ```
//!
//! `.put`/`.get` outside an open transaction autocommit — each runs as
//! its own transaction, the interactive default.
//!
//! Network commands (serve this session's transactional store over TCP,
//! or drive a remote one; see the README's "Network server" section):
//!
//! ```text
//! .serve start [ADDR|PORT]   serve the txn store (default 127.0.0.1:0)
//! .serve stop|status         shut the server down / show where it listens
//! .shards [N]                show per-shard txn-store state / reshard to N
//!                            (before any data; 2PC makes multi-shard
//!                            commits atomic)
//! .connect HOST:PORT         open a client session against a server
//! .disconnect                close it (a remote open txn aborts)
//! .remote CMD ...            ping · begin · commit · abort ·
//!                            put NAME · get NAME as NEW · eval OP ... ·
//!                            metrics [json] · trace · top [N] · slow
//! .cluster start [N]         N in-process shard servers + a wire 2PC
//!                            coordinator; .remote then drives it
//! .cluster status|stop       coordinator state / tear the cluster down
//! ```
//!
//! Every command line is *accounted* the way the server accounts a wire
//! request: it runs under a `shell.command` root span and a
//! [`QueryCost`](xst_obs::QueryCost) scope, and lands one record in the
//! process request log (session 0 = the local shell), so `.top`/`.slow`
//! rank interactive work and served requests side by side.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xst_client::coord::Coordinator;
use xst_client::Client;
use xst_core::ops::{
    difference, image, intersection, pair_compose, sigma_domain, sigma_restrict,
    transitive_closure, union, Parallelism,
};
use xst_core::parse::parse_set;
use xst_core::{ExtendedSet, Process, Scope, SetBuilder, XstError, XstResult};
use xst_query::{explain_analyze, Expr};
use xst_server::{records_identity_to_set, ServedEngine, Server, ServerConfig};
use xst_storage::{
    BufferPool, FaultKind, FaultPlan, FaultSchedule, LoggedTable, Record, Schema, ShardedTxn, Wal,
};

/// Persistent backing for `.store`/`.load`: one simulated disk, one buffer
/// pool, one shared WAL, and the tables stored so far. Created lazily on
/// the first storage command.
struct Store {
    pool: BufferPool,
    wal: Wal,
    tables: BTreeMap<String, LoggedTable>,
    /// The `.faults` chaos plan, when armed: shared by the disk and the
    /// WAL so every I/O op numbers one global fault site.
    faults: Option<FaultPlan>,
}

/// Pool capacity for the shell's storage demo — small enough that a
/// multi-page table forces real misses and evictions into the metrics.
const SHELL_POOL_PAGES: usize = 8;

/// Per-request deadline for the shell's cluster coordinator: generous
/// for interactive use, but bounded so a wedged shard surfaces as a
/// typed timeout instead of a hung prompt.
const CLUSTER_RPC_TIMEOUT: Duration = Duration::from_secs(5);

/// The `.cluster` in-process cluster: N shard servers (each its own
/// [`ServedEngine`] behind a real TCP listener on an ephemeral port)
/// plus the wire 2PC [`Coordinator`] driving them. While this is up and
/// no `.connect` session exists, `.remote` commands route through the
/// coordinator: puts scatter by member hash, gets/evals gather
/// fragments, and multi-shard commits run the wire two-phase round.
struct ShellCluster {
    servers: Vec<Server>,
    coord: Coordinator,
}

impl Store {
    fn new() -> Store {
        Store {
            pool: BufferPool::new(xst_storage::Storage::new(), SHELL_POOL_PAGES),
            wal: Wal::new(),
            tables: BTreeMap::new(),
            faults: None,
        }
    }
}

/// Schema under every stored binding: one row per member, element and
/// scope as the two columns.
fn member_schema() -> Schema {
    Schema::new(["element", "scope"])
}

/// The transactional store behind `.begin`/`.put`/`.get`/`.commit`: a
/// [`ServedEngine`] — the same MVCC engine the network server wraps, so
/// `.serve start` publishes exactly the tables this session's `.put`
/// writes — plus the session's open transaction, if any. Without an
/// open transaction, `.put`/`.get` autocommit.
struct TxnStore {
    engine: Arc<ServedEngine>,
    open: Option<ShardedTxn>,
}

impl TxnStore {
    fn new() -> TxnStore {
        TxnStore::with_shards(1)
    }

    /// A store partitioned across `shards` engine+WAL pairs (`.shards N`
    /// before any data exists). One shard is the classic single-engine
    /// behavior.
    fn with_shards(shards: usize) -> TxnStore {
        TxnStore {
            engine: Arc::new(ServedEngine::with_shards(shards)),
            open: None,
        }
    }

    /// Register `name` if this is its first use (the catalog is
    /// in-memory; re-registration errors are the "already exists" case
    /// and are fine).
    fn ensure_table(&self, name: &str) {
        self.engine.ensure_table(name);
    }
}

/// An interactive session: named set bindings plus command evaluation.
pub struct Session {
    bindings: BTreeMap<String, ExtendedSet>,
    store: Option<Store>,
    txn: Option<TxnStore>,
    /// The `.serve` network server, when running (it serves the
    /// [`TxnStore`]'s engine, so `.put` writes are visible to clients).
    server: Option<Server>,
    /// The `.connect` client session, when one is open.
    remote: Option<Client>,
    /// The `.cluster` in-process cluster, when one is running.
    cluster: Option<ShellCluster>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// Fresh session with no bindings. Turns the observability collector
    /// on so `.metrics` and `.explain` see every operation; `.trace off`
    /// turns it back off.
    pub fn new() -> Session {
        xst_obs::enable();
        Session {
            bindings: BTreeMap::new(),
            store: None,
            txn: None,
            server: None,
            remote: None,
            cluster: None,
        }
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&ExtendedSet> {
        self.bindings.get(name)
    }

    /// Evaluate one command line. `Ok(None)` means "nothing to print"
    /// (empty line or comment).
    pub fn eval_line(&mut self, line: &str) -> XstResult<Option<String>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("--") {
            return Ok(None);
        }
        // `let name = <set expression>` is the only statement form.
        if let Some(rest) = line.strip_prefix("let ") {
            let (name, expr) = rest.split_once('=').ok_or_else(|| err("let needs '='"))?;
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(format!("bad binding name '{name}'")));
            }
            let value = self.operand(expr.trim())?;
            self.bindings.insert(name.to_string(), value);
            return Ok(Some(format!("{name} bound")));
        }
        let mut parts = Tokens::new(line);
        let command = parts.next_word()?;
        // `.trace`/`.top`/`.slow` inspect the collector and the request
        // log; accounting them would have them observe themselves (a
        // drained `.trace show` would always rediscover its own span on
        // the next call), so they dispatch bare.
        if matches!(command.as_str(), ".trace" | ".top" | ".slow") {
            return self.dispatch(&command, &mut parts).map(Some);
        }
        // Account the command like the server accounts a wire request:
        // root span + cost scope + one request-log record under session 0,
        // so `.top`/`.slow` see interactive work too. `enabled()` off means
        // all three degrade to nothing.
        let timer = xst_obs::enabled().then(Instant::now);
        let costs = xst_obs::cost::begin();
        let span = xst_obs::span!("shell.command", kind = command.as_str());
        let txn_before = self.open_txn_id();
        let result = self.dispatch(&command, &mut parts);
        let trace_id = span.trace_id().unwrap_or(0);
        drop(span);
        let cost = costs.take();
        if let Some(t) = timer {
            xst_obs::request_log().record(xst_obs::RequestRecord {
                seq: 0,
                session: 0,
                txn: txn_before.or_else(|| self.open_txn_id()),
                kind: "shell",
                detail: command,
                trace_id,
                wall_ns: t.elapsed().as_nanos() as u64,
                cost,
                outcome: if result.is_ok() { "ok" } else { "error" },
            });
        }
        result.map(Some)
    }

    /// The id of the open local transaction, if any.
    fn open_txn_id(&self) -> Option<u64> {
        self.txn
            .as_ref()
            .and_then(|t| t.open.as_ref())
            .map(ShardedTxn::id)
    }

    /// Dispatch one parsed command word to its handler.
    fn dispatch(&mut self, command: &str, parts: &mut Tokens) -> XstResult<String> {
        let out = match command {
            "help" => HELP.to_string(),
            "vars" => {
                if self.bindings.is_empty() {
                    "no bindings".to_string()
                } else {
                    let mut s = String::new();
                    for (name, set) in &self.bindings {
                        let _ = writeln!(s, "{name} = {set}");
                    }
                    s.trim_end().to_string()
                }
            }
            "show" => self.operand(&parts.rest()?)?.to_string(),
            "card" => self.operand(&parts.rest()?)?.card().to_string(),
            "union" | "intersect" | "difference" | "compose" => {
                let a = self.operand(&parts.next_operand()?)?;
                let b = self.operand(&parts.rest()?)?;
                match command {
                    "union" => union(&a, &b).to_string(),
                    "intersect" => intersection(&a, &b).to_string(),
                    "difference" => difference(&a, &b).to_string(),
                    // compose g f prints the composed pair-relation carrier.
                    _ => pair_compose(&b, &a).to_string(),
                }
            }
            "apply" => {
                let f = self.operand(&parts.next_operand()?)?;
                let x = self.operand(&parts.rest()?)?;
                Process::pairs(f).apply(&x).to_string()
            }
            "image" => {
                let r = self.operand(&parts.next_operand()?)?;
                let a = self.operand(&parts.next_operand()?)?;
                let s1 = self.operand(&parts.next_operand()?)?;
                let s2 = self.operand(&parts.rest()?)?;
                image(&r, &a, &Scope::new(s1, s2)).to_string()
            }
            "domain" => {
                let r = self.operand(&parts.next_operand()?)?;
                let spec = self.operand(&parts.rest()?)?;
                sigma_domain(&r, &spec).to_string()
            }
            "restrict" => {
                let r = self.operand(&parts.next_operand()?)?;
                let spec = self.operand(&parts.next_operand()?)?;
                let a = self.operand(&parts.rest()?)?;
                sigma_restrict(&r, &spec, &a).to_string()
            }
            "tc" => transitive_closure(&self.operand(&parts.rest()?)?).to_string(),
            "function?" => {
                let f = self.operand(&parts.rest()?)?;
                Process::pairs(f).is_function().to_string()
            }
            ".explain" => self.explain(parts)?,
            ".check" => self.check(parts)?,
            ".lint" => lint(parts.rest_opt().as_deref())?,
            ".metrics" => self.metrics(parts.rest_opt().as_deref())?,
            ".trace" => self.trace(&parts.rest()?)?,
            ".top" => self.reqlog_top(parts.rest_opt().as_deref())?,
            ".slow" => self.reqlog_slow(parts.rest_opt().as_deref())?,
            ".faults" => self.faults(&parts.rest()?)?,
            ".store" => self.store_binding(&parts.rest()?)?,
            ".load" => {
                let name = parts.next_operand()?;
                let kw = parts.next_operand()?;
                if !kw.eq_ignore_ascii_case("as") {
                    return Err(err("usage: .load NAME as NEW"));
                }
                self.load_binding(&name, &parts.rest()?)?
            }
            ".serve" => {
                let sub = parts.next_operand()?;
                self.serve(&sub, parts.rest_opt().as_deref())?
            }
            ".shards" => self.shards(parts.rest_opt().as_deref())?,
            ".connect" => self.connect(&parts.rest()?)?,
            ".disconnect" => self.disconnect()?,
            ".remote" => self.remote_command(parts)?,
            ".cluster" => self.cluster_command(parts)?,
            ".begin" => self.txn_begin()?,
            ".commit" => self.txn_commit()?,
            ".abort" => self.txn_abort()?,
            ".put" => self.txn_put(&parts.rest()?)?,
            ".get" => {
                let name = parts.next_operand()?;
                let kw = parts.next_operand()?;
                if !kw.eq_ignore_ascii_case("as") {
                    return Err(err("usage: .get NAME as NEW"));
                }
                self.txn_get(&name, &parts.rest()?)?
            }
            other => return Err(err(format!("unknown command '{other}' (try 'help')"))),
        };
        Ok(out)
    }

    /// `.explain <op> ...` — build the [`Expr`] a command form denotes,
    /// optimize + execute it, and render the per-operator tree.
    fn explain(&self, parts: &mut Tokens) -> XstResult<String> {
        let expr = self.command_expr(parts)?;
        let report = explain_analyze(&expr, &self.bindings, &Parallelism::available())?;
        Ok(report.to_string())
    }

    /// `.check <op> ...` — statically analyze the plan a command form
    /// denotes *without executing it*: inferred scope signature, emptiness
    /// verdict, cardinality bounds, and every diagnostic. Always prints a
    /// report (rejection is part of the report, not an error), so scripts
    /// can drive it over ill-scoped plans.
    fn check(&self, parts: &mut Tokens) -> XstResult<String> {
        let expr = self.command_expr(parts)?;
        let analysis = xst_query::check(&expr, &self.bindings);
        let root = &analysis.root.set;
        let verdict = if analysis.is_rejected() {
            "rejected (would fail at runtime)"
        } else if analysis.proved_safe() {
            "accepted (proved safe)"
        } else {
            "accepted (runtime safety unproven)"
        };
        let mut out = String::new();
        let _ = writeln!(out, "plan:       {expr}");
        let _ = writeln!(out, "sig:        {}", root.sig);
        let _ = writeln!(out, "emptiness:  {}", root.emptiness);
        let _ = writeln!(out, "card:       {}", root.card);
        let _ = writeln!(out, "verdict:    {verdict}");
        if analysis.diagnostics.is_empty() {
            let _ = write!(out, "diagnostics: none");
        } else {
            let _ = write!(out, "diagnostics:");
            for d in &analysis.diagnostics {
                let _ = write!(out, "\n  {d}");
            }
        }
        Ok(out)
    }

    /// Parse the `<op> ...` command form shared by `.explain` and
    /// `.check` into the [`Expr`] it denotes.
    fn command_expr(&self, parts: &mut Tokens) -> XstResult<Expr> {
        let op = parts.next_word()?;
        let expr = match op.as_str() {
            "union" | "intersect" | "difference" | "cross" => {
                let a = self.expr_operand(&parts.next_operand()?)?;
                let b = self.expr_operand(&parts.rest()?)?;
                match op.as_str() {
                    "union" => a.union(b),
                    "intersect" => a.intersect(b),
                    "difference" => a.difference(b),
                    _ => a.cross(b),
                }
            }
            "domain" => {
                let r = self.expr_operand(&parts.next_operand()?)?;
                let spec = self.operand(&parts.rest()?)?;
                r.domain(spec)
            }
            "restrict" => {
                let r = self.expr_operand(&parts.next_operand()?)?;
                let spec = self.operand(&parts.next_operand()?)?;
                let a = self.expr_operand(&parts.rest()?)?;
                r.restrict(spec, a)
            }
            "image" => {
                let r = self.expr_operand(&parts.next_operand()?)?;
                let a = self.expr_operand(&parts.next_operand()?)?;
                let s1 = self.operand(&parts.next_operand()?)?;
                let s2 = self.operand(&parts.rest()?)?;
                r.image(a, Scope::new(s1, s2))
            }
            other => {
                return Err(err(format!(
                "cannot analyze '{other}' (union/intersect/difference/cross/domain/restrict/image)"
            )))
            }
        };
        Ok(expr)
    }

    /// `.metrics [json|reset]`.
    fn metrics(&self, arg: Option<&str>) -> XstResult<String> {
        // Hit ratio is derived, not accumulated: refresh it at print time.
        if let Some(store) = &self.store {
            store.pool.publish_metrics();
        }
        match arg {
            None => Ok(xst_obs::registry().export_prometheus()),
            Some("json") => Ok(xst_obs::registry().export_json()),
            Some("reset") => {
                xst_obs::registry().reset();
                if let Some(store) = &self.store {
                    store.pool.reset_stats();
                }
                Ok("metrics reset".to_string())
            }
            Some(other) => Err(err(format!("usage: .metrics [json|reset], got '{other}'"))),
        }
    }

    /// `.trace on|off|show|export`.
    fn trace(&self, arg: &str) -> XstResult<String> {
        match arg {
            "export" => {
                // Non-draining snapshot: exporting leaves the spans in
                // place for a later `.trace show`.
                let records = xst_obs::collector().snapshot_spans();
                Ok(xst_obs::export_trace_json(&records))
            }
            "on" => {
                xst_obs::enable();
                Ok("collector on".to_string())
            }
            "off" => {
                // One global switch gates spans AND metrics — that is the
                // whole point of the single-atomic-load fast path.
                xst_obs::disable();
                Ok("collector off (spans and metrics)".to_string())
            }
            "show" => {
                let records = xst_obs::collector().take_spans();
                if records.is_empty() {
                    return Ok("no spans collected".to_string());
                }
                let forest = xst_obs::span_tree(&records);
                Ok(xst_obs::span::render_tree(&forest).trim_end().to_string())
            }
            other => Err(err(format!(
                "usage: .trace on|off|show|export, got '{other}'"
            ))),
        }
    }

    /// `.top [N]` — the N most expensive accounted requests, by wall
    /// time: local shell commands (session 0) and served wire requests
    /// side by side, each with its per-request cost bill.
    fn reqlog_top(&self, arg: Option<&str>) -> XstResult<String> {
        let limit = match arg {
            None => 10,
            Some(n) => parse_num(n, ".top [N]")?,
        };
        let table = xst_obs::reqlog::render_records(&xst_obs::request_log().top(limit));
        Ok(table.trim_end().to_string())
    }

    /// `.slow` shows the slow-query ring; `.slow MS` arms the threshold
    /// (requests at or over it are retained); `.slow off` disarms it.
    fn reqlog_slow(&self, arg: Option<&str>) -> XstResult<String> {
        let log = xst_obs::request_log();
        match arg {
            None => {
                let threshold = log.slow_threshold_ns();
                let header = if threshold == 0 {
                    "slow-query log disabled (.slow MS to arm)".to_string()
                } else {
                    format!("slow threshold: {} ms", threshold / 1_000_000)
                };
                let table = xst_obs::reqlog::render_records(&log.slow(20));
                Ok(format!("{header}\n{}", table.trim_end()))
            }
            Some("off") => {
                log.set_slow_threshold_ns(0);
                Ok("slow-query log disabled".to_string())
            }
            Some(ms) => {
                let ms: u64 = parse_num(ms, ".slow [MS|off]")?;
                log.set_slow_threshold_ns(ms.saturating_mul(1_000_000));
                Ok(format!("slow-query log armed at {ms} ms"))
            }
        }
    }

    /// `.faults on|off|status` — chaos mode for the storage demo: arm a
    /// deterministic fault plan (every 5th I/O op fails transiently) on the
    /// store's disk AND its WAL, so `.store`/`.load` exercise the retry
    /// path for real. The default retry policy absorbs every injection;
    /// `.metrics` shows the `xst_storage_faults_injected_total` /
    /// `xst_storage_retries_total` movement it caused.
    fn faults(&mut self, arg: &str) -> XstResult<String> {
        match arg {
            "on" => {
                let store = self.store.get_or_insert_with(Store::new);
                let plan = FaultPlan::new(FaultSchedule::EveryNth(5), FaultKind::Transient);
                store.pool.storage().install_faults(&plan);
                store.wal.install_faults(&plan);
                store.faults = Some(plan);
                Ok("faults armed: every 5th storage/WAL op fails transiently \
                    (retry absorbs them; see .metrics)"
                    .to_string())
            }
            "off" => {
                if let Some(store) = &mut self.store {
                    if let Some(plan) = store.faults.take() {
                        plan.disarm();
                        store.pool.storage().clear_faults();
                        store.wal.clear_faults();
                    }
                }
                Ok("faults disarmed".to_string())
            }
            "status" => {
                let plan = self.store.as_ref().and_then(|s| s.faults.as_ref());
                let retries = xst_obs::registry()
                    .counter(
                        xst_obs::names::STORAGE_RETRIES_TOTAL,
                        "Transient storage failures that were retried.",
                    )
                    .get();
                let give_ups = xst_obs::registry()
                    .counter(
                        xst_obs::names::STORAGE_RETRY_GIVE_UPS_TOTAL,
                        "Operations abandoned after exhausting their retry budget.",
                    )
                    .get();
                Ok(match plan {
                    Some(p) => format!(
                        "faults armed ({}, every 5th op): {} sites seen, {} injected; \
                         retries {retries}, give-ups {give_ups}",
                        p.kind(),
                        p.sites_seen(),
                        p.injected_count()
                    ),
                    None => format!("faults off; retries {retries}, give-ups {give_ups}"),
                })
            }
            other => Err(err(format!("usage: .faults on|off|status, got '{other}'"))),
        }
    }

    /// `.store NAME` — append every member of the binding to a fresh
    /// WAL-logged table (element and scope columns), then checkpoint.
    fn store_binding(&mut self, name: &str) -> XstResult<String> {
        let set = self
            .bindings
            .get(name)
            .cloned()
            .ok_or_else(|| err(format!("no binding named '{name}'")))?;
        let store = self.store.get_or_insert_with(Store::new);
        let mut table =
            LoggedTable::create(store.pool.storage(), member_schema(), store.wal.clone());
        for m in set.members() {
            table
                .append(&Record::new([m.element.clone(), m.scope.clone()]))
                .map_err(storage_err)?;
        }
        table.checkpoint().map_err(storage_err)?;
        let pages = store
            .pool
            .storage()
            .page_count(table.table.file.file_id())
            .map_err(storage_err)?;
        store.tables.insert(name.to_string(), table);
        Ok(format!(
            "{name} stored: {} members in {pages} pages (wal checkpointed)",
            set.card()
        ))
    }

    /// `.load NAME as NEW` — scan the stored table back through the buffer
    /// pool and rebuild the extended set under a new binding.
    fn load_binding(&mut self, name: &str, target: &str) -> XstResult<String> {
        if target.is_empty() || !target.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(format!("bad binding name '{target}'")));
        }
        let store = self
            .store
            .as_ref()
            .ok_or_else(|| err("nothing stored yet (use .store NAME)"))?;
        let table = store
            .tables
            .get(name)
            .ok_or_else(|| err(format!("no stored table '{name}'")))?;
        let records = table
            .table
            .file
            .read_all(&store.pool)
            .map_err(storage_err)?;
        let mut b = SetBuilder::new();
        for r in &records {
            let [element, scope] = r.values() else {
                return Err(err("stored record is not an element/scope pair"));
            };
            b.scoped(element.clone(), scope.clone());
        }
        let set = b.build();
        let card = set.card();
        self.bindings.insert(target.to_string(), set);
        Ok(format!(
            "{target} bound from stored {name}: {} records, {card} members",
            records.len()
        ))
    }

    /// `.serve start [ADDR|PORT]` / `.serve stop` / `.serve status` —
    /// serve this session's transactional store over TCP. A bare port
    /// binds `127.0.0.1:PORT`; no argument picks an ephemeral port (the
    /// reply says which). `.put` writes are immediately visible to
    /// connected clients: the server wraps the same engine.
    fn serve(&mut self, sub: &str, arg: Option<&str>) -> XstResult<String> {
        match sub {
            "start" => {
                if self.server.is_some() {
                    return Err(err("already serving (.serve stop first)"));
                }
                let addr = match arg {
                    None => "127.0.0.1:0".to_string(),
                    Some(a) if a.contains(':') => a.to_string(),
                    Some(port) => {
                        // A bare argument must be a real port, not just
                        // string-glued into the address.
                        let port: u16 = parse_num(port, ".serve start [ADDR|PORT]")?;
                        format!("127.0.0.1:{port}")
                    }
                };
                let engine = Arc::clone(&self.txn.get_or_insert_with(TxnStore::new).engine);
                let server = Server::start(engine, &addr, ServerConfig::default())
                    .map_err(|e| err(format!("serve: {e}")))?;
                let bound = server.addr().to_string();
                self.server = Some(server);
                Ok(format!(
                    "serving the txn store on {bound} (.connect {bound})"
                ))
            }
            "stop" => match self.server.take() {
                Some(mut server) => {
                    let bound = server.addr().to_string();
                    server.stop();
                    Ok(format!("server on {bound} stopped"))
                }
                None => Err(err("not serving (.serve start first)")),
            },
            "status" => Ok(match &self.server {
                Some(server) => format!("serving on {}", server.addr()),
                None => "not serving".to_string(),
            }),
            other => Err(err(format!(
                "usage: .serve start [ADDR|PORT] | stop | status, got '{other}'"
            ))),
        }
    }

    /// `.shards` — introspect the transactional store's sharding: shard
    /// count and, per shard, last commit timestamp, open sub-transactions,
    /// and in-doubt prepares. `.shards N` re-creates the store partitioned
    /// across N shards — only before any table exists, because resharding
    /// would reroute every member hash.
    fn shards(&mut self, arg: Option<&str>) -> XstResult<String> {
        if let Some(n) = arg {
            let n: usize = parse_num(n, ".shards [N]")?;
            if n == 0 {
                return Err(err("usage: .shards [N], N must be at least 1"));
            }
            let replaceable = self
                .txn
                .as_ref()
                .is_none_or(|t| t.open.is_none() && t.engine.sharded().tables().is_empty());
            if !replaceable {
                return Err(err(
                    "cannot reshard: the txn store already holds tables or an open \
                     transaction (restart the session to change shard count)",
                ));
            }
            if self.server.is_some() {
                return Err(err("cannot reshard while serving (.serve stop first)"));
            }
            self.txn = Some(TxnStore::with_shards(n));
            return Ok(format!("txn store resharded across {n} shard(s)"));
        }
        let Some(txn_store) = self.txn.as_ref() else {
            return Ok("no txn store yet (1 shard by default; .shards N before .put)".to_string());
        };
        let sharded = txn_store.engine.sharded();
        let mut out = format!(
            "{} shard(s), {} distributed txn(s) open",
            sharded.shard_count(),
            sharded.active_txns()
        );
        for i in 0..sharded.shard_count() {
            let mgr = sharded.shard_mgr(i);
            let _ = write!(
                out,
                "\n  shard {i}: last commit ts {}, {} open sub-txn(s), {} in-doubt prepare(s)",
                mgr.last_commit_ts(),
                mgr.active_txns(),
                mgr.prepared_txns()
            );
        }
        Ok(out)
    }

    /// `.connect HOST:PORT` — open a client session against a server
    /// (this session's own `.serve`, or another process's).
    fn connect(&mut self, addr: &str) -> XstResult<String> {
        if self.remote.is_some() {
            return Err(err("already connected (.disconnect first)"));
        }
        let client = Client::connect(addr, "xst-shell").map_err(client_err)?;
        let banner = client.banner().to_string();
        self.remote = Some(client);
        Ok(format!("connected to {addr} ({banner})"))
    }

    /// `.disconnect` — close the client session. If a remote transaction
    /// is open, the server aborts it (abort-on-disconnect).
    fn disconnect(&mut self) -> XstResult<String> {
        match self.remote.take() {
            Some(_) => Ok("disconnected (an open remote txn aborts server-side)".to_string()),
            None => Err(err("not connected (.connect HOST:PORT first)")),
        }
    }

    /// `.remote CMD ...` — drive the connected server: `ping`, `begin`,
    /// `commit`, `abort`, `put NAME`, `get NAME as NEW`, `eval OP ...`,
    /// plus the observability pulls `metrics [json]` (the server's
    /// registry), `trace` (its span collector as xst-trace/1 JSON), and
    /// `top [N]` / `slow` (its per-request log).
    fn remote_command(&mut self, parts: &mut Tokens) -> XstResult<String> {
        let sub = parts.next_word()?;
        // `eval` needs `&self` for operands while the client needs
        // `&mut`; build the expression before borrowing the client.
        let eval_expr = if sub == "eval" {
            Some(self.command_expr(parts)?)
        } else {
            None
        };
        // A direct `.connect` session wins; otherwise a running
        // `.cluster` answers through its 2PC coordinator.
        if self.remote.is_none() && self.cluster.is_some() {
            return self.cluster_remote(&sub, eval_expr, parts);
        }
        let client = self
            .remote
            .as_mut()
            .ok_or_else(|| err("not connected (.connect HOST:PORT or .cluster start first)"))?;
        match sub.as_str() {
            "ping" => {
                client.ping().map_err(client_err)?;
                Ok("pong".to_string())
            }
            "begin" => {
                let info = client.begin().map_err(client_err)?;
                Ok(format!(
                    "remote txn {} open: snapshot at commit ts {}",
                    info.id, info.snapshot_ts
                ))
            }
            "commit" => {
                let ts = client.commit().map_err(client_err)?;
                Ok(format!("remote committed at ts {ts}"))
            }
            "abort" => {
                client.abort().map_err(client_err)?;
                Ok("remote txn aborted; writes discarded".to_string())
            }
            "put" => {
                let name = parts.rest()?;
                let set = self
                    .bindings
                    .get(&name)
                    .ok_or_else(|| err(format!("no binding named '{name}'")))?;
                let client = self.remote.as_mut().ok_or_else(|| err("not connected"))?;
                let applied = client.put(&name, set).map_err(client_err)?;
                Ok(match applied.autocommit_ts {
                    Some(ts) => format!(
                        "{} rows into remote '{name}' (autocommitted at ts {ts})",
                        applied.rows
                    ),
                    None => format!(
                        "{} rows buffered into remote '{name}' (visible after .remote commit)",
                        applied.rows
                    ),
                })
            }
            "get" => {
                let name = parts.next_operand()?;
                let kw = parts.next_operand()?;
                if !kw.eq_ignore_ascii_case("as") {
                    return Err(err("usage: .remote get NAME as NEW"));
                }
                let target = parts.rest()?;
                if target.is_empty() || !target.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    return Err(err(format!("bad binding name '{target}'")));
                }
                let identity = client.get(&name).map_err(client_err)?;
                let set = records_identity_to_set(&identity)
                    .map_err(|e| err(format!("remote rows: {e}")))?;
                let card = set.card();
                self.bindings.insert(target.clone(), set);
                Ok(format!(
                    "{target} bound from remote '{name}': {card} members"
                ))
            }
            "eval" => {
                let expr = eval_expr.unwrap_or_else(|| Expr::lit(ExtendedSet::empty()));
                let set = client.eval(&expr).map_err(client_err)?;
                Ok(set.to_string())
            }
            "metrics" => {
                let json = match parts.rest_opt().as_deref() {
                    None => false,
                    Some("json") => true,
                    Some(other) => {
                        return Err(err(format!("usage: .remote metrics [json], got '{other}'")))
                    }
                };
                Ok(client.metrics(json).map_err(client_err)?)
            }
            "trace" => Ok(client.trace_dump().map_err(client_err)?),
            "top" => {
                let limit = match parts.rest_opt() {
                    None => 10,
                    Some(n) => parse_num(&n, ".remote top [N]")?,
                };
                let table = client.request_log(false, limit).map_err(client_err)?;
                Ok(table.trim_end().to_string())
            }
            "slow" => {
                let table = client.request_log(true, 20).map_err(client_err)?;
                Ok(table.trim_end().to_string())
            }
            other => Err(err(format!(
                "usage: .remote ping|begin|commit|abort|put NAME|get NAME as NEW|eval OP ...\
                 |metrics [json]|trace|top [N]|slow, got '{other}'"
            ))),
        }
    }

    /// `.cluster start [N]` / `.cluster status` / `.cluster stop` — run
    /// an in-process cluster: N shard servers over real TCP plus the
    /// wire 2PC coordinator with its own durable decision log. While a
    /// cluster runs (and no `.connect` session is open), `.remote`
    /// commands drive the coordinator instead of a single server.
    fn cluster_command(&mut self, parts: &mut Tokens) -> XstResult<String> {
        let sub = parts.next_word()?;
        match sub.as_str() {
            "start" => {
                if self.cluster.is_some() {
                    return Err(err("a cluster is already running (.cluster stop first)"));
                }
                let n: usize = match parts.rest_opt() {
                    None => 2,
                    Some(n) => parse_num(&n, ".cluster start [N]")?,
                };
                if n == 0 {
                    return Err(err("usage: .cluster start [N], N must be at least 1"));
                }
                let mut servers = Vec::with_capacity(n);
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let engine = Arc::new(ServedEngine::new());
                    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
                        .map_err(|e| err(format!("cluster: {e}")))?;
                    addrs.push(server.addr().to_string());
                    servers.push(server);
                }
                let coord =
                    Coordinator::connect(&addrs, Some(CLUSTER_RPC_TIMEOUT)).map_err(coord_err)?;
                self.cluster = Some(ShellCluster { servers, coord });
                Ok(format!(
                    "cluster up: {n} shard server(s) on [{}]; .remote now drives the \
                     2PC coordinator",
                    addrs.join(", ")
                ))
            }
            "status" => Ok(match &self.cluster {
                Some(c) => c.coord.status(),
                None => "no cluster (.cluster start [N] first)".to_string(),
            }),
            "stop" => match self.cluster.take() {
                Some(c) => {
                    let ShellCluster { mut servers, coord } = c;
                    // The coordinator goes first so its sessions close
                    // before the listeners they dial disappear.
                    drop(coord);
                    let n = servers.len();
                    for server in &mut servers {
                        server.stop();
                    }
                    Ok(format!("cluster stopped ({n} shard server(s) down)"))
                }
                None => Err(err("no cluster running (.cluster start first)")),
            },
            other => Err(err(format!(
                "usage: .cluster start [N] | status | stop, got '{other}'"
            ))),
        }
    }

    /// The running cluster's coordinator, for `.remote` routing.
    fn coord_mut(&mut self) -> XstResult<&mut Coordinator> {
        self.cluster
            .as_mut()
            .map(|c| &mut c.coord)
            .ok_or_else(|| err("no cluster running (.cluster start first)"))
    }

    /// `.remote` over the in-process cluster: the same verbs, answered
    /// by the 2PC coordinator. Observability pulls (`metrics`, `trace`,
    /// `top`, `slow`) need a direct `.connect` — the coordinator runs
    /// in this process, so its `xst_coord_*` series are already in the
    /// local `.metrics` output.
    fn cluster_remote(
        &mut self,
        sub: &str,
        eval_expr: Option<Expr>,
        parts: &mut Tokens,
    ) -> XstResult<String> {
        match sub {
            "ping" => {
                // A genuine round-trip to every shard: resolving with
                // the known decisions is a benign no-op on a healthy
                // cluster.
                let coord = self.coord_mut()?;
                let (committed, aborted) = coord.resolve_all().map_err(coord_err)?;
                Ok(format!(
                    "pong from {} shard(s) ({committed} committed / {aborted} aborted \
                     in-doubt prepare(s) settled)",
                    coord.shard_count()
                ))
            }
            "begin" => {
                let coord = self.coord_mut()?;
                coord.begin().map_err(coord_err)?;
                Ok(format!(
                    "cluster txn open across {} shard(s)",
                    coord.shard_count()
                ))
            }
            "commit" => {
                let ts = self.coord_mut()?.commit().map_err(coord_err)?;
                Ok(format!("cluster committed at ts {ts}"))
            }
            "abort" => {
                self.coord_mut()?.abort().map_err(coord_err)?;
                Ok("cluster txn aborted; staged writes discarded on every shard".to_string())
            }
            "put" => {
                let name = parts.rest()?;
                let set = self
                    .bindings
                    .get(&name)
                    .ok_or_else(|| err(format!("no binding named '{name}'")))?
                    .clone();
                let coord = self.coord_mut()?;
                let was_open = coord.in_txn();
                let rows = coord.put(&name, &set).map_err(coord_err)?;
                Ok(if was_open {
                    format!(
                        "{rows} rows scattered into cluster '{name}' (visible after \
                         .remote commit)"
                    )
                } else {
                    format!("{rows} rows scattered into cluster '{name}' (autocommitted)")
                })
            }
            "get" => {
                let name = parts.next_operand()?;
                let kw = parts.next_operand()?;
                if !kw.eq_ignore_ascii_case("as") {
                    return Err(err("usage: .remote get NAME as NEW"));
                }
                let target = parts.rest()?;
                if target.is_empty() || !target.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    return Err(err(format!("bad binding name '{target}'")));
                }
                let set = self.coord_mut()?.get(&name).map_err(coord_err)?;
                let card = set.card();
                self.bindings.insert(target.clone(), set);
                Ok(format!(
                    "{target} bound from cluster '{name}': {card} members"
                ))
            }
            "eval" => {
                let expr = eval_expr.unwrap_or_else(|| Expr::lit(ExtendedSet::empty()));
                let set = self.coord_mut()?.eval(&expr).map_err(coord_err)?;
                Ok(set.to_string())
            }
            other => Err(err(format!(
                "'.remote {other}' needs a direct .connect session; the cluster \
                 coordinator runs in-process (its xst_coord_* series are in .metrics)"
            ))),
        }
    }

    /// `.begin` — open a snapshot-isolated transaction. Its reads all
    /// come from the commit state as of now; its writes stay private
    /// until `.commit`.
    fn txn_begin(&mut self) -> XstResult<String> {
        let txn_store = self.txn.get_or_insert_with(TxnStore::new);
        if txn_store.open.is_some() {
            return Err(err("a transaction is already open (.commit or .abort it)"));
        }
        let txn = txn_store.engine.sharded().begin();
        let msg = format!(
            "txn {} open: snapshot at commit ts {}",
            txn.id(),
            txn.begin_ts()
        );
        txn_store.open = Some(txn);
        Ok(msg)
    }

    /// `.commit` — first-committer-wins validation, then one group-commit
    /// WAL flush for every buffered write. A conflict aborts the
    /// transaction and surfaces as a shell error (re-run it on a fresh
    /// snapshot).
    fn txn_commit(&mut self) -> XstResult<String> {
        let txn = self
            .txn
            .as_mut()
            .and_then(|t| t.open.take())
            .ok_or_else(|| err("no open transaction (.begin first)"))?;
        let read_only = txn.is_read_only();
        let ts = txn.commit().map_err(storage_err)?;
        Ok(if read_only {
            format!("committed (read-only, commit ts stays {ts})")
        } else {
            format!("committed at ts {ts} (group-commit flushed)")
        })
    }

    /// `.abort` — discard the open transaction's buffered writes.
    fn txn_abort(&mut self) -> XstResult<String> {
        let txn = self
            .txn
            .as_mut()
            .and_then(|t| t.open.take())
            .ok_or_else(|| err("no open transaction (.begin first)"))?;
        let id = txn.id();
        txn.abort();
        Ok(format!("txn {id} aborted; writes discarded"))
    }

    /// `.put NAME` — insert every member of the binding into txn table
    /// `NAME` (one row per member, element and scope columns). Inside an
    /// open transaction the writes stay buffered; outside one this
    /// autocommits.
    fn txn_put(&mut self, name: &str) -> XstResult<String> {
        let set = self
            .bindings
            .get(name)
            .cloned()
            .ok_or_else(|| err(format!("no binding named '{name}'")))?;
        let txn_store = self.txn.get_or_insert_with(TxnStore::new);
        txn_store.ensure_table(name);
        let records: Vec<Record> = set
            .members()
            .iter()
            .map(|m| Record::new([m.element.clone(), m.scope.clone()]))
            .collect();
        match &mut txn_store.open {
            Some(txn) => {
                for r in &records {
                    txn.insert(name, r.clone()).map_err(storage_err)?;
                }
                Ok(format!(
                    "{} rows buffered into '{name}' (txn {}, visible after .commit)",
                    records.len(),
                    txn.id()
                ))
            }
            None => {
                let ts = txn_store
                    .engine
                    .sharded()
                    .autocommit_insert(name, &records)
                    .map_err(storage_err)?;
                Ok(format!(
                    "{} rows into '{name}' (autocommitted at ts {ts})",
                    records.len()
                ))
            }
        }
    }

    /// `.get NAME as NEW` — rebuild a binding from txn table `NAME`.
    /// Inside an open transaction this reads its snapshot (plus its own
    /// buffered writes); outside one it reads the latest commit.
    fn txn_get(&mut self, name: &str, target: &str) -> XstResult<String> {
        if target.is_empty() || !target.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(format!("bad binding name '{target}'")));
        }
        let txn_store = self
            .txn
            .as_mut()
            .ok_or_else(|| err("no transactional tables yet (use .put NAME)"))?;
        let (identity, via) = match &mut txn_store.open {
            Some(txn) => (
                txn.read_identity(name).map_err(storage_err)?,
                format!("snapshot of txn {}", txn.id()),
            ),
            None => (
                txn_store
                    .engine
                    .sharded()
                    .latest_identity(name)
                    .map_err(storage_err)?,
                "latest commit".to_string(),
            ),
        };
        let mut b = SetBuilder::new();
        for m in identity.members() {
            let Some(tuple) = m.element.as_set() else {
                return Err(err("txn row is not a tuple"));
            };
            match tuple.as_tuple().as_deref() {
                Some([element, scope]) => {
                    b.scoped(element.clone(), scope.clone());
                }
                _ => return Err(err("txn row is not an element/scope pair")),
            }
        }
        let set = b.build();
        let card = set.card();
        self.bindings.insert(target.to_string(), set);
        Ok(format!(
            "{target} bound from '{name}' ({via}): {card} members"
        ))
    }

    /// Resolve an `.explain` operand: bound names stay symbolic (table
    /// references the optimizer can reason about), anything else must be a
    /// set literal.
    fn expr_operand(&self, text: &str) -> XstResult<Expr> {
        let text = text.trim();
        if self.bindings.contains_key(text) {
            return Ok(Expr::table(text));
        }
        self.operand(text).map(Expr::lit)
    }

    /// Resolve an operand: a bound name or an inline set literal.
    fn operand(&self, text: &str) -> XstResult<ExtendedSet> {
        let text = text.trim();
        if text.is_empty() {
            return Err(err("missing operand"));
        }
        if let Some(set) = self.bindings.get(text) {
            return Ok(set.clone());
        }
        parse_set(text).map_err(|e| {
            if text.chars().all(|c| c.is_alphanumeric() || c == '_') {
                err(format!("no binding named '{text}'"))
            } else {
                e
            }
        })
    }
}

/// Splits a command line into whitespace-separated operands, keeping
/// bracketed set literals (`{...}`, `⟨...⟩`, `<...>`) intact.
struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str) -> Tokens<'a> {
        Tokens { rest: line.trim() }
    }

    fn next_word(&mut self) -> XstResult<String> {
        let word = self.next_operand()?;
        Ok(word)
    }

    /// One operand: a balanced bracket group or a bare word.
    fn next_operand(&mut self) -> XstResult<String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Err(err("missing operand"));
        }
        let mut depth = 0i32;
        for (i, c) in self.rest.char_indices() {
            match c {
                '{' | '⟨' | '<' | '(' => depth += 1,
                '}' | '⟩' | '>' | ')' => depth -= 1,
                c if c.is_whitespace() && depth == 0 => {
                    let (head, tail) = self.rest.split_at(i);
                    self.rest = tail;
                    return Ok(head.to_string());
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(err("unbalanced brackets in operand"));
        }
        let out = self.rest.to_string();
        self.rest = "";
        Ok(out)
    }

    /// Everything left on the line as one operand.
    fn rest(&mut self) -> XstResult<String> {
        self.rest_opt().ok_or_else(|| err("missing operand"))
    }

    /// Everything left on the line, or `None` when the line is exhausted.
    fn rest_opt(&mut self) -> Option<String> {
        let out = self.rest.trim().to_string();
        self.rest = "";
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

fn err(message: impl Into<String>) -> XstError {
    XstError::Parse {
        offset: 0,
        message: message.into(),
    }
}

/// Parse a numeric command argument into a structured shell error on any
/// failure: empty input, garbage, and out-of-range values each get a
/// message naming the usage form, and overflow is reported as "out of
/// range" rather than masquerading as a typo.
fn parse_num<T>(value: &str, usage: &str) -> XstResult<T>
where
    T: std::str::FromStr<Err = std::num::ParseIntError>,
{
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Err(err(format!("missing number (usage: {usage})")));
    }
    trimmed.parse().map_err(|e: std::num::ParseIntError| {
        use std::num::IntErrorKind;
        match e.kind() {
            IntErrorKind::PosOverflow | IntErrorKind::NegOverflow => err(format!(
                "number out of range (usage: {usage}), got '{trimmed}'"
            )),
            _ => err(format!("usage: {usage}, got '{trimmed}'")),
        }
    })
}

/// Storage errors surface as shell errors, not panics.
/// `.lint [all]` — run the workspace static analyzer in-process and
/// summarize its verdict per rule. `all` also lists the justified
/// findings (the documented exemptions); unjustified findings are
/// always listed in full.
fn lint(arg: Option<&str>) -> XstResult<String> {
    let show_justified = match arg {
        None => false,
        Some("all") => true,
        Some(other) => return Err(err(format!("usage: .lint [all], got '{other}'"))),
    };
    let root = workspace_root().ok_or_else(|| {
        err("cannot locate the workspace root (no crates/ directory above the cwd)")
    })?;
    let report = xst_lint::run_lint(&root).map_err(|e| err(format!("lint: {e}")))?;
    let mut s = String::new();
    let mut by_rule: Vec<(&str, usize, usize)> = Vec::new(); // (rule, errors, justified)
    for f in &report.findings {
        match by_rule.iter_mut().find(|(r, _, _)| *r == f.rule) {
            Some((_, e, j)) => {
                *e += usize::from(!f.justified);
                *j += usize::from(f.justified);
            }
            None => by_rule.push((&f.rule, usize::from(!f.justified), usize::from(f.justified))),
        }
    }
    for (rule, errors, justified) in &by_rule {
        let _ = writeln!(s, "{rule}: {errors} error(s), {justified} justified");
    }
    for f in &report.findings {
        if !f.justified || show_justified {
            let _ = writeln!(s, "{f}");
        }
    }
    let _ = write!(
        s,
        "lint: {} file(s) checked, {} error(s), {} justified",
        report.files_checked,
        report.error_count(),
        report.justified_count()
    );
    Ok(s)
}

/// Walk up from the current directory to the first one holding a
/// `crates/` subdirectory; fall back to this crate's compile-time
/// location (two levels under the workspace root).
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        if d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(std::path::Path::to_path_buf);
    }
    let fallback = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.join("crates").is_dir().then_some(fallback)
}

fn storage_err(e: xst_storage::StorageError) -> XstError {
    err(format!("storage: {e}"))
}

/// Client errors surface as shell errors, not panics. Typed remote
/// errors keep their error-code name in the message.
fn client_err(e: xst_client::ClientError) -> XstError {
    err(format!("remote: {e}"))
}

/// Coordinator errors surface as shell errors, not panics.
fn coord_err(e: xst_client::coord::CoordError) -> XstError {
    err(format!("cluster: {e}"))
}

const HELP: &str = "\
commands:
  let NAME = SET              bind a set (literal notation: {a^1, ⟨b,c⟩, ∅})
  show X · card X · vars      inspect
  union A B · intersect A B · difference A B
  apply F X                   F as pair behavior: F_(⟨⟨1⟩,⟨2⟩⟩)(X)
  image R A S1 S2             R[A] under the scope pair ⟨S1, S2⟩
  domain R SPEC · restrict R SPEC A
  compose G F                 pair-relation composition carrier (g ∘ f)
  tc R                        transitive closure of a pair relation
  function? F                 Definition 8.2 test
observability:
  .explain OP ...             optimize + execute, per-operator sig/time/rows tree
  .check OP ...               static analysis only: sig, emptiness, card, diagnostics
  .lint [all]                 run the workspace static analyzer in-process
                              (all: also list justified findings)
  .metrics [json|reset]       metrics exposition · JSON snapshot · zero all
  .trace on|off|show          collector switch · render collected spans
  .trace export               collected spans as xst-trace/1 JSON (non-draining)
  .top [N]                    N most expensive accounted requests + cost bills
  .slow [MS|off]              show the slow-query ring · arm/disarm threshold
  .faults on|off|status       inject transient I/O faults (retry absorbs them)
  .store NAME · .load NAME as NEW   WAL + buffer-pool round trip
transactions (snapshot isolation, first committer wins):
  .begin                      open a transaction (reads pin this snapshot)
  .put NAME                   write the binding's members into txn table NAME
  .get NAME as NEW            snapshot-read txn table NAME into binding NEW
  .commit · .abort            group-commit the writes · discard them
                              (.put/.get outside a transaction autocommit)
  .shards [N]                 per-shard store state · reshard to N (before
                              any data; multi-shard commits run 2PC)
network (serve this session's txn store over TCP, or drive a remote one):
  .serve start [ADDR|PORT]    listen (default 127.0.0.1, ephemeral port)
  .serve stop · .serve status shut down · show where the server listens
  .connect HOST:PORT          open a client session · .disconnect closes it
  .remote ping|begin|commit|abort
  .remote put NAME · .remote get NAME as NEW · .remote eval OP ...
  .remote metrics [json] · .remote trace · .remote top [N] · .remote slow
cluster (N shard servers + a wire 2PC coordinator, all in-process):
  .cluster start [N]          start N shard servers and dial a coordinator;
                              .remote then scatters puts / gathers reads and
                              runs multi-shard commits as wire 2PC
  .cluster status · stop      coordinator state · tear the cluster down
  help · quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut Session, line: &str) -> String {
        session.eval_line(line).unwrap().unwrap_or_default()
    }

    /// Tests that toggle or depend on the process-global collector state
    /// take this lock so they cannot interleave.
    fn obs_serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn bind_and_show() {
        let mut s = Session::new();
        assert_eq!(run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩}"), "f bound");
        assert_eq!(run(&mut s, "show f"), "{⟨a, x⟩, ⟨b, y⟩}");
        assert_eq!(run(&mut s, "card f"), "2");
        assert!(run(&mut s, "vars").contains("f = "));
    }

    #[test]
    fn comments_and_blank_lines_are_silent() {
        let mut s = Session::new();
        assert_eq!(s.eval_line("").unwrap(), None);
        assert_eq!(s.eval_line("# a comment").unwrap(), None);
        assert_eq!(s.eval_line("-- also a comment").unwrap(), None);
    }

    #[test]
    fn boolean_commands() {
        let mut s = Session::new();
        run(&mut s, "let a = {1, 2}");
        run(&mut s, "let b = {2, 3}");
        assert_eq!(run(&mut s, "union a b"), "{1, 2, 3}");
        assert_eq!(run(&mut s, "intersect a b"), "{2}");
        assert_eq!(run(&mut s, "difference a b"), "{1}");
        // Inline literals work as operands too.
        assert_eq!(run(&mut s, "union a {9}"), "{1, 2, 9}");
    }

    #[test]
    fn behavior_commands() {
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}");
        assert_eq!(run(&mut s, "apply f {⟨a⟩}"), "{⟨x⟩}");
        assert_eq!(run(&mut s, "function? f"), "true");
        // Explicit inverse scope: one-to-many.
        assert_eq!(run(&mut s, "image f {⟨x⟩} ⟨2⟩ ⟨1⟩"), "{⟨a⟩, ⟨c⟩}");
        assert_eq!(run(&mut s, "domain f ⟨2⟩"), "{⟨x⟩, ⟨y⟩}");
        assert_eq!(run(&mut s, "restrict f ⟨1⟩ {⟨a⟩}"), "{⟨a, x⟩}");
    }

    #[test]
    fn compose_and_closure() {
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, b⟩}");
        run(&mut s, "let g = {⟨b, c⟩}");
        assert_eq!(run(&mut s, "compose g f"), "{⟨a, c⟩}");
        run(&mut s, "let r = {⟨a, b⟩, ⟨b, c⟩}");
        let tc = run(&mut s, "tc r");
        assert!(tc.contains("⟨a, c⟩"), "{tc}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        assert!(s.eval_line("frobnicate x").is_err());
        assert!(s.eval_line("show nope").is_err());
        assert!(s.eval_line("let = {1}").is_err());
        assert!(s.eval_line("let bad name = {1}").is_err());
        assert!(s.eval_line("union {1}").is_err(), "missing operand");
        assert!(s.eval_line("show {unbalanced").is_err());
        // The session survives errors.
        assert_eq!(run(&mut s, "card {1, 2}"), "2");
    }

    #[test]
    fn paper_appendix_b_in_the_shell() {
        // The self-application demo is expressible interactively.
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, a, a, b, b⟩, ⟨b, b, a, a, b⟩}");
        // f as a pair behavior is the identity on ⟨a⟩/⟨b⟩.
        assert_eq!(run(&mut s, "apply f {⟨a⟩}"), "{⟨a⟩}");
        // The ω-scoped image permutes the carrier.
        assert_eq!(
            run(&mut s, "image f {⟨a⟩} ⟨1⟩ ⟨1, 3, 4, 5, 2⟩"),
            "{⟨a, a, b, b, a⟩}"
        );
    }

    #[test]
    fn help_lists_commands() {
        let mut s = Session::new();
        let h = run(&mut s, "help");
        for cmd in ["let", "union", "apply", "image", "tc", "function?"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
        for cmd in [".explain", ".metrics", ".trace", ".store"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn lint_command_runs_the_analyzer_in_process() {
        let mut s = Session::new();
        let out = run(&mut s, ".lint");
        // The tree is clean, so `.lint` reports zero errors and the
        // per-rule summary plus the footer — no finding lines.
        assert!(out.contains("0 error(s)"), "{out}");
        assert!(out.contains("file(s) checked"), "{out}");
        assert!(!out.contains("(justified)"), "{out}");
        // `.lint all` additionally lists the documented exemptions.
        let all = run(&mut s, ".lint all");
        assert!(all.contains("(justified)"), "{all}");
        assert!(all.contains("lock-across-io"), "{all}");
        // Anything else is a usage error.
        assert!(s.eval_line(".lint loud").is_err());
    }

    #[test]
    fn explain_renders_operator_tree() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}");
        run(&mut s, "let a = {⟨a⟩}");
        let report = run(&mut s, ".explain restrict f ⟨1⟩ a");
        assert!(report.contains("plan:"), "{report}");
        assert!(report.contains("operators:"), "{report}");
        assert!(report.contains("rows="), "{report}");
        assert!(report.contains("table f"), "{report}");
        assert!(report.contains("total:"), "{report}");
        // A restrict-then-domain pipeline shows the optimizer fusing.
        let fused = run(&mut s, ".explain domain {⟨a, x⟩, ⟨b, y⟩} ⟨2⟩");
        assert!(fused.contains("domain"), "{fused}");
        assert!(s.eval_line(".explain frobnicate f").is_err());
        // Each operator line carries its inferred signature.
        assert!(report.contains("sig="), "{report}");
    }

    #[test]
    fn check_reports_without_executing() {
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, ⟨c, x⟩}");
        let out = run(&mut s, ".check union f {⟨d, z⟩}");
        assert!(out.contains("sig:"), "{out}");
        assert!(out.contains("emptiness:"), "{out}");
        assert!(out.contains("card:"), "{out}");
        assert!(out.contains("accepted"), "{out}");
        assert!(out.contains("diagnostics: none"), "{out}");
    }

    #[test]
    fn check_rejects_proven_cross_collision() {
        let mut s = Session::new();
        // Members {p^0} and {q^0} are not tuples, and their set views share
        // scope 0 — concatenation provably collides.
        run(&mut s, "let a = {{p^0}}");
        run(&mut s, "let b = {{q^0}}");
        let out = run(&mut s, ".check cross a b");
        assert!(out.contains("rejected"), "{out}");
        assert!(out.contains("cross-collision"), "{out}");
        // Rejection is a report, not an error: the same plan through
        // .explain IS an error (the evaluator gate refuses to run it).
        assert!(s.eval_line(".explain cross a b").is_err());
    }

    #[test]
    fn check_warns_on_statically_empty_plans() {
        let mut s = Session::new();
        let out = run(&mut s, ".check intersect {a^1} {b^2}");
        assert!(out.contains("provably-empty"), "{out}");
        assert!(out.contains("accepted"), "{out}");
        assert!(out.contains("empty-subplan"), "{out}");
    }

    #[test]
    fn metrics_expose_and_reset() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let a = {1, 2}");
        run(&mut s, ".explain union a {3}");
        xst_obs::registry()
            .counter("shell_test_lines_total", "test series")
            .inc();
        let text = run(&mut s, ".metrics");
        assert!(text.contains("# TYPE"), "{text}");
        assert!(text.contains("shell_test_lines_total"), "{text}");
        let json = run(&mut s, ".metrics json");
        assert!(json.starts_with('{'), "{json}");
        assert_eq!(run(&mut s, ".metrics reset"), "metrics reset");
        assert!(s.eval_line(".metrics bogus").is_err());
    }

    #[test]
    fn trace_toggles_and_shows_spans() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, ".trace on");
        xst_obs::collector().clear();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩}");
        run(&mut s, ".explain image f {⟨a⟩} ⟨1⟩ ⟨2⟩");
        let shown = run(&mut s, ".trace show");
        assert!(shown.contains("query.explain_analyze"), "{shown}");
        assert_eq!(run(&mut s, ".trace show"), "no spans collected");
        assert!(run(&mut s, ".trace off").contains("off"));
        run(&mut s, ".trace on");
        assert!(s.eval_line(".trace sideways").is_err());
    }

    #[test]
    fn store_load_round_trip() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, c^2}");
        let stored = run(&mut s, ".store f");
        assert!(stored.contains("3 members"), "{stored}");
        let loaded = run(&mut s, ".load f as g");
        assert!(loaded.contains("3 records"), "{loaded}");
        assert_eq!(run(&mut s, "show g"), run(&mut s, "show f"));
        // The round trip leaves pool traffic behind for .metrics.
        let metrics = run(&mut s, ".metrics");
        assert!(metrics.contains("xst_storage_pool_hit_ratio"), "{metrics}");
        assert!(metrics.contains("xst_storage_wal_append_ns"), "{metrics}");
        // Errors: unknown binding, unknown stored table, bad syntax.
        assert!(s.eval_line(".store nope").is_err());
        assert!(s.eval_line(".load nope as h").is_err());
        assert!(s.eval_line(".load f into h").is_err());
        assert!(s.eval_line(".load f as bad name").is_err());
    }

    #[test]
    fn txn_begin_put_get_commit_flow() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, c^2}");
        assert!(run(&mut s, ".begin").contains("snapshot at commit ts 0"));
        let put = run(&mut s, ".put f");
        assert!(put.contains("3 rows buffered"), "{put}");
        // Read-your-own-writes: the open transaction sees its buffer.
        let got = run(&mut s, ".get f as g");
        assert!(got.contains("3 members"), "{got}");
        assert!(got.contains("snapshot of txn"), "{got}");
        assert_eq!(run(&mut s, "show g"), run(&mut s, "show f"));
        assert!(run(&mut s, ".commit").contains("committed at ts 1"));
        // After commit the rows are the table's latest state.
        let got = run(&mut s, ".get f as h");
        assert!(got.contains("latest commit"), "{got}");
        assert_eq!(run(&mut s, "show h"), run(&mut s, "show f"));
        // Transaction activity leaves the xst_txn_* families behind.
        let metrics = run(&mut s, ".metrics");
        assert!(metrics.contains("xst_txn_begins_total"), "{metrics}");
        assert!(metrics.contains("xst_txn_commits_total"), "{metrics}");
        assert!(metrics.contains("xst_txn_commit_ns"), "{metrics}");
    }

    #[test]
    fn txn_put_outside_transaction_autocommits() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let a = {1, 2}");
        let put = run(&mut s, ".put a");
        assert!(put.contains("autocommitted"), "{put}");
        let got = run(&mut s, ".get a as b");
        assert!(got.contains("2 members"), "{got}");
        assert_eq!(run(&mut s, "show b"), run(&mut s, "show a"));
    }

    #[test]
    fn txn_abort_discards_buffered_writes() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let a = {1, 2}");
        run(&mut s, ".put a"); // autocommit: 2 rows durable
        run(&mut s, "let more = {3, 4, 5}");
        run(&mut s, ".begin");
        run(&mut s, ".put more"); // buffered into table 'more'
        let aborted = run(&mut s, ".abort");
        assert!(aborted.contains("writes discarded"), "{aborted}");
        // The aborted table was created but holds nothing.
        let got = run(&mut s, ".get more as m");
        assert!(got.contains("0 members"), "{got}");
        // The autocommitted table is untouched.
        let got = run(&mut s, ".get a as b");
        assert!(got.contains("2 members"), "{got}");
        // A read-only transaction commits without bumping the timestamp.
        run(&mut s, ".begin");
        run(&mut s, ".get a as c");
        assert!(run(&mut s, ".commit").contains("read-only"));
    }

    #[test]
    fn txn_command_errors() {
        let mut s = Session::new();
        assert!(s.eval_line(".commit").is_err(), "no open txn");
        assert!(s.eval_line(".abort").is_err(), "no open txn");
        assert!(s.eval_line(".put nope").is_err(), "unknown binding");
        assert!(s.eval_line(".get nope as x").is_err(), "no tables yet");
        run(&mut s, "let a = {1}");
        run(&mut s, ".begin");
        assert!(s.eval_line(".begin").is_err(), "already open");
        assert!(s.eval_line(".get a into x").is_err(), "bad keyword");
        run(&mut s, ".abort");
        run(&mut s, ".put a");
        assert!(s.eval_line(".get missing as x").is_err(), "unknown table");
        assert!(s.eval_line(".get a as bad name").is_err(), "bad target");
        // The session survives all of it.
        assert_eq!(run(&mut s, "card a"), "1");
    }

    #[test]
    fn help_lists_txn_commands() {
        let mut s = Session::new();
        let h = run(&mut s, "help");
        for cmd in [".begin", ".put", ".get", ".commit", ".abort"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn serve_connect_remote_round_trip() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, c^2}");
        assert_eq!(run(&mut s, ".serve status"), "not serving");
        let started = run(&mut s, ".serve start");
        assert!(started.contains("serving the txn store on"), "{started}");
        let addr = started
            .split_whitespace()
            .find(|w| w.contains(':'))
            .unwrap()
            .to_string();
        assert!(run(&mut s, ".serve status").contains(&addr));
        // Local autocommit, then read it back OVER THE WIRE: the server
        // wraps this session's own engine.
        run(&mut s, ".put f");
        assert!(run(&mut s, &format!(".connect {addr}")).contains("connected"));
        assert_eq!(run(&mut s, ".remote ping"), "pong");
        let got = run(&mut s, ".remote get f as g");
        assert!(got.contains("3 members"), "{got}");
        assert_eq!(run(&mut s, "show g"), run(&mut s, "show f"));
        // Remote eval over the served table: the result is the table's
        // row-tuple identity; converting it back recovers the members.
        let evaled = parse_set(&run(&mut s, ".remote eval union f f")).unwrap();
        assert_eq!(
            records_identity_to_set(&evaled).unwrap().to_string(),
            run(&mut s, "show f"),
        );
        // A remote explicit transaction: put under .remote begin stays
        // buffered until .remote commit.
        run(&mut s, "let more = {1, 2}");
        assert!(run(&mut s, ".remote begin").contains("remote txn"));
        let put = run(&mut s, ".remote put more");
        assert!(put.contains("buffered"), "{put}");
        assert!(run(&mut s, ".remote commit").contains("remote committed"));
        let got = run(&mut s, ".remote get more as m");
        assert!(got.contains("2 members"), "{got}");
        assert!(run(&mut s, ".disconnect").contains("disconnected"));
        assert!(run(&mut s, ".serve stop").contains("stopped"));
        assert_eq!(run(&mut s, ".serve status"), "not serving");
    }

    #[test]
    fn network_command_errors() {
        let _serial = obs_serial();
        let mut s = Session::new();
        assert!(s.eval_line(".serve stop").is_err(), "not serving");
        assert!(s.eval_line(".serve sideways").is_err());
        assert!(s.eval_line(".disconnect").is_err(), "not connected");
        assert!(s.eval_line(".remote ping").is_err(), "not connected");
        assert!(
            s.eval_line(".connect 127.0.0.1:1").is_err(),
            "nothing listens there"
        );
        run(&mut s, ".serve start");
        assert!(s.eval_line(".serve start").is_err(), "already serving");
        // The session survives all of it.
        assert_eq!(run(&mut s, "card {1}"), "1");
    }

    #[test]
    fn help_lists_network_commands() {
        let mut s = Session::new();
        let h = run(&mut s, "help");
        for cmd in [".serve", ".connect", ".disconnect", ".remote", ".cluster"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn cluster_lifecycle_and_remote_routing() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let w = {1^1, 2^1, 3^1, 4^1}");
        let up = run(&mut s, ".cluster start 2");
        assert!(up.contains("2 shard server(s)"), "{up}");
        assert!(s.eval_line(".cluster start 2").is_err(), "double start");
        // `.remote` routes through the coordinator: autocommit scatter,
        // gathered read, distributed eval.
        let pong = run(&mut s, ".remote ping");
        assert!(pong.contains("pong from 2 shard(s)"), "{pong}");
        let put = run(&mut s, ".remote put w");
        assert!(
            put.contains("4 rows") && put.contains("autocommitted"),
            "{put}"
        );
        let got = run(&mut s, ".remote get w as back");
        assert!(
            got.contains("back bound from cluster 'w': 4 members"),
            "{got}"
        );
        assert_eq!(run(&mut s, "show back"), run(&mut s, "show w"));
        let evaled = parse_set(&run(&mut s, ".remote eval union w w")).unwrap();
        assert_eq!(evaled.to_string(), run(&mut s, "show w"));
        let status = run(&mut s, ".cluster status");
        assert!(status.contains("2 shard(s)"), "{status}");
        // The coordinator runs in-process, so its series land in the
        // local registry — no wire pull needed.
        assert!(
            run(&mut s, ".metrics").contains("xst_coord_"),
            "coordinator metrics must be in local .metrics"
        );
        let down = run(&mut s, ".cluster stop");
        assert!(down.contains("2 shard server(s) down"), "{down}");
        assert!(
            s.eval_line(".remote ping").is_err(),
            "no cluster, no client"
        );
        assert!(s.eval_line(".cluster stop").is_err(), "nothing to stop");
        assert_eq!(
            run(&mut s, ".cluster status"),
            "no cluster (.cluster start [N] first)"
        );
    }

    #[test]
    fn cluster_transactions_and_error_surface() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let a = {10^1, 11^2}");
        run(&mut s, ".cluster start 2");
        // An explicit distributed transaction: staged puts commit as a
        // wire 2PC round.
        let begin = run(&mut s, ".remote begin");
        assert!(
            begin.contains("cluster txn open across 2 shard(s)"),
            "{begin}"
        );
        let put = run(&mut s, ".remote put a");
        assert!(put.contains("visible after .remote commit"), "{put}");
        let commit = run(&mut s, ".remote commit");
        assert!(commit.contains("cluster committed at ts"), "{commit}");
        run(&mut s, ".remote get a as b");
        assert_eq!(run(&mut s, "card b"), "2");
        // Abort discards staged writes everywhere.
        run(&mut s, ".remote begin");
        run(&mut s, ".remote put a");
        assert!(run(&mut s, ".remote abort").contains("aborted"));
        // Observability pulls need a direct `.connect`.
        assert!(s.eval_line(".remote trace").is_err());
        assert!(s.eval_line(".remote metrics").is_err());
        // Unknown bindings and bad verbs surface as errors, not hangs.
        assert!(s.eval_line(".remote put nope").is_err());
        assert!(s.eval_line(".cluster sideways").is_err());
        run(&mut s, ".cluster stop");
    }

    #[test]
    fn top_and_slow_account_local_commands() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let a = {1, 2}");
        run(&mut s, "let b = {2, 3}");
        run(&mut s, "union a b");
        // Every command landed a session-0 record with its word as detail.
        let top = run(&mut s, ".top 500");
        assert!(top.contains("shell(union)"), "{top}");
        // Costs flow into the bill: an autocommitted .put appends to the WAL.
        run(&mut s, ".put a");
        let top = run(&mut s, ".top 500");
        assert!(top.contains("shell(.put)"), "{top}");
        assert!(top.contains("wal="), "{top}");
        // Slow-log threshold arms, renders, and disarms.
        assert!(run(&mut s, ".slow 250").contains("armed at 250 ms"));
        let shown = run(&mut s, ".slow");
        assert!(shown.contains("slow threshold: 250 ms"), "{shown}");
        assert!(run(&mut s, ".slow off").contains("disabled"));
        assert!(run(&mut s, ".slow").contains("disabled"), "disarmed");
        assert!(s.eval_line(".top sideways").is_err());
        assert!(s.eval_line(".slow sideways").is_err());
    }

    #[test]
    fn trace_export_emits_schema_json() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, ".trace on");
        xst_obs::collector().clear();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩}");
        run(&mut s, ".explain union f {⟨c, z⟩}");
        let json = run(&mut s, ".trace export");
        assert!(json.contains("\"schema\":\"xst-trace/1\""), "{json}");
        assert!(json.contains("shell.command"), "{json}");
        assert!(json.contains("query.explain_analyze"), "{json}");
        assert!(json.contains("\"trace_id\":\"0x"), "{json}");
        // Export is non-draining: .trace show still sees the spans.
        let shown = run(&mut s, ".trace show");
        assert!(shown.contains("query.explain_analyze"), "{shown}");
    }

    #[test]
    fn remote_observability_pulls() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩}");
        let started = run(&mut s, ".serve start");
        let addr = started
            .split_whitespace()
            .find(|w| w.contains(':'))
            .unwrap()
            .to_string();
        run(&mut s, &format!(".connect {addr}"));
        run(&mut s, ".put f");
        let evaled = run(&mut s, ".remote eval union f f");
        assert!(!evaled.is_empty());
        let metrics = run(&mut s, ".remote metrics");
        assert!(metrics.contains("# TYPE"), "{metrics}");
        let json = run(&mut s, ".remote metrics json");
        assert!(json.starts_with('{'), "{json}");
        let trace = run(&mut s, ".remote trace");
        assert!(trace.contains("\"schema\":\"xst-trace/1\""), "{trace}");
        // The server's request log saw the eval, with its session id.
        let top = run(&mut s, ".remote top 400");
        assert!(top.contains("eval"), "{top}");
        let slow = run(&mut s, ".remote slow");
        assert!(!slow.is_empty(), "{slow}");
        assert!(s.eval_line(".remote metrics sideways").is_err());
        run(&mut s, ".disconnect");
        run(&mut s, ".serve stop");
    }

    #[test]
    fn numeric_args_reject_garbage_empty_and_overflow() {
        let _serial = obs_serial();
        let mut s = Session::new();
        // Garbage.
        for line in [".top sideways", ".slow sideways", ".shards sideways"] {
            let e = s.eval_line(line).unwrap_err().to_string();
            assert!(e.contains("usage:"), "{line}: {e}");
        }
        // Negative numbers are garbage to unsigned args.
        assert!(s.eval_line(".top -3").is_err());
        assert!(s.eval_line(".slow -1").is_err());
        // Overflow is reported as out of range, not as a typo.
        for line in [
            ".top 99999999999999999999999999",
            ".slow 18446744073709551616",
            ".serve start 70000",
        ] {
            let e = s.eval_line(line).unwrap_err().to_string();
            assert!(e.contains("out of range"), "{line}: {e}");
        }
        // A bare non-numeric .serve port is rejected before the bind.
        let e = s.eval_line(".serve start bogus").unwrap_err().to_string();
        assert!(e.contains(".serve start [ADDR|PORT]"), "{e}");
        // Empty arguments keep their defaults (no error).
        assert!(run(&mut s, ".top").contains("session"));
        assert!(run(&mut s, ".slow").contains("disabled"));
        // The session survives all of it.
        assert_eq!(run(&mut s, "card {1}"), "1");
    }

    #[test]
    fn shards_command_introspects_and_reshards() {
        let _serial = obs_serial();
        let mut s = Session::new();
        assert!(run(&mut s, ".shards").contains("no txn store yet"));
        assert_eq!(
            run(&mut s, ".shards 3"),
            "txn store resharded across 3 shard(s)"
        );
        let status = run(&mut s, ".shards");
        assert!(status.contains("3 shard(s)"), "{status}");
        assert!(status.contains("shard 2:"), "{status}");
        // A multi-member put spreads across shards and gathers back.
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, c^2, d, e^3}");
        run(&mut s, ".begin");
        run(&mut s, ".put f");
        let in_txn = run(&mut s, ".shards");
        assert!(in_txn.contains("1 distributed txn(s) open"), "{in_txn}");
        assert!(run(&mut s, ".commit").contains("committed at ts"));
        let got = run(&mut s, ".get f as g");
        assert!(got.contains("5 members"), "{got}");
        assert_eq!(run(&mut s, "show g"), run(&mut s, "show f"));
        // Resharding with data in place is refused.
        let e = s.eval_line(".shards 2").unwrap_err().to_string();
        assert!(e.contains("cannot reshard"), "{e}");
        assert!(s.eval_line(".shards 0").is_err(), "zero shards");
    }

    #[test]
    fn faults_command_injects_and_retry_absorbs() {
        let _serial = obs_serial();
        let mut s = Session::new();
        run(&mut s, "let f = {⟨a, x⟩, ⟨b, y⟩, c^2, d, e^3}");
        assert!(run(&mut s, ".faults status").contains("faults off"));
        assert!(run(&mut s, ".faults on").contains("armed"));
        // The store/load round trip now runs under injected transient
        // faults — the default retry policy must absorb every one.
        let stored = run(&mut s, ".store f");
        assert!(stored.contains("5 members"), "{stored}");
        let loaded = run(&mut s, ".load f as g");
        assert!(loaded.contains("5 records"), "{loaded}");
        assert_eq!(run(&mut s, "show g"), run(&mut s, "show f"));
        let status = run(&mut s, ".faults status");
        assert!(status.contains("armed"), "{status}");
        assert!(status.contains("injected"), "{status}");
        assert!(run(&mut s, ".faults off").contains("disarmed"));
        assert!(run(&mut s, ".faults status").contains("faults off"));
        assert!(s.eval_line(".faults sideways").is_err());
    }
}
