//! Interactive XST calculator. Reads commands from stdin, one per line;
//! `help` lists them. All logic lives in the library so it is testable.

use std::io::{BufRead, Write};
use xst_shell::Session;

fn main() {
    let mut session = Session::new();
    println!("xst-shell — extended set theory calculator. Type 'help' or 'quit'.");
    let stdin = std::io::stdin();
    loop {
        print!("xst> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match session.eval_line(line) {
            Ok(Some(output)) => println!("{output}"),
            Ok(None) => {}
            Err(e) => println!("error: {e}"),
        }
    }
}
