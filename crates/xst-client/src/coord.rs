//! # Wire-protocol 2PC coordinator over N shard processes
//!
//! [`Coordinator`] promotes the in-process `ShardedEngine` coordinator
//! to a **cross-process** one: each shard is a separate `xst-server`
//! reached over the length-prefixed CRC-framed protocol, and the
//! coordinator drives the same commit state machine over the wire —
//! scatter writes by member hash, read by gathering per-shard
//! fragments ([`Request::FragRead`]), and settle multi-shard commits
//! with a wire 2PC round ([`Request::Prepare`] /
//! [`Request::Decide`] / [`Request::Resolve`]).
//!
//! ## The decision log is the acknowledgement
//!
//! Exactly as in the in-process engine, the coordinator's own durable
//! decision log (one `gtxn` record per committed global transaction,
//! presence == COMMIT, absence == ABORT) is **the** acknowledgement:
//!
//! 1. `Prepare(gtxn)` to every written shard — each seals its staged
//!    writes and a PREPARE control record in one marker-sealed flush;
//! 2. the coordinator appends the decision record to its own log —
//!    *this flush is the commit point*;
//! 3. `Decide(gtxn, commit)` to every prepared shard — **best effort**.
//!    A lost decision message cannot change the outcome: the decision
//!    is durable, and [`Coordinator::recover`] replays the log and
//!    sends [`Request::Resolve`] so every reachable shard converges.
//!
//! Crash before step 2 and no decision exists — every shard
//! presumed-aborts its in-doubt prepare at resolve. Crash after step 2
//! and the transaction IS committed — recovery re-delivers the
//! decision. There is no window where shards can disagree (split-brain)
//! because no shard ever decides unilaterally: prepared state waits for
//! a decision or a resolve, nothing else.
//!
//! ## Sequencing
//!
//! The coordinator issues strictly sequential round-trips (one
//! outstanding request across the whole cluster). That is deliberately
//! boring: the deterministic network-fault sweep in `xst-testkit`
//! numbers every coordinator↔shard message as a fault site, and
//! sequential rounds make the numbering a total order.

use crate::{Client, ClientError};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use xst_core::ops::{gather, Parallelism};
use xst_core::{ExtendedSet, SetBuilder};
use xst_obs::{registry, Counter, Gauge};
use xst_query::{eval_sharded, Expr, ShardedBindings};
use xst_server::proto::ErrorCode;
use xst_server::set_to_records;
use xst_storage::{
    decision_schema, shard_of, BufferPool, LoggedTable, Record, Storage, StorageError, Wal,
};

/// Everything that can go wrong driving the cluster.
#[derive(Debug)]
pub enum CoordError {
    /// A shard connection failed (transport, protocol, or remote error).
    Shard {
        /// Index of the shard whose round-trip failed.
        shard: usize,
        /// The underlying client failure.
        source: ClientError,
    },
    /// The coordinator's own decision log failed to flush — the
    /// transaction was aborted (no decision exists).
    DecisionLog(StorageError),
    /// Request illegal in the coordinator's current transaction state.
    State(String),
    /// The test-only crash hook fired: the decision for this gtxn is
    /// durable but its delivery was deliberately suppressed, simulating
    /// a coordinator crash between the decision flush and the Decide
    /// round. Only reachable via [`Coordinator::kill_after_decision`].
    KilledAfterDecision {
        /// The globally-committed transaction whose Decide never left.
        gtxn: u64,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            CoordError::DecisionLog(e) => write!(f, "decision log flush failed: {e}"),
            CoordError::State(m) => write!(f, "coordinator state: {m}"),
            CoordError::KilledAfterDecision { gtxn } => {
                write!(f, "coordinator killed after deciding gtxn {gtxn}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// Result alias for every coordinator call.
pub type CoordResult<T> = Result<T, CoordError>;

fn shard_err(shard: usize, source: ClientError) -> CoordError {
    CoordError::Shard { shard, source }
}

fn shards_gauge() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        registry().gauge(
            xst_obs::names::COORD_SHARDS,
            "Shard processes the wire coordinator is connected to.",
        )
    })
}

fn txn_begins_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_TXN_BEGINS_TOTAL,
            "Distributed transactions begun by the wire coordinator.",
        )
    })
}

fn single_commits_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_SINGLE_COMMITS_TOTAL,
            "Coordinator commits settled on at most one shard (no 2PC round).",
        )
    })
}

fn two_pc_commits_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_2PC_COMMITS_TOTAL,
            "Multi-shard wire commits acknowledged by a durable coordinator decision.",
        )
    })
}

fn two_pc_aborts_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_2PC_ABORTS_TOTAL,
            "Multi-shard wire commits aborted before a decision was recorded.",
        )
    })
}

fn frag_reads_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_FRAG_READS_TOTAL,
            "Per-shard fragment reads issued by the wire coordinator.",
        )
    })
}

fn resolves_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_RESOLVES_TOTAL,
            "Resolve rounds the wire coordinator delivered to shards.",
        )
    })
}

fn decisions_replayed_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::COORD_DECISIONS_REPLAYED_TOTAL,
            "Committed decisions replayed from the log at coordinator recovery.",
        )
    })
}

/// A cross-process 2PC coordinator: one [`Client`] per shard process,
/// plus its own durable decision log. At most one distributed
/// transaction is open at a time (the coordinator *is* the session).
pub struct Coordinator {
    shards: Vec<Client>,
    addrs: Vec<String>,
    timeout: Option<Duration>,
    storage: Storage,
    wal: Wal,
    decisions: LoggedTable,
    /// Every gtxn this coordinator ever durably committed (replayed
    /// from the log at recovery) — what Resolve ships to shards.
    committed: BTreeSet<u64>,
    next_gtxn: u64,
    in_txn: bool,
    /// Which shards received at least one non-empty write in the open
    /// transaction — the 2PC participant set.
    wrote: Vec<bool>,
    kill_after_decision: bool,
}

impl Coordinator {
    /// Connect to one `xst-server` per address over fresh coordinator
    /// devices (a brand-new decision log). `timeout` bounds every
    /// read/write on every shard connection — a stalled shard surfaces
    /// as a typed timeout instead of a hang.
    pub fn connect(addrs: &[String], timeout: Option<Duration>) -> CoordResult<Coordinator> {
        let storage = Storage::new();
        let wal = Wal::new();
        let decisions = LoggedTable::create(&storage, decision_schema(), wal.clone());
        let shards = Coordinator::dial(addrs, timeout)?;
        let n = shards.len();
        if xst_obs::enabled() {
            shards_gauge().set(n as f64);
        }
        Ok(Coordinator {
            shards,
            addrs: addrs.to_vec(),
            timeout,
            storage,
            wal,
            decisions,
            committed: BTreeSet::new(),
            next_gtxn: 1,
            in_txn: false,
            wrote: vec![false; n],
            kill_after_decision: false,
        })
    }

    /// Restart a coordinator over its surviving devices: drop any
    /// unacknowledged staged decision (the crash), replay the decision
    /// log into the committed set, reconnect every shard, and deliver a
    /// [`Request::Resolve`] round so each reachable shard settles its
    /// in-doubt prepares to the logged outcome. Shards that cannot be
    /// reached stay prepared — harmless, a later resolve settles them.
    pub fn recover(
        addrs: &[String],
        storage: Storage,
        wal: Wal,
        timeout: Option<Duration>,
    ) -> CoordResult<Coordinator> {
        storage.clear_faults();
        wal.clear_faults();
        wal.drop_staged();
        let fresh = Wal::new();
        let decisions = LoggedTable::recover_onto(&storage, decision_schema(), wal, fresh.clone())
            .map_err(CoordError::DecisionLog)?;
        let pool = BufferPool::new(storage.clone(), 8);
        let mut committed: BTreeSet<u64> = BTreeSet::new();
        let mut max_gtxn = 0u64;
        let records = decisions
            .table
            .file
            .read_all(&pool)
            .map_err(CoordError::DecisionLog)?;
        for rec in records {
            let [xst_core::Value::Int(g)] = rec.values() else {
                return Err(CoordError::DecisionLog(StorageError::Corrupt {
                    reason: "decision log record is not a single gtxn".to_string(),
                }));
            };
            let g = u64::try_from(*g).map_err(|_| {
                CoordError::DecisionLog(StorageError::Corrupt {
                    reason: "negative gtxn in decision log".to_string(),
                })
            })?;
            committed.insert(g);
            max_gtxn = max_gtxn.max(g);
        }
        if xst_obs::enabled() {
            decisions_replayed_total().add(committed.len() as u64);
        }
        let shards = Coordinator::dial(addrs, timeout)?;
        let n = shards.len();
        if xst_obs::enabled() {
            shards_gauge().set(n as f64);
        }
        let mut coord = Coordinator {
            shards,
            addrs: addrs.to_vec(),
            timeout,
            storage,
            wal: fresh,
            decisions,
            committed,
            next_gtxn: max_gtxn + 1,
            in_txn: false,
            wrote: vec![false; n],
            kill_after_decision: false,
        };
        coord.resolve_all()?;
        Ok(coord)
    }

    fn dial(addrs: &[String], timeout: Option<Duration>) -> CoordResult<Vec<Client>> {
        let mut shards = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let name = format!("xst-coord/{i}");
            let client =
                Client::connect_with_timeout(addr, &name, timeout).map_err(|e| shard_err(i, e))?;
            shards.push(client);
        }
        Ok(shards)
    }

    /// The coordinator's durable devices. Hold on to these to later
    /// [`Coordinator::recover`] "the same node" after dropping this
    /// instance — the decision log lives on them.
    pub fn devices(&self) -> (Storage, Wal) {
        (self.storage.clone(), self.wal.clone())
    }

    /// The shard addresses this coordinator was built over.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Number of shard processes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Is a distributed transaction open?
    pub fn in_txn(&self) -> bool {
        self.in_txn
    }

    /// Every globally-committed transaction id this coordinator knows
    /// (logged this run plus replayed at recovery), in id order.
    pub fn committed_gtxns(&self) -> Vec<u64> {
        self.committed.iter().copied().collect()
    }

    /// The configured per-request timeout.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Test-only crash hook: when set, the next multi-shard commit
    /// flushes its decision and then returns
    /// [`CoordError::KilledAfterDecision`] **without** delivering any
    /// Decide — exactly the coordinator dying between its commit point
    /// and the decision round. Recovery must finish the job.
    pub fn kill_after_decision(&mut self, on: bool) {
        self.kill_after_decision = on;
    }

    /// Begin a distributed transaction: one server-side transaction per
    /// shard, all on the same logical snapshot boundary (begins are
    /// issued under no concurrent coordinator activity — this
    /// coordinator is the only writer session on every shard).
    pub fn begin(&mut self) -> CoordResult<()> {
        if self.in_txn {
            return Err(CoordError::State(
                "a distributed transaction is already open (commit or abort it)".to_string(),
            ));
        }
        for i in 0..self.shards.len() {
            self.shards[i].begin().map_err(|e| shard_err(i, e))?;
        }
        self.in_txn = true;
        self.wrote.iter_mut().for_each(|w| *w = false);
        if xst_obs::enabled() {
            txn_begins_total().inc();
        }
        Ok(())
    }

    /// Split `set` into per-shard member subsets by the engine's member
    /// hash — the same [`shard_of`] every in-process engine uses, so a
    /// member lands on the same shard in either deployment.
    fn route(&self, set: &ExtendedSet) -> Vec<ExtendedSet> {
        let n = self.shards.len().max(1);
        let mut builders: Vec<SetBuilder> = (0..n).map(|_| SetBuilder::new()).collect();
        for (member, record) in set.members().iter().zip(set_to_records(set)) {
            let shard = shard_of(&record, n);
            builders[shard].scoped(member.element.clone(), member.scope.clone());
        }
        builders.into_iter().map(SetBuilder::build).collect()
    }

    /// Insert every member of `set` into `table`, routed by member
    /// hash. **Every** shard receives a Put — empty subsets included —
    /// so the table exists in every shard's catalog (reads and recovery
    /// need the uniform catalog). Outside a transaction this wraps
    /// itself in begin/commit, keeping cross-shard atomicity.
    pub fn put(&mut self, table: &str, set: &ExtendedSet) -> CoordResult<u64> {
        if !self.in_txn {
            self.begin()?;
            let rows = self.put(table, set)?;
            self.commit()?;
            return Ok(rows);
        }
        let parts = self.route(set);
        let mut rows = 0u64;
        for (i, part) in parts.iter().enumerate() {
            let applied = self.shards[i]
                .put(table, part)
                .map_err(|e| shard_err(i, e))?;
            rows += applied.rows;
            if part.card() > 0 {
                self.wrote[i] = true;
            }
        }
        Ok(rows)
    }

    /// Delete every member of `set` from `table`, routed by member hash.
    pub fn delete(&mut self, table: &str, set: &ExtendedSet) -> CoordResult<u64> {
        if !self.in_txn {
            self.begin()?;
            let rows = self.delete(table, set)?;
            self.commit()?;
            return Ok(rows);
        }
        let parts = self.route(set);
        let mut rows = 0u64;
        for (i, part) in parts.iter().enumerate() {
            if part.card() == 0 {
                continue;
            }
            let applied = self.shards[i]
                .delete(table, part)
                .map_err(|e| shard_err(i, e))?;
            rows += applied.rows;
            self.wrote[i] = true;
        }
        Ok(rows)
    }

    /// The per-shard member fragments of `table`, in shard order.
    /// A shard that does not know the table contributes an empty
    /// fragment; if **no** shard knows it, the error propagates (the
    /// table does not exist anywhere).
    fn fragments(&mut self, table: &str) -> CoordResult<Vec<ExtendedSet>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        let mut known = 0usize;
        let mut first_err: Option<CoordError> = None;
        for i in 0..self.shards.len() {
            match self.shards[i].frag_read(table) {
                Ok(set) => {
                    known += 1;
                    parts.push(set);
                }
                Err(ClientError::Remote(e)) if e.code == ErrorCode::Storage => {
                    if first_err.is_none() {
                        first_err = Some(shard_err(i, ClientError::Remote(e)));
                    }
                    parts.push(ExtendedSet::empty());
                }
                Err(e) => return Err(shard_err(i, e)),
            }
            if xst_obs::enabled() {
                frag_reads_total().inc();
            }
        }
        if known == 0 {
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(parts)
    }

    /// Read the whole member set of `table`: gather the per-shard
    /// fragments (ordered union over disjoint fragments — exact).
    pub fn get(&mut self, table: &str) -> CoordResult<ExtendedSet> {
        Ok(gather(&self.fragments(table)?))
    }

    /// Evaluate `expr` over the cluster: scatter-read every named
    /// table's per-shard fragments, then run the shard-aware evaluator
    /// exactly as the in-process engine would. Tables no shard knows
    /// stay unbound, so the static-analysis gate reports them.
    pub fn eval(&mut self, expr: &Expr) -> CoordResult<ExtendedSet> {
        let names: Vec<String> = expr.tables().iter().map(|n| n.to_string()).collect();
        let mut bindings = ShardedBindings::new();
        for name in names {
            match self.fragments(&name) {
                Ok(parts) => {
                    bindings.insert(name, parts);
                }
                Err(CoordError::Shard {
                    source: ClientError::Remote(e),
                    ..
                }) if e.code == ErrorCode::Storage => {} // unbound: the gate reports it
                Err(e) => return Err(e),
            }
        }
        eval_sharded(expr, &bindings, &Parallelism::sequential())
            .map(|(set, _stats)| set)
            .map_err(|e| CoordError::State(format!("eval failed: {e}")))
    }

    /// Abort the open distributed transaction on every shard.
    pub fn abort(&mut self) -> CoordResult<()> {
        if !self.in_txn {
            return Err(CoordError::State(
                "no open distributed transaction (begin first)".to_string(),
            ));
        }
        self.in_txn = false;
        let mut first_err: Option<CoordError> = None;
        for i in 0..self.shards.len() {
            if let Err(e) = self.shards[i].abort() {
                if first_err.is_none() {
                    first_err = Some(shard_err(i, e));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Commit the open distributed transaction.
    ///
    /// * **No shard wrote** — plain Commit everywhere (read-only).
    /// * **One shard wrote** — Commit on the writer, Abort elsewhere:
    ///   single-shard durability is the shard's own WAL flush, no
    ///   coordination needed.
    /// * **Two or more wrote** — the wire 2PC round: Prepare on every
    ///   writer, the decision-log flush (THE acknowledgement), then
    ///   best-effort Decide. Any prepare failure aborts the whole
    ///   transaction before a decision exists.
    ///
    /// Returns the maximum commit timestamp any shard reported.
    pub fn commit(&mut self) -> CoordResult<u64> {
        if !self.in_txn {
            return Err(CoordError::State(
                "no open distributed transaction (begin first)".to_string(),
            ));
        }
        self.in_txn = false;
        let writers: Vec<usize> = (0..self.shards.len()).filter(|&i| self.wrote[i]).collect();
        match writers.len() {
            0 => {
                let mut ts = 0u64;
                let mut first_err: Option<CoordError> = None;
                for i in 0..self.shards.len() {
                    match self.shards[i].commit() {
                        Ok(t) => ts = ts.max(t),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(shard_err(i, e));
                            }
                        }
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
                if xst_obs::enabled() {
                    single_commits_total().inc();
                }
                Ok(ts)
            }
            1 => {
                let w = writers[0];
                // Abort the read-only shards first: their sessions hold
                // snapshots, nothing durable rides on them.
                for i in 0..self.shards.len() {
                    if i != w {
                        let _ = self.shards[i].abort();
                    }
                }
                let ts = self.shards[w].commit().map_err(|e| shard_err(w, e))?;
                if xst_obs::enabled() {
                    single_commits_total().inc();
                }
                Ok(ts)
            }
            _ => self.commit_2pc(&writers),
        }
    }

    fn commit_2pc(&mut self, writers: &[usize]) -> CoordResult<u64> {
        let gtxn = self.next_gtxn;
        self.next_gtxn += 1;
        // Read-only shards just abort; they are not participants.
        for i in 0..self.shards.len() {
            if !writers.contains(&i) {
                let _ = self.shards[i].abort();
            }
        }
        // Phase one: prepare every writer. A failure here — a conflict,
        // a dead shard, a timeout — aborts the transaction *before* any
        // decision exists: decide-abort the already-prepared shards
        // (best effort; presumed abort covers the unreachable) and
        // abort the unprepared remainder, whose sessions still hold the
        // open transaction.
        let mut prepared: Vec<usize> = Vec::with_capacity(writers.len());
        let mut prepare_err: Option<CoordError> = None;
        for &i in writers {
            if prepare_err.is_some() {
                let _ = self.shards[i].abort();
                continue;
            }
            match self.shards[i].prepare(gtxn) {
                Ok(_participants) => prepared.push(i),
                Err(e) => prepare_err = Some(shard_err(i, e)),
            }
        }
        if prepare_err.is_none() && self.kill_after_decision {
            // The test hook crashes "the coordinator" after its commit
            // point: flush the decision, deliver nothing.
            self.kill_after_decision = false;
            let decision = Record::new([xst_core::Value::Int(gtxn as i64)]);
            if let Err(e) = self.decisions.append_batch(&[decision]) {
                prepare_err = Some(CoordError::DecisionLog(e));
            } else {
                self.committed.insert(gtxn);
                return Err(CoordError::KilledAfterDecision { gtxn });
            }
        }
        if prepare_err.is_none() {
            // The decision flush: THE acknowledgement of the whole
            // distributed transaction.
            let decision = Record::new([xst_core::Value::Int(gtxn as i64)]);
            if let Err(e) = self.decisions.append_batch(&[decision]) {
                prepare_err = Some(CoordError::DecisionLog(e));
            }
        }
        if let Some(e) = prepare_err {
            for i in prepared {
                let _ = self.shards[i].decide(gtxn, false);
            }
            if xst_obs::enabled() {
                two_pc_aborts_total().inc();
            }
            return Err(e);
        }
        self.committed.insert(gtxn);
        // Phase two: deliver the decision, best effort. The outcome is
        // already fixed; a shard that misses its Decide stays prepared
        // until a Resolve (recovery, or the next resolve_all) commits
        // it from the log.
        let mut ts = 0u64;
        for i in prepared {
            if let Ok(t) = self.shards[i].decide(gtxn, true) {
                ts = ts.max(t);
            }
        }
        if xst_obs::enabled() {
            two_pc_commits_total().inc();
        }
        Ok(ts)
    }

    /// Deliver the coordinator's full committed set to every shard as a
    /// [`Request::Resolve`]: each settles its in-doubt prepares —
    /// commit the logged ones, presume abort for the rest. Returns the
    /// summed `(committed, aborted)` counts. Unreachable shards are
    /// skipped (they settle on the next resolve).
    pub fn resolve_all(&mut self) -> CoordResult<(u64, u64)> {
        let committed: Vec<u64> = self.committed.iter().copied().collect();
        let mut totals = (0u64, 0u64);
        for i in 0..self.shards.len() {
            if let Ok((c, a)) = self.shards[i].resolve(&committed) {
                totals.0 += c;
                totals.1 += a;
            }
        }
        if xst_obs::enabled() {
            resolves_total().inc();
        }
        Ok(totals)
    }

    /// A one-line human status of the cluster, for the shell.
    pub fn status(&self) -> String {
        format!(
            "cluster: {} shard(s) [{}], {} committed decision(s), next gtxn {}, txn open: {}",
            self.shards.len(),
            self.addrs.join(", "),
            self.committed.len(),
            self.next_gtxn,
            self.in_txn
        )
    }
}
