//! # xst-client — blocking typed client for the XST wire protocol
//!
//! One [`Client`] is one connection is one server-side session: a
//! private transactional view over the served engine. The API is
//! deliberately small and synchronous — connect, issue one request at a
//! time, get a typed result — because every consumer in this workspace
//! (the shell's `.connect`, the end-to-end battery, the latency
//! experiments) wants exactly that shape.
//!
//! Every failure is a typed [`ClientError`]. Server-side failures arrive
//! as [`ClientError::Remote`] carrying the wire [`ErrorCode`] — so a
//! commit that lost first-committer-wins validation is
//! `Remote { code: TxnConflict, .. }`, checkable with
//! [`ClientError::is_conflict`], not a stringly-typed guess.
//!
//! ## Distributed tracing
//!
//! When the observability collector is on and the negotiated protocol
//! is v2+, every call **originates a trace**: it opens a
//! `client.request` root span and ships its
//! [`TraceContext`](xst_obs::TraceContext) inside a
//! [`Request::Traced`] wrapper, so the server-side spans
//! (`session.request` → `query.eval` → `txn.*`/`wal.*`) stitch under
//! the same 64-bit trace id. [`Client::trace_dump`] fetches the
//! server's collected spans as `xst-trace/1` JSON and
//! [`Client::request_log`] its structured per-request cost records.
//! Against a v1 server — or with [`Client::set_tracing`] off — calls
//! travel bare, exactly as a v1 client would send them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xst_core::ExtendedSet;
use xst_query::Expr;
use xst_server::proto::{
    ErrorCode, Request, Response, WireError, MIN_PROTO_VERSION, PROTO_VERSION,
};
use xst_server::wire::{read_frame, write_frame, FrameError};
use xst_storage::{FaultKind, FaultSchedule};

/// Everything that can go wrong on the client side of a session.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(std::io::Error),
    /// A configured read/write deadline expired before the server
    /// answered. The stream may hold a half-delivered frame, so the
    /// connection should be abandoned, not reused.
    Timeout,
    /// The byte stream violated the frame or message protocol.
    Protocol(String),
    /// The handshake failed (version mismatch or malformed welcome).
    Handshake(String),
    /// The server refused the connection at admission control.
    Rejected(String),
    /// The server answered with a structured error; the session
    /// survives (admission/version errors surface as
    /// [`ClientError::Rejected`]/[`ClientError::Handshake`] instead).
    Remote(WireError),
    /// The server answered with a response kind the request cannot
    /// produce — a server bug or a desynced stream.
    Unexpected(String),
}

impl ClientError {
    /// Is this a first-committer-wins conflict (retry on a fresh
    /// snapshot may succeed)?
    pub fn is_conflict(&self) -> bool {
        matches!(
            self,
            ClientError::Remote(WireError {
                code: ErrorCode::TxnConflict,
                ..
            })
        )
    }

    /// The remote error code, if this is a remote failure.
    pub fn remote_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Remote(e) => Some(e.code),
            _ => None,
        }
    }

    /// Did a configured request deadline expire?
    pub fn is_timeout(&self) -> bool {
        matches!(self, ClientError::Timeout)
    }
}

/// Map an I/O failure to [`ClientError`], folding the two kinds the
/// platform uses for an expired socket deadline (`TimedOut` on most
/// systems, `WouldBlock` where timeouts surface as non-blocking reads)
/// into the typed [`ClientError::Timeout`].
fn io_to_client(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ClientError::Timeout,
        _ => ClientError::Io(e),
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
            ClientError::Timeout => write!(f, "request deadline expired"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Handshake(m) => write!(f, "handshake failed: {m}"),
            ClientError::Rejected(m) => write!(f, "admission rejected: {m}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        io_to_client(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(io) => io_to_client(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// Result alias for every client call.
pub type ClientResult<T> = Result<T, ClientError>;

/// The outcome of a put/delete: how many rows it touched, and the
/// commit timestamp if it autocommitted (buffered writes have none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// Rows the request touched.
    pub rows: u64,
    /// Commit timestamp when autocommitted, `None` while buffered in an
    /// open transaction.
    pub autocommit_ts: Option<u64>,
}

/// An open transaction's identity, as reported by `begin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnInfo {
    /// The server-assigned transaction id.
    pub id: u64,
    /// The commit timestamp the transaction's snapshot reads from.
    pub snapshot_ts: u64,
}

/// A blocking connection to an `xst-server`, already past the version
/// handshake. Dropping the client closes the connection, which aborts
/// any transaction left open server-side.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    banner: String,
    /// The protocol version the handshake negotiated (the server echo).
    version: u32,
    /// Wrap calls in a trace context when the collector is on and the
    /// negotiated protocol supports it.
    tracing: bool,
}

fn requests_total() -> &'static std::sync::Arc<xst_obs::Counter> {
    static C: std::sync::OnceLock<std::sync::Arc<xst_obs::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        xst_obs::registry().counter(
            xst_obs::names::CLIENT_REQUESTS_TOTAL,
            "Requests issued by xst-client connections.",
        )
    })
}

fn request_ns_hist() -> &'static std::sync::Arc<xst_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<xst_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        xst_obs::registry().histogram(
            xst_obs::names::CLIENT_REQUEST_NS,
            "Nanoseconds from request write to response decode on the client.",
        )
    })
}

impl Client {
    /// Connect to `addr` and perform the handshake, identifying as
    /// `client_name` in the server's diagnostics.
    pub fn connect(addr: &str, client_name: &str) -> ClientResult<Client> {
        Client::connect_with_timeout(addr, client_name, None)
    }

    /// Like [`Client::connect`], but with a per-request read/write
    /// deadline installed **before** the handshake, so even a server
    /// that accepts and then stalls cannot hang the connect. A blocked
    /// call past the deadline returns [`ClientError::Timeout`].
    pub fn connect_with_timeout(
        addr: &str,
        client_name: &str,
        timeout: Option<Duration>,
    ) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let mut c = Client {
            stream,
            banner: String::new(),
            version: PROTO_VERSION,
            tracing: true,
        };
        let resp = c.round_trip(&Request::Hello {
            version: PROTO_VERSION,
            client: client_name.to_string(),
        })?;
        match resp {
            Response::Welcome { version, banner }
                if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) =>
            {
                c.banner = banner;
                c.version = version;
                Ok(c)
            }
            Response::Welcome { version, .. } => Err(ClientError::Handshake(format!(
                "server answered protocol v{version}, client speaks v{PROTO_VERSION}"
            ))),
            Response::Error(e) if e.code == ErrorCode::Admission => {
                Err(ClientError::Rejected(e.message))
            }
            Response::Error(e) if e.code == ErrorCode::Version => {
                Err(ClientError::Handshake(e.message))
            }
            other => Err(ClientError::Unexpected(format!(
                "handshake answered with {other:?}"
            ))),
        }
    }

    /// The server's welcome banner.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// The protocol version the handshake negotiated.
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    /// Control trace origination (default on). Even when on, calls only
    /// carry a context if the collector is enabled and the negotiated
    /// protocol is v2+.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Bound how long a blocked read waits (for tests that must not
    /// hang on a dead server). A read past the deadline surfaces as
    /// [`ClientError::Timeout`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> ClientResult<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Bound how long a blocked write waits (a peer that stops reading
    /// eventually fills the socket buffer and stalls the sender).
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> ClientResult<()> {
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    fn round_trip(&mut self, req: &Request) -> ClientResult<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Issue `req`; treat a [`Response::Error`] as [`ClientError::Remote`].
    ///
    /// This is where a trace originates: with the collector on and a
    /// v2+ peer, the call opens a `client.request` root span and wraps
    /// `req` in [`Request::Traced`] carrying the span's context, so the
    /// server's spans stitch under the same trace id.
    fn call(&mut self, req: Request) -> ClientResult<Response> {
        let span = (self.tracing && self.version >= 2 && xst_obs::enabled())
            .then(|| xst_obs::span!("client.request", kind = req.kind_name()));
        let timer = xst_obs::enabled().then(Instant::now);
        let resp = match span.as_ref().and_then(xst_obs::SpanGuard::context) {
            Some(ctx) => self.round_trip(&Request::Traced {
                ctx,
                req: Box::new(req),
            })?,
            None => self.round_trip(&req)?,
        };
        if let Some(start) = timer {
            requests_total().inc();
            request_ns_hist().observe_since(start);
        }
        match resp {
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Evaluate an expression against this session's visible snapshot.
    pub fn eval(&mut self, expr: &Expr) -> ClientResult<ExtendedSet> {
        match self.call(Request::Eval { expr: expr.clone() })? {
            Response::Value { set } => Ok(set),
            other => Err(unexpected("eval", &other)),
        }
    }

    /// Statically analyze an expression; returns the rendered report.
    pub fn check(&mut self, expr: &Expr) -> ClientResult<String> {
        match self.call(Request::Check { expr: expr.clone() })? {
            Response::Report { text } => Ok(text),
            other => Err(unexpected("check", &other)),
        }
    }

    /// Optimize + execute; returns the per-operator report.
    pub fn explain(&mut self, expr: &Expr) -> ClientResult<String> {
        match self.call(Request::Explain { expr: expr.clone() })? {
            Response::Report { text } => Ok(text),
            other => Err(unexpected("explain", &other)),
        }
    }

    /// Open an explicit transaction.
    pub fn begin(&mut self) -> ClientResult<TxnInfo> {
        match self.call(Request::Begin)? {
            Response::TxnBegun { id, snapshot_ts } => Ok(TxnInfo { id, snapshot_ts }),
            other => Err(unexpected("begin", &other)),
        }
    }

    /// Commit the open transaction; returns its commit timestamp.
    /// First-committer-wins losses surface as a
    /// [`ClientError::is_conflict`] remote error.
    pub fn commit(&mut self) -> ClientResult<u64> {
        match self.call(Request::Commit)? {
            Response::Committed { ts } => Ok(ts),
            other => Err(unexpected("commit", &other)),
        }
    }

    /// Abort the open transaction.
    pub fn abort(&mut self) -> ClientResult<()> {
        match self.call(Request::Abort)? {
            Response::Aborted => Ok(()),
            other => Err(unexpected("abort", &other)),
        }
    }

    /// Insert every member of `set` into `table` (autocommits outside
    /// an open transaction).
    pub fn put(&mut self, table: &str, set: &ExtendedSet) -> ClientResult<Applied> {
        match self.call(Request::Put {
            table: table.to_string(),
            set: set.clone(),
        })? {
            Response::Applied {
                rows,
                autocommit_ts,
            } => Ok(Applied {
                rows,
                autocommit_ts,
            }),
            other => Err(unexpected("put", &other)),
        }
    }

    /// Delete every member of `set` from `table`.
    pub fn delete(&mut self, table: &str, set: &ExtendedSet) -> ClientResult<Applied> {
        match self.call(Request::Delete {
            table: table.to_string(),
            set: set.clone(),
        })? {
            Response::Applied {
                rows,
                autocommit_ts,
            } => Ok(Applied {
                rows,
                autocommit_ts,
            }),
            other => Err(unexpected("delete", &other)),
        }
    }

    /// Read `table`'s visible identity: rows as scoped tuples. Use
    /// [`xst_server::records_identity_to_set`] to rebuild the member
    /// set it denotes.
    pub fn get(&mut self, table: &str) -> ClientResult<ExtendedSet> {
        match self.call(Request::Get {
            table: table.to_string(),
        })? {
            Response::Value { set } => Ok(set),
            other => Err(unexpected("get", &other)),
        }
    }

    /// Read this shard's **raw local fragment** of `table` — its
    /// members only, no gather — as the member set it denotes. The
    /// coordinator's scatter read (requires a v2+ server).
    pub fn frag_read(&mut self, table: &str) -> ClientResult<ExtendedSet> {
        match self.call(Request::FragRead {
            table: table.to_string(),
        })? {
            Response::Value { set } => Ok(set),
            other => Err(unexpected("frag_read", &other)),
        }
    }

    /// 2PC phase one: seal this session's open transaction as an
    /// in-doubt prepare under the coordinator's global id `gtxn`.
    /// Returns how many local shards staged writes. After success the
    /// session has no open transaction and a disconnect no longer
    /// aborts the staged writes (requires a v2+ server).
    pub fn prepare(&mut self, gtxn: u64) -> ClientResult<u64> {
        match self.call(Request::Prepare { gtxn })? {
            Response::Prepared {
                gtxn: echoed,
                participants,
            } if echoed == gtxn => Ok(participants),
            other => Err(unexpected("prepare", &other)),
        }
    }

    /// 2PC phase two: deliver the coordinator's durable decision for
    /// `gtxn`. Returns the local commit timestamp (0 on abort). Requires
    /// a v2+ server.
    pub fn decide(&mut self, gtxn: u64, commit: bool) -> ClientResult<u64> {
        match self.call(Request::Decide { gtxn, commit })? {
            Response::Decided { ts, .. } => Ok(ts),
            other => Err(unexpected("decide", &other)),
        }
    }

    /// Settle every in-doubt prepare on the server against the
    /// coordinator's committed set: commit the named gtxns, presume
    /// abort for the rest. Returns `(committed, aborted)` counts
    /// (requires a v2+ server).
    pub fn resolve(&mut self, committed: &[u64]) -> ClientResult<(u64, u64)> {
        match self.call(Request::Resolve {
            committed: committed.to_vec(),
        })? {
            Response::Resolved { committed, aborted } => Ok((committed, aborted)),
            other => Err(unexpected("resolve", &other)),
        }
    }

    /// Metrics exposition (Prometheus text, or JSON).
    pub fn metrics(&mut self, json: bool) -> ClientResult<String> {
        match self.call(Request::Metrics { json })? {
            Response::Report { text } => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Arm the served engine's deterministic fault plan.
    pub fn arm_faults(&mut self, schedule: FaultSchedule, kind: FaultKind) -> ClientResult<()> {
        match self.call(Request::ArmFaults { schedule, kind })? {
            Response::FaultsArmed { armed: true } => Ok(()),
            other => Err(unexpected("arm_faults", &other)),
        }
    }

    /// Disarm and clear any armed fault plan.
    pub fn clear_faults(&mut self) -> ClientResult<()> {
        match self.call(Request::ClearFaults)? {
            Response::FaultsArmed { armed: false } => Ok(()),
            other => Err(unexpected("clear_faults", &other)),
        }
    }

    /// Fetch the server's collected spans as an `xst-trace/1` JSON
    /// document (requires a v2+ server).
    pub fn trace_dump(&mut self) -> ClientResult<String> {
        match self.call(Request::TraceDump)? {
            Response::Report { text } => Ok(text),
            other => Err(unexpected("trace_dump", &other)),
        }
    }

    /// Fetch the server's structured request log as a rendered table:
    /// the slowest retained requests, or the threshold-gated slow ring
    /// when `slow` is set (requires a v2+ server).
    pub fn request_log(&mut self, slow: bool, limit: u32) -> ClientResult<String> {
        match self.call(Request::RequestLog { slow, limit })? {
            Response::Report { text } => Ok(text),
            other => Err(unexpected("request_log", &other)),
        }
    }
}

fn unexpected(what: &str, resp: &Response) -> ClientError {
    ClientError::Unexpected(format!("{what} answered with {resp:?}"))
}

pub mod coord;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::mpsc;

    /// A server that accepts connections and then never writes a byte:
    /// the worst case for an unbounded client, the base case for a
    /// bounded one. Returns the address and a shutdown sender; the
    /// accept loop exits when the sender drops.
    fn stalled_server() -> (String, mpsc::Sender<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let (tx, rx) = mpsc::channel::<()>();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            listener
                .set_nonblocking(true)
                .expect("nonblocking listener");
            loop {
                if let Err(mpsc::TryRecvError::Disconnected) = rx.try_recv() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => held.push(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        (addr, tx)
    }

    #[test]
    fn connect_with_timeout_fails_fast_on_stalled_handshake() {
        let (addr, _tx) = stalled_server();
        let err = Client::connect_with_timeout(&addr, "t", Some(Duration::from_millis(40)))
            .expect_err("handshake against a mute server must not succeed");
        assert!(err.is_timeout(), "wanted Timeout, got {err:?}");
    }

    #[test]
    fn read_timeout_surfaces_as_typed_timeout() {
        // A raw frame read against a stalled peer: the client-level
        // mapping (TimedOut/WouldBlock -> Timeout) is what we assert.
        let (addr, _tx) = stalled_server();
        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(30)))
            .expect("set timeout");
        let mut stream = stream;
        let mut buf = [0u8; 4];
        let io_err = stream.read_exact(&mut buf).expect_err("must time out");
        let err = ClientError::from(io_err);
        assert!(err.is_timeout(), "wanted Timeout, got {err:?}");
    }

    #[test]
    fn connect_without_timeout_is_unaffected_by_mapping() {
        // Refused connection (nothing listening) stays a transport
        // error, not a Timeout.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        drop(listener);
        let err = Client::connect(&addr, "t").expect_err("must fail");
        assert!(matches!(err, ClientError::Io(_)), "wanted Io, got {err:?}");
    }
}
