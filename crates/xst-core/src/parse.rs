//! Parser for the textual XST notation produced by the crate's `Display` implementations.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! value   := '∅' | set | tuple | bytes | string | word
//! set     := '{' [ member (',' member)* ] '}'
//! member  := value [ '^' value ]          -- '^∅' may be omitted
//! tuple   := ('⟨'|'<') [ value (',' value)* ] ('⟩'|'>')
//! bytes   := 'b"' hex* '"'
//! string  := '"' ... '"'
//! word    := run of symbol characters; classified as bool / int / float /
//!            symbol
//! ```
//!
//! Tuples parse into their Definition 9.1 set form `{x1^1, ..., xn^n}`, so
//! `⟨a,b⟩` and `{a^1, b^2}` denote the same value. Round-tripping is tested
//! both here and by property tests in the integration crate.

use crate::error::{XstError, XstResult};
use crate::set::{ExtendedSet, SetBuilder};
use crate::value::Value;

/// Parse a [`Value`] from the textual notation.
pub fn parse_value(input: &str) -> XstResult<Value> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

/// Parse an [`ExtendedSet`]; accepts set, tuple, or `∅` syntax.
pub fn parse_set(input: &str) -> XstResult<ExtendedSet> {
    match parse_value(input)? {
        Value::Set(s) => Ok(s),
        other => Err(XstError::Parse {
            offset: 0,
            message: format!("expected a set, found atom {other}"),
        }),
    }
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Parser {
        Parser {
            chars: input.char_indices().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or_else(|| {
                self.chars
                    .last()
                    .map(|&(o, c)| o + c.len_utf8())
                    .unwrap_or(0)
            })
    }

    fn err(&self, message: impl Into<String>) -> XstError {
        XstError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> XstResult<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn value(&mut self) -> XstResult<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some('∅') => {
                self.bump();
                Ok(Value::empty_set())
            }
            Some('{') => self.set(),
            Some('⟨') | Some('<') => self.tuple(),
            Some('"') => self.string(),
            Some('b') if self.chars.get(self.pos + 1).map(|&(_, c)| c) == Some('"') => self.bytes(),
            Some(_) => self.word(),
        }
    }

    fn set(&mut self) -> XstResult<Value> {
        self.expect_char('{')?;
        let mut b = SetBuilder::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Set(b.build()));
        }
        loop {
            let element = self.value()?;
            self.skip_ws();
            let scope = if self.peek() == Some('^') {
                self.bump();
                self.value()?
            } else {
                Value::classical_scope()
            };
            b.scoped(element, scope);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err(self.err("expected ',' or '}' in set")),
            }
        }
        Ok(Value::Set(b.build()))
    }

    fn tuple(&mut self) -> XstResult<Value> {
        let Some(open) = self.bump() else {
            return Err(self.err("unexpected end of input"));
        };
        let close = if open == '⟨' { '⟩' } else { '>' };
        let mut components = Vec::new();
        self.skip_ws();
        if self.peek() == Some(close) {
            self.bump();
            return Ok(Value::Set(ExtendedSet::tuple(components)));
        }
        loop {
            components.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(c) if c == close => break,
                _ => return Err(self.err(format!("expected ',' or '{close}' in tuple"))),
            }
        }
        Ok(Value::Set(ExtendedSet::tuple(components)))
    }

    fn string(&mut self) -> XstResult<Value> {
        self.expect_char('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    _ => return Err(self.err("bad escape in string")),
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Value::str(s))
    }

    fn bytes(&mut self) -> XstResult<Value> {
        self.expect_char('b')?;
        self.expect_char('"')?;
        let mut hex = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated byte string")),
                Some('"') => break,
                Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                Some(c) => return Err(self.err(format!("non-hex byte char '{c}'"))),
            }
        }
        if !hex.len().is_multiple_of(2) {
            return Err(self.err("odd number of hex digits"));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for pair in hex.as_bytes().chunks(2) {
            let digits = std::str::from_utf8(pair).map_err(|_| self.err("non-ascii hex pair"))?;
            let byte = u8::from_str_radix(digits, 16).map_err(|_| self.err("invalid hex pair"))?;
            bytes.push(byte);
        }
        Ok(Value::bytes(bytes))
    }

    fn is_word_char(c: char) -> bool {
        c.is_alphanumeric()
            || matches!(
                c,
                '_' | '+' | '-' | '*' | '/' | '=' | '!' | '?' | '.' | '\''
            )
    }

    fn word(&mut self) -> XstResult<Value> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if Self::is_word_char(c)) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("unexpected character"));
        }
        let word: String = self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        Ok(classify_word(&word))
    }
}

fn classify_word(word: &str) -> Value {
    match word {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    let digits = word.strip_prefix('-').unwrap_or(word);
    if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(i) = word.parse::<i64>() {
            return Value::Int(i);
        }
    }
    // Float: one '.', digit runs on both sides.
    if let Some((int_part, frac_part)) = digits.split_once('.') {
        let numeric = !int_part.is_empty()
            && !frac_part.is_empty()
            && int_part.bytes().all(|b| b.is_ascii_digit())
            && frac_part.bytes().all(|b| b.is_ascii_digit());
        if numeric {
            if let Ok(f) = word.parse::<f64>() {
                return Value::float(f);
            }
        }
    }
    Value::sym(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{xset, xtuple};

    #[test]
    fn parse_atoms() {
        assert_eq!(parse_value("7").unwrap(), Value::Int(7));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("2.5").unwrap(), Value::float(2.5));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("abc").unwrap(), Value::sym("abc"));
        assert_eq!(parse_value("-2i").unwrap(), Value::sym("-2i"));
        assert_eq!(parse_value("+").unwrap(), Value::sym("+"));
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::str("hi"));
        assert_eq!(
            parse_value("b\"6869\"").unwrap(),
            Value::bytes([0x68, 0x69])
        );
        assert_eq!(parse_value("∅").unwrap(), Value::empty_set());
    }

    #[test]
    fn parse_sets_and_scopes() {
        assert_eq!(parse_set("{a^1, b}").unwrap(), xset!["a" => 1, "b"]);
        assert_eq!(parse_set("{}").unwrap(), ExtendedSet::empty());
        assert_eq!(
            parse_set("{a^{x, y}}").unwrap(),
            xset!["a" => xset!["x", "y"].into_value()]
        );
    }

    #[test]
    fn parse_tuples_both_bracket_styles() {
        assert_eq!(parse_set("⟨a, b⟩").unwrap(), xtuple!["a", "b"]);
        assert_eq!(parse_set("<a, b>").unwrap(), xtuple!["a", "b"]);
        assert_eq!(parse_set("⟨⟩").unwrap(), ExtendedSet::empty());
        // Tuple notation is sugar for the Definition 9.1 set.
        assert_eq!(
            parse_set("⟨a, b⟩").unwrap(),
            parse_set("{a^1, b^2}").unwrap()
        );
    }

    #[test]
    fn parse_nested() {
        let got = parse_set("{⟨a, x⟩^⟨A, Z⟩, ⟨b, y⟩}").unwrap();
        let expected = xset![
            ExtendedSet::pair("a", "x").into_value() => xtuple!["A", "Z"].into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{a").is_err());
        assert!(parse_value("⟨a, ⟩junk").is_err());
        assert!(parse_value("{a^}").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("b\"123\"").is_err(), "odd hex digits");
        assert!(parse_value("b\"zz\"").is_err(), "non-hex");
        assert!(parse_set("atom").is_err(), "atoms are not sets");
        assert!(parse_value("a b").is_err(), "trailing input");
    }

    #[test]
    fn display_roundtrip() {
        let originals = [
            xset!["a" => 1, "b"],
            xtuple!["a", "b", "c"],
            xset![xtuple!["a", "x"].into_value() => xtuple!["A", "Z"].into_value()],
            ExtendedSet::empty(),
            xset![
                Value::Int(-3),
                Value::float(2.5),
                Value::str("s"),
                Value::Bool(false)
            ],
            xset![Value::bytes([1u8, 255])],
        ];
        for s in originals {
            let text = s.to_string();
            assert_eq!(parse_set(&text).unwrap(), s, "roundtrip of {text}");
        }
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(
            parse_set("  { a ^ 1 ,\n b }  ").unwrap(),
            xset!["a" => 1, "b"]
        );
    }
}
