//! # xst-core — Extended Set Theory in Rust
//!
//! A from-scratch implementation of D. L. Childs' **extended set theory**
//! (XST): sets with *scoped membership* (`x ∈_s A`) and the full operation
//! algebra built on them — re-scoping, σ-domain, σ-restriction, image,
//! cross and relative products — together with **processes** ("functions as
//! set behavior"), nested application, composition, and the
//! process-/function-space taxonomy.
//!
//! ## The model in one paragraph
//!
//! An [`ExtendedSet`] is a canonical collection of `(element, scope)`
//! members, both arbitrary nested [`Value`]s. Ordered pairs and n-tuples
//! are *defined* sets (`⟨x,y⟩ = {x^1, y^2}`), so records, relations, files
//! and indexes all have a single mathematical identity. A behavior
//! [`Process`] is a carrier set plus a scope pair `⟨σ1,σ2⟩`; applying it to
//! a set `x` computes the image `𝔇_σ2(f |_σ1 x)`. Functions, injections,
//! surjections etc. are *behavioral* classifications, recovered exactly
//! from the classical ones (see [`cst`]).
//!
//! ## Quick start
//!
//! ```
//! use xst_core::prelude::*;
//!
//! // The function f = {⟨a,x⟩, ⟨b,y⟩, ⟨c,x⟩} of the paper's Example 8.1.
//! let f = Process::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
//! assert!(f.is_function());
//!
//! // Apply the behavior to the singleton {⟨a⟩}: the image is {⟨x⟩}.
//! let input = ExtendedSet::classical([ExtendedSet::tuple(["a"]).into_value()]);
//! let image = f.apply(&input);
//! assert_eq!(image.to_string(), "{⟨x⟩}");
//!
//! // The inverse behavior is a relation, not a function.
//! assert!(!f.inverse().is_function());
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`value`] | the value universe (atoms + nested sets) |
//! | [`set`] | [`ExtendedSet`], scoped membership, canonical form |
//! | [`ops`] | the operation algebra (§3, §7, §9, §10) |
//! | [`process`] | behaviors, application, composition (§2, §4, §8, §11) |
//! | [`spaces`] | process/function space taxonomy (§5, §6, App. D/E) |
//! | [`cst`] | classical compatibility layer (§3, Thm 9.10) |
//! | [`parse`] / `display` | round-trippable textual notation |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cst;
mod display;
pub mod error;
pub mod ops;
pub mod parse;
pub mod process;
pub mod set;
pub mod spaces;
pub mod tutorial;
pub mod value;

pub use error::{XstError, XstResult};
pub use ops::image::Scope;
pub use process::{
    enumerate_interpretations, eval_interpretation, interpretation_count, Evaluated,
    Interpretation, Process,
};
pub use set::{ExtendedSet, Member, SetBuilder};
pub use value::{sym, Value};

/// Convenient glob-import surface: `use xst_core::prelude::*;`.
pub mod prelude {
    pub use crate::cst::{CstFunction, CstRelation};
    pub use crate::ops::{
        cartesian, concat, cross, difference, group_by_key, image, intersection, pair_compose,
        partition_by_scope, relative_product, rescope_by_element, rescope_by_scope, sigma_domain,
        sigma_restrict, sigma_value, tag, transitive_closure, union, value,
    };
    pub use crate::parse::{parse_set, parse_value};
    pub use crate::process::{
        enumerate_interpretations, eval_interpretation, interpretation_count, Process,
    };
    pub use crate::set::{ExtendedSet, Member, SetBuilder};
    pub use crate::spaces::{
        basic_spaces, classify, in_space, most_specific_space, refined_spaces, AssocSet, SpaceSpec,
    };
    pub use crate::value::{sym, Value};
    pub use crate::{xset, xtuple, Scope, XstError, XstResult};
}
