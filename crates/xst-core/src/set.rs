//! `ExtendedSet` — sets with *scoped membership*, the central object of XST.
//!
//! In extended set theory membership is a three-place relation: `x ∈_s A`
//! reads "x is a member of A under scope s". An [`ExtendedSet`] is therefore
//! a collection of [`Member`]s, each an `(element, scope)` pair of
//! [`Value`]s.
//!
//! # Canonical form
//!
//! Members are kept **sorted and deduplicated** under the total order of
//! `Value`. Consequences:
//!
//! * set equality is structural equality (`==`),
//! * membership tests are binary searches,
//! * union/intersection/difference are linear merges
//!   (see [`crate::ops::boolean`]).
//!
//! # Sharing
//!
//! The member vector lives behind an [`Arc`]; cloning a set is O(1) and
//! mutation copies on write. Deeply nested heterogeneous sets are therefore
//! cheap to pass around by value, which is how the rest of the crate's API is
//! shaped.

use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// One scoped membership `element ∈_scope set`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Member {
    /// The member element `x` in `x ∈_s A`.
    pub element: Value,
    /// The membership scope `s` in `x ∈_s A`. Classical membership uses
    /// `∅` ([`Value::classical_scope`]).
    pub scope: Value,
}

impl Member {
    /// Construct a scoped member.
    pub fn new(element: impl Into<Value>, scope: impl Into<Value>) -> Member {
        Member {
            element: element.into(),
            scope: scope.into(),
        }
    }

    /// Construct a classically-scoped member (`scope = ∅`).
    pub fn classical(element: impl Into<Value>) -> Member {
        Member {
            element: element.into(),
            scope: Value::classical_scope(),
        }
    }
}

/// An extended set: a canonical, shareable sequence of scoped members.
#[derive(Debug, Clone, Eq)]
pub struct ExtendedSet {
    members: Arc<Vec<Member>>,
}

impl std::hash::Hash for ExtendedSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hashes the canonical member sequence — consistent with the
        // PartialEq below (pointer equality implies member equality).
        self.members.hash(state);
    }
}

impl PartialEq for ExtendedSet {
    fn eq(&self, other: &Self) -> bool {
        // Pointer fast path: clones share the member vector, so deeply
        // nested values (where structural comparison can be exponential in
        // sharing depth) compare in O(1) along shared spines.
        Arc::ptr_eq(&self.members, &other.members) || self.members == other.members
    }
}

impl ExtendedSet {
    /// The empty set `∅`.
    pub fn empty() -> ExtendedSet {
        // A shared static empty vector would save an alloc; Arc<Vec> keeps
        // the type simple and the empty Vec does not allocate anyway.
        ExtendedSet {
            members: Arc::new(Vec::new()),
        }
    }

    /// Build from an arbitrary member list; sorts and deduplicates.
    pub fn from_members(mut members: Vec<Member>) -> ExtendedSet {
        members.sort_unstable();
        members.dedup();
        ExtendedSet {
            members: Arc::new(members),
        }
    }

    /// Build from members already in canonical (sorted, deduplicated) order.
    ///
    /// Used by the merge-based operations in [`crate::ops::boolean`] to skip
    /// re-sorting. Canonicality is checked in debug builds only.
    pub fn from_sorted_unique(members: Vec<Member>) -> ExtendedSet {
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "from_sorted_unique: input not strictly sorted"
        );
        ExtendedSet {
            members: Arc::new(members),
        }
    }

    /// Build from `(element, scope)` pairs.
    pub fn from_pairs<E, S>(pairs: impl IntoIterator<Item = (E, S)>) -> ExtendedSet
    where
        E: Into<Value>,
        S: Into<Value>,
    {
        ExtendedSet::from_members(pairs.into_iter().map(|(e, s)| Member::new(e, s)).collect())
    }

    /// Build a classical set: every element scoped by `∅`.
    pub fn classical<E: Into<Value>>(elements: impl IntoIterator<Item = E>) -> ExtendedSet {
        ExtendedSet::from_members(elements.into_iter().map(Member::classical).collect())
    }

    /// A one-member set `{element^scope}`.
    pub fn singleton(element: impl Into<Value>, scope: impl Into<Value>) -> ExtendedSet {
        ExtendedSet {
            members: Arc::new(vec![Member::new(element, scope)]),
        }
    }

    /// A one-member classical set `{element}`.
    pub fn singleton_classical(element: impl Into<Value>) -> ExtendedSet {
        ExtendedSet::singleton(element, Value::classical_scope())
    }

    /// Build the n-tuple `⟨x1, ..., xn⟩ = {x1^1, ..., xn^n}` (Definition 9.1).
    ///
    /// Positions start at 1 as in the paper. The empty tuple is `∅`.
    pub fn tuple<E: Into<Value>>(elements: impl IntoIterator<Item = E>) -> ExtendedSet {
        ExtendedSet::from_members(
            elements
                .into_iter()
                .enumerate()
                .map(|(i, e)| Member::new(e, Value::Int(i as i64 + 1)))
                .collect(),
        )
    }

    /// The ordered pair `⟨x, y⟩ = {x^1, y^2}` (Definition 7.2).
    pub fn pair(x: impl Into<Value>, y: impl Into<Value>) -> ExtendedSet {
        ExtendedSet::tuple([x.into(), y.into()])
    }

    /// Borrow the canonical member slice.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Number of scoped members (the paper's working cardinality: members
    /// with distinct scopes are distinct memberships).
    pub fn card(&self) -> usize {
        self.members.len()
    }

    /// Number of distinct member *elements*, ignoring scopes.
    pub fn distinct_elements(&self) -> usize {
        // Members are sorted by (element, scope), so equal elements are
        // adjacent.
        let mut n = 0;
        let mut prev: Option<&Value> = None;
        for m in self.members.iter() {
            if prev != Some(&m.element) {
                n += 1;
                prev = Some(&m.element);
            }
        }
        n
    }

    /// Number of distinct member *scopes*, ignoring elements.
    pub fn distinct_scopes(&self) -> usize {
        self.members
            .iter()
            .map(|m| &m.scope)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// True iff the set has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `Sing(A)`: exactly one scoped member (paper, §5).
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// Scoped membership test `element ∈_scope self`.
    pub fn contains(&self, element: &Value, scope: &Value) -> bool {
        self.members
            .binary_search_by(|m| m.element.cmp(element).then_with(|| m.scope.cmp(scope)))
            .is_ok()
    }

    /// Membership under any scope: `∃s. element ∈_s self`.
    pub fn contains_element(&self, element: &Value) -> bool {
        self.first_index_of(element).is_some()
    }

    /// Classical membership: `element ∈_∅ self`.
    pub fn contains_classical(&self, element: &Value) -> bool {
        self.contains(element, &Value::classical_scope())
    }

    /// All scopes under which `element` is a member.
    pub fn scopes_of<'a>(&'a self, element: &'a Value) -> impl Iterator<Item = &'a Value> + 'a {
        let start = self.first_index_of(element).unwrap_or(self.members.len());
        self.members[start..]
            .iter()
            .take_while(move |m| &m.element == element)
            .map(|m| &m.scope)
    }

    /// All elements that carry `scope`.
    pub fn elements_with_scope<'a>(
        &'a self,
        scope: &'a Value,
    ) -> impl Iterator<Item = &'a Value> + 'a {
        self.members
            .iter()
            .filter(move |m| &m.scope == scope)
            .map(|m| &m.element)
    }

    fn first_index_of(&self, element: &Value) -> Option<usize> {
        let idx = self
            .members
            .partition_point(|m| m.element.cmp(element) == Ordering::Less);
        (idx < self.members.len() && &self.members[idx].element == element).then_some(idx)
    }

    /// Member-wise subset: every scoped member of `self` is a member of
    /// `other`.
    pub fn is_subset(&self, other: &ExtendedSet) -> bool {
        if self.members.len() > other.members.len() {
            return false;
        }
        // Merge walk over the two sorted sequences.
        let mut oi = 0;
        let om = other.members();
        for m in self.members.iter() {
            loop {
                if oi == om.len() {
                    return false;
                }
                match om[oi].cmp(m) {
                    Ordering::Less => oi += 1,
                    Ordering::Equal => {
                        oi += 1;
                        break;
                    }
                    Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// The paper's dotted `⊆`: non-empty subset (see notes to Defs 2.1/5.1).
    pub fn is_nonempty_subset(&self, other: &ExtendedSet) -> bool {
        !self.is_empty() && self.is_subset(other)
    }

    /// Proper subset.
    pub fn is_proper_subset(&self, other: &ExtendedSet) -> bool {
        self.members.len() < other.members.len() && self.is_subset(other)
    }

    /// Insert a member, returning a new set (copy-on-write).
    pub fn with_member(&self, member: Member) -> ExtendedSet {
        if self.contains(&member.element, &member.scope) {
            return self.clone();
        }
        let mut v = self.members.as_ref().clone();
        let idx = v.partition_point(|m| m < &member);
        v.insert(idx, member);
        ExtendedSet {
            members: Arc::new(v),
        }
    }

    /// Remove a member, returning a new set (copy-on-write).
    pub fn without_member(&self, element: &Value, scope: &Value) -> ExtendedSet {
        match self
            .members
            .binary_search_by(|m| m.element.cmp(element).then_with(|| m.scope.cmp(scope)))
        {
            Ok(idx) => {
                let mut v = self.members.as_ref().clone();
                v.remove(idx);
                ExtendedSet {
                    members: Arc::new(v),
                }
            }
            Err(_) => self.clone(),
        }
    }

    /// If `self` is an n-tuple `{x1^1, ..., xn^n}` (Definition 9.1), return
    /// `n`. The empty set is the 0-tuple. This is the paper's `tup`.
    pub fn tuple_len(&self) -> Option<usize> {
        let n = self.members.len();
        if n <= u64::BITS as usize {
            // Positions fit in one word: no allocation on this hot path
            // (the analyzer probes every member element during a scan).
            let mut seen = 0u64;
            for m in self.members.iter() {
                match m.scope {
                    Value::Int(i) if i >= 1 && (i as usize) <= n => {
                        let bit = 1u64 << (i as u32 - 1);
                        if seen & bit != 0 {
                            return None; // two members at one position
                        }
                        seen |= bit;
                    }
                    _ => return None,
                }
            }
            return Some(n);
        }
        let mut seen = vec![false; n];
        for m in self.members.iter() {
            match m.scope {
                Value::Int(i) if i >= 1 && (i as usize) <= n => {
                    let slot = i as usize - 1;
                    if seen[slot] {
                        return None; // two members at one position
                    }
                    seen[slot] = true;
                }
                _ => return None,
            }
        }
        Some(n)
    }

    /// If `self` is an n-tuple, return its components in positional order.
    pub fn as_tuple(&self) -> Option<Vec<Value>> {
        let n = self.tuple_len()?;
        let mut out = vec![Value::Int(0); n];
        for m in self.members.iter() {
            if let Value::Int(i) = m.scope {
                out[i as usize - 1] = m.element.clone();
            }
        }
        Some(out)
    }

    /// Iterate over `(element, scope)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Value)> + '_ {
        self.members.iter().map(|m| (&m.element, &m.scope))
    }

    /// Wrap into a [`Value`].
    pub fn into_value(self) -> Value {
        Value::Set(self)
    }
}

impl Default for ExtendedSet {
    fn default() -> Self {
        ExtendedSet::empty()
    }
}

impl PartialOrd for ExtendedSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExtendedSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.members.iter().cmp(other.members.iter())
    }
}

impl FromIterator<Member> for ExtendedSet {
    fn from_iter<T: IntoIterator<Item = Member>>(iter: T) -> Self {
        ExtendedSet::from_members(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a ExtendedSet {
    type Item = &'a Member;
    type IntoIter = std::slice::Iter<'a, Member>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.iter()
    }
}

/// Incremental builder for [`ExtendedSet`].
///
/// Collects members unordered and canonicalizes once at [`SetBuilder::build`],
/// which is O(n log n) instead of repeated sorted insertion.
#[derive(Debug, Default)]
pub struct SetBuilder {
    members: Vec<Member>,
}

impl SetBuilder {
    /// Fresh empty builder.
    pub fn new() -> SetBuilder {
        SetBuilder::default()
    }

    /// Builder pre-sized for `n` members.
    pub fn with_capacity(n: usize) -> SetBuilder {
        SetBuilder {
            members: Vec::with_capacity(n),
        }
    }

    /// Add a scoped member `element ∈_scope`.
    pub fn scoped(&mut self, element: impl Into<Value>, scope: impl Into<Value>) -> &mut Self {
        self.members.push(Member::new(element, scope));
        self
    }

    /// Add a classical member (`scope = ∅`).
    pub fn classical_elem(&mut self, element: impl Into<Value>) -> &mut Self {
        self.members.push(Member::classical(element));
        self
    }

    /// Add a pre-built member.
    pub fn member(&mut self, m: Member) -> &mut Self {
        self.members.push(m);
        self
    }

    /// Number of members collected so far (pre-dedup).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Canonicalize into an [`ExtendedSet`].
    pub fn build(self) -> ExtendedSet {
        ExtendedSet::from_members(self.members)
    }
}

/// Construct an [`ExtendedSet`] from element expressions.
///
/// `elem => scope` adds a scoped member; a bare `elem` adds a classical
/// member (`scope = ∅`).
///
/// ```
/// use xst_core::{xset, Value};
/// let s = xset!["a" => 1, "b" => 2, "c"];
/// assert!(s.contains(&Value::sym("a"), &Value::Int(1)));
/// assert!(s.contains_classical(&Value::sym("c")));
/// ```
#[macro_export]
macro_rules! xset {
    (@acc $b:ident, ) => {};
    (@acc $b:ident, $e:expr => $s:expr, $($rest:tt)*) => {
        $b.scoped($e, $s);
        $crate::xset!(@acc $b, $($rest)*);
    };
    (@acc $b:ident, $e:expr => $s:expr) => {
        $b.scoped($e, $s);
    };
    (@acc $b:ident, $e:expr, $($rest:tt)*) => {
        $b.classical_elem($e);
        $crate::xset!(@acc $b, $($rest)*);
    };
    (@acc $b:ident, $e:expr) => {
        $b.classical_elem($e);
    };
    () => { $crate::set::ExtendedSet::empty() };
    ($($toks:tt)+) => {{
        let mut b = $crate::set::SetBuilder::new();
        $crate::xset!(@acc b, $($toks)+);
        b.build()
    }};
}

/// Construct an n-tuple `⟨x1, ..., xn⟩` (Definition 9.1).
///
/// ```
/// use xst_core::{xtuple, Value};
/// let t = xtuple!["a", "b"];
/// assert_eq!(t.tuple_len(), Some(2));
/// assert!(t.contains(&Value::sym("b"), &Value::Int(2)));
/// ```
#[macro_export]
macro_rules! xtuple {
    () => { $crate::set::ExtendedSet::empty() };
    ($($e:expr),+ $(,)?) => {
        $crate::set::ExtendedSet::tuple(vec![$($crate::value::Value::from($e)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::sym;

    #[test]
    fn canonicalization_dedups_and_sorts() {
        let s = ExtendedSet::from_pairs([("b", 2), ("a", 1), ("b", 2), ("a", 3)]);
        assert_eq!(s.card(), 3);
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members[0].0, &sym("a"));
    }

    #[test]
    fn same_element_different_scopes_are_distinct_members() {
        let s = ExtendedSet::from_pairs([("a", 1), ("a", 2)]);
        assert_eq!(s.card(), 2);
        assert_eq!(s.distinct_elements(), 1);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let s1 = ExtendedSet::from_pairs([("a", 1), ("b", 2)]);
        let s2 = ExtendedSet::from_pairs([("b", 2), ("a", 1)]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn scoped_membership() {
        let s = xset!["a" => 1, "b" => 2, "c"];
        assert!(s.contains(&sym("a"), &Value::Int(1)));
        assert!(!s.contains(&sym("a"), &Value::Int(2)));
        assert!(s.contains_element(&sym("a")));
        assert!(!s.contains_element(&sym("z")));
        assert!(s.contains_classical(&sym("c")));
        assert!(!s.contains_classical(&sym("a")));
    }

    #[test]
    fn scopes_of_lists_all_scopes() {
        let s = ExtendedSet::from_pairs([("a", 1), ("a", 7), ("b", 2)]);
        let scopes: Vec<_> = s.scopes_of(&sym("a")).cloned().collect();
        assert_eq!(scopes, vec![Value::Int(1), Value::Int(7)]);
        assert_eq!(s.scopes_of(&sym("z")).count(), 0);
    }

    #[test]
    fn elements_with_scope_filters() {
        let s = ExtendedSet::from_pairs([("a", 1), ("b", 1), ("c", 2)]);
        let els: Vec<_> = s.elements_with_scope(&Value::Int(1)).cloned().collect();
        assert_eq!(els, vec![sym("a"), sym("b")]);
    }

    #[test]
    fn subset_semantics() {
        let small = xset!["a" => 1];
        let big = xset!["a" => 1, "b" => 2];
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_proper_subset(&big));
        assert!(!big.is_proper_subset(&big.clone()));
        assert!(big.is_subset(&big.clone()));
        assert!(ExtendedSet::empty().is_subset(&small));
        assert!(!ExtendedSet::empty().is_nonempty_subset(&small));
        assert!(small.is_nonempty_subset(&big));
        // same element, wrong scope
        let wrong = xset!["a" => 9];
        assert!(!wrong.is_subset(&big));
    }

    #[test]
    fn tuples_per_definition_9_1() {
        let t = ExtendedSet::tuple([sym("a"), sym("b"), sym("c")]);
        assert_eq!(t.tuple_len(), Some(3));
        assert_eq!(t.as_tuple().unwrap(), vec![sym("a"), sym("b"), sym("c")]);
        // The empty set is the 0-tuple.
        assert_eq!(ExtendedSet::empty().tuple_len(), Some(0));
        // Gap in positions -> not a tuple.
        let gap = ExtendedSet::from_pairs([("a", 1), ("b", 3)]);
        assert_eq!(gap.tuple_len(), None);
        // Duplicate position -> not a tuple.
        let dup = ExtendedSet::from_pairs([("a", 1), ("b", 1)]);
        assert_eq!(dup.tuple_len(), None);
        // Non-integer scope -> not a tuple.
        let non_int = xset!["a" => "x"];
        assert_eq!(non_int.tuple_len(), None);
    }

    #[test]
    fn tuple_with_repeated_element_is_still_a_tuple() {
        // ⟨a,a,a,b,b⟩ from Appendix B.
        let t = ExtendedSet::tuple([sym("a"), sym("a"), sym("a"), sym("b"), sym("b")]);
        assert_eq!(t.tuple_len(), Some(5));
        assert_eq!(t.card(), 5);
    }

    #[test]
    fn ordered_pair_definition_7_2() {
        let p = ExtendedSet::pair(sym("x"), sym("y"));
        assert_eq!(p, ExtendedSet::from_pairs([("x", 1), ("y", 2)]));
    }

    #[test]
    fn with_and_without_member() {
        let s = xset!["a" => 1];
        let s2 = s.with_member(Member::new("b", 2));
        assert_eq!(s2.card(), 2);
        assert_eq!(s.card(), 1, "original untouched (COW)");
        let s3 = s2.without_member(&sym("a"), &Value::Int(1));
        assert_eq!(s3, xset!["b" => 2]);
        // Removing an absent member is a no-op.
        assert_eq!(s3.without_member(&sym("z"), &Value::Int(9)), s3);
        // Adding a present member is a no-op.
        assert_eq!(s.with_member(Member::new("a", 1)), s);
    }

    #[test]
    fn singleton_recognizer() {
        assert!(xset!["a" => 1].is_singleton());
        assert!(!xset!["a" => 1, "a" => 2].is_singleton());
        assert!(!ExtendedSet::empty().is_singleton());
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = SetBuilder::with_capacity(3);
        b.scoped("a", 1)
            .classical_elem("b")
            .member(Member::new("c", 3));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let s = b.build();
        assert_eq!(s.card(), 3);
    }

    #[test]
    fn empty_macro_forms() {
        assert!(xset!().is_empty());
        assert!(xtuple!().is_empty());
        assert_eq!(xtuple!().tuple_len(), Some(0));
    }

    #[test]
    fn nested_sets_as_members() {
        let inner = xtuple!["a", "b"];
        let outer = xset![inner.clone().into_value() => "tag"];
        assert!(outer.contains(&inner.into_value(), &sym("tag")));
        assert_eq!(outer.card(), 1);
    }

    #[test]
    fn from_iterator_of_members() {
        let s: ExtendedSet = vec![Member::new("b", 2), Member::new("a", 1)]
            .into_iter()
            .collect();
        assert_eq!(s.card(), 2);
    }

    #[test]
    fn set_order_total() {
        let a = xset!["a" => 1];
        let b = xset!["a" => 1, "b" => 2];
        let c = xset!["b" => 1];
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }
}
