//! # A guided tour of extended set theory, paper section by section
//!
//! This module contains no code — it is a narrated walkthrough of the
//! whole theory with runnable examples (every block below is a doctest).
//! Section numbers refer to the source paper, *Functions as Set Behavior*
//! (D L Childs), the author's later specification of the extended set
//! theory he introduced at VLDB 1977.
//!
//! ## §7.2 — Everything is a scoped set
//!
//! Membership is three-place: `x ∈_s A`. Ordered pairs and tuples are
//! *defined* sets, not primitives:
//!
//! ```
//! use xst_core::prelude::*;
//!
//! // ⟨x, y⟩ = {x^1, y^2}   (Definition 7.2)
//! let pair = ExtendedSet::pair("x", "y");
//! assert_eq!(pair, xset!["x" => 1, "y" => 2]);
//!
//! // Tuples may repeat elements — positions keep them distinct.
//! let t = ExtendedSet::tuple(["a", "a", "b"]);
//! assert_eq!(t.card(), 3);
//! assert_eq!(t.as_tuple().unwrap().len(), 3);
//!
//! // Classical membership is the ∅-scoped special case.
//! let s = xset!["c"];
//! assert!(s.contains_classical(&Value::sym("c")));
//! ```
//!
//! ## §7.3–7.6 — The four primitive operations
//!
//! Re-scoping rewrites *where* members live; σ-domain projects; and
//! σ-restriction selects:
//!
//! ```
//! use xst_core::prelude::*;
//!
//! // Re-scope by scope (7.3): {a^x, b^y}^{/{x↦1, y↦2}/} = {a^1, b^2}
//! let a = xset!["a" => "x", "b" => "y"];
//! let spec = xset!["x" => 1, "y" => 2];
//! assert_eq!(rescope_by_scope(&a, &spec), xset!["a" => 1, "b" => 2]);
//!
//! // σ-Domain (7.4) over pairs: 𝔇_⟨2⟩ projects second components.
//! let r = xset![
//!     ExtendedSet::pair("a", "x").into_value(),
//!     ExtendedSet::pair("b", "y").into_value()
//! ];
//! let second = sigma_domain(&r, &xtuple![2]);
//! assert_eq!(second.to_string(), "{⟨x⟩, ⟨y⟩}");
//!
//! // σ-Restriction (7.6): keep the pairs whose first component is a.
//! let picked = sigma_restrict(&r, &xtuple![1], &xset![xtuple!["a"].into_value()]);
//! assert_eq!(picked.to_string(), "{⟨a, x⟩}");
//!
//! // Image (7.1) composes them: R[A]_⟨σ1,σ2⟩ = 𝔇_σ2(R |_σ1 A).
//! let image_result = image(&r, &xset![xtuple!["a"].into_value()], &Scope::pairs());
//! assert_eq!(image_result.to_string(), "{⟨x⟩}");
//! ```
//!
//! ## §2, §8 — Processes: functions as behavior
//!
//! A process `f_(σ)` is a carrier set plus a scope pair. It is *not* a
//! set — it denotes behavior, realized by application:
//!
//! ```
//! use xst_core::prelude::*;
//!
//! let f = Process::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
//! assert!(f.is_function());                      // Definition 8.2
//!
//! // The same carrier under the flipped scope is the inverse *behavior* —
//! // and it is not a function (x has two preimages).
//! let inv = f.inverse();
//! assert!(!inv.is_function());
//! assert_eq!(
//!     inv.apply(&parse_set("{⟨x⟩}").unwrap()).to_string(),
//!     "{⟨a⟩, ⟨c⟩}"
//! );
//! ```
//!
//! ## §4 — Nested application and ambiguity
//!
//! Applying a behavior to a behavior yields a behavior (Definition 4.1),
//! and unbracketed chains are ambiguous — the number of readings is the
//! Catalan number (2, 5, 14, 42, ...):
//!
//! ```
//! use xst_core::prelude::*;
//!
//! assert_eq!(interpretation_count(3), 5);
//! assert_eq!(interpretation_count(5), 42);
//! let trees = enumerate_interpretations(2);
//! let shown: Vec<String> = trees.iter().map(|t| t.render(&["f", "g"], "x")).collect();
//! assert!(shown.contains(&"f(g(x))".to_string()));
//! assert!(shown.contains(&"(f(g))(x)".to_string()));
//! ```
//!
//! ## §9 — Multi-valued results without paradox
//!
//! One set can carry every “answer”, selected by scope (Example 9.1):
//!
//! ```
//! use xst_core::ops::{labeled_values, sigma_value};
//! use xst_core::Value;
//!
//! let roots = labeled_values([
//!     ("+", Value::Int(4)), ("-", Value::Int(-4)),
//!     ("i", Value::sym("4i")), ("-i", Value::sym("-4i")),
//! ]);
//! assert_eq!(sigma_value(&roots, &Value::sym("-")).unwrap(), Value::Int(-4));
//! ```
//!
//! ## §10–§11 — Relative product and composition
//!
//! The relative product is the join primitive; composition is one
//! relative product (Theorem 11.2), so pipelines fuse:
//!
//! ```
//! use xst_core::prelude::*;
//!
//! let f = Process::from_pairs([("a", "b")]);
//! let g = Process::from_pairs([("b", "c")]);
//! let h = Process::compose(&g, &f).unwrap();
//! let x = ExtendedSet::classical([ExtendedSet::tuple(["a"]).into_value()]);
//! assert_eq!(h.apply(&x), g.apply(&f.apply(&x)));
//! ```
//!
//! ## Appendix B — Self-application
//!
//! A set can act on itself; the paper's 5-tuple carrier generates all
//! four unary maps on `{a, b}`:
//!
//! ```
//! use xst_core::prelude::*;
//!
//! let carrier = xset![
//!     ExtendedSet::tuple(["a", "a", "a", "b", "b"]).into_value(),
//!     ExtendedSet::tuple(["b", "b", "a", "a", "b"]).into_value()
//! ];
//! let f_sigma = Process::new(carrier.clone(), Scope::pairs());
//! let f_omega = Process::new(
//!     carrier,
//!     Scope::new(xtuple![1], xtuple![1, 3, 4, 5, 2]),
//! );
//! // f[f] ≠ ∅ — self-application is expressible.
//! assert!(!f_omega.apply(&f_omega.graph).is_empty());
//! // One self-application turns the identity into the a-collapse.
//! let g2 = Process::from_pairs([("a", "a"), ("b", "a")]);
//! assert!(f_omega.apply_to_process(&f_sigma).equivalent(&g2));
//! ```
//!
//! ## §5–§6 — Where a behavior lives
//!
//! Spaces classify behaviors; the refined lattice has 29 nodes, 12 of
//! them non-empty function spaces (Appendix E):
//!
//! ```
//! use xst_core::prelude::*;
//! use xst_core::spaces::most_specific_space;
//!
//! let f = Process::from_pairs([("a", "x"), ("b", "y")]);
//! let (a, b) = (f.domain(), f.codomain());
//! let spec = most_specific_space(&f, &a, &b).unwrap();
//! assert_eq!(spec.notation(), "[-]"); // on + onto + one-to-one: a bijection
//! assert_eq!(refined_spaces().len(), 29);
//! ```
//!
//! ## §12 — Why a database cares
//!
//! Every data representation has a mathematical identity, so data
//! management *is* set processing. The storage crate makes that literal —
//! see `xst_storage` and the `backend_system` example; grouping, for
//! instance, is just scope partitioning:
//!
//! ```
//! use xst_core::prelude::*;
//!
//! let rows = xset![
//!     xtuple!["eng", "ann"].into_value(),
//!     xtuple!["eng", "cy"].into_value(),
//!     xtuple!["ops", "bo"].into_value()
//! ];
//! let groups = group_by_key(&rows, &xtuple![1]);
//! assert_eq!(groups.card(), 2); // {eng-rows}^⟨eng⟩, {ops-rows}^⟨ops⟩
//! ```
