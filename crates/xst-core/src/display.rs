//! Textual notation for XST values, matching the paper's conventions:
//!
//! * `∅` — the empty set,
//! * `⟨a, b, c⟩` — n-tuples (Definition 9.1),
//! * `{a^1, b^{x, y}, c}` — general scoped members; the classical scope
//!   `^∅` is omitted,
//! * symbols print bare, strings print quoted, bytes print as `b"…"` hex.
//!
//! The notation round-trips through [`crate::parse`].

use crate::set::ExtendedSet;
use crate::value::Value;
use std::fmt;

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                // Keep floats distinguishable from ints on re-parse.
                if x.0.fract() == 0.0 && x.0.is_finite() {
                    write!(f, "{:.1}", x.0)
                } else {
                    write!(f, "{}", x.0)
                }
            }
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => {
                write!(f, "b\"")?;
                for byte in b.iter() {
                    write!(f, "{byte:02x}")?;
                }
                write!(f, "\"")
            }
            Value::Set(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for ExtendedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        if let Some(components) = self.as_tuple() {
            write!(f, "⟨")?;
            for (i, c) in components.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            return write!(f, "⟩");
        }
        write!(f, "{{")?;
        for (i, m) in self.members().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", m.element)?;
            if !m.scope.is_empty_set() {
                write!(f, "^{}", m.scope)?;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for crate::set::Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scope.is_empty_set() {
            write!(f, "{}", self.element)
        } else {
            write!(f, "{}^{}", self.element, self.scope)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::set::{ExtendedSet, Member};
    use crate::value::Value;
    use crate::{xset, xtuple};

    #[test]
    fn empty_set_prints_as_empty_symbol() {
        assert_eq!(ExtendedSet::empty().to_string(), "∅");
        assert_eq!(Value::empty_set().to_string(), "∅");
    }

    #[test]
    fn tuples_print_in_angle_brackets() {
        assert_eq!(xtuple!["a", "b", "c"].to_string(), "⟨a, b, c⟩");
        assert_eq!(xtuple![1, 2].to_string(), "⟨1, 2⟩");
    }

    #[test]
    fn scoped_members_print_with_caret() {
        let s = xset!["a" => 1, "b"];
        // canonical order: a^1 before b
        assert_eq!(s.to_string(), "{a^1, b}");
    }

    #[test]
    fn nested_sets_print_recursively() {
        let s = xset![xtuple!["a", "b"].into_value() => "t"];
        assert_eq!(s.to_string(), "{⟨a, b⟩^t}");
    }

    #[test]
    fn atoms_print_distinctly() {
        assert_eq!(Value::sym("abc").to_string(), "abc");
        assert_eq!(Value::str("abc").to_string(), "\"abc\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::float(2.5).to_string(), "2.5");
        assert_eq!(Value::float(2.0).to_string(), "2.0");
        assert_eq!(Value::bytes([0x68u8, 0x69]).to_string(), "b\"6869\"");
    }

    #[test]
    fn member_display() {
        assert_eq!(Member::new("a", 1).to_string(), "a^1");
        assert_eq!(Member::classical("a").to_string(), "a");
    }

    #[test]
    fn scope_sets_print_in_braces() {
        let s = xset!["a" => xtuple!["A", "Z"].into_value()];
        assert_eq!(s.to_string(), "{a^⟨A, Z⟩}");
    }
}
