//! Error types for the XST core algebra.
//!
//! Hand-rolled (no `thiserror`) per the repository's dependency policy. Every
//! fallible operation in the crate returns [`XstError`]; infallible operations
//! return plain values.

use std::fmt;

/// Errors produced by the XST operation algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XstError {
    /// An operand was required to be an n-tuple (Definition 9.1: a set of the
    /// form `{x1^1, ..., xn^n}`) but was not.
    NotATuple {
        /// Rendering of the offending value.
        value: String,
    },
    /// A scope-disjoint union (used by the generalized cross product) found
    /// the same scope on both sides.
    ScopeCollision {
        /// Rendering of the colliding scope.
        scope: String,
    },
    /// A process was expected to behave as a function (Definition 8.2) but a
    /// singleton input produced a non-singleton image.
    NotAFunction {
        /// Rendering of the offending singleton input.
        input: String,
        /// Number of members in the (non-singleton) image.
        image_len: usize,
    },
    /// σ-Value (Definition 9.8) was requested but the set carries no value at
    /// that scope, or carries more than one distinct value.
    NoUniqueValue {
        /// Number of distinct candidate values found.
        candidates: usize,
    },
    /// Composition (Definition 11.1) was requested for processes whose scope
    /// specifications cannot be aligned.
    NotComposable {
        /// Human-readable explanation.
        reason: String,
    },
    /// The textual notation parser failed.
    Parse {
        /// Byte offset in the input where the failure occurred.
        offset: usize,
        /// Human-readable explanation.
        message: String,
    },
    /// Static plan analysis rejected evaluation up front (the plan provably
    /// cannot evaluate: unbound tables, proven cross-product collisions).
    Analysis {
        /// Rendered analyzer diagnostics, errors first.
        diagnostics: Vec<String>,
    },
}

impl fmt::Display for XstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XstError::NotATuple { value } => {
                write!(f, "operand is not an n-tuple (Def 9.1): {value}")
            }
            XstError::ScopeCollision { scope } => {
                write!(f, "scope collision in scope-disjoint union: {scope}")
            }
            XstError::NotAFunction { input, image_len } => write!(
                f,
                "process is not a function (Def 8.2): singleton {input} has image of \
                 cardinality {image_len}"
            ),
            XstError::NoUniqueValue { candidates } => write!(
                f,
                "σ-Value (Def 9.8) is undefined: {candidates} distinct candidate values"
            ),
            XstError::NotComposable { reason } => {
                write!(f, "processes are not composable (Def 11.1): {reason}")
            }
            XstError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            XstError::Analysis { diagnostics } => {
                write!(f, "plan rejected by static analysis")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for XstError {}

/// Convenience result alias used across the crate.
pub type XstResult<T> = Result<T, XstError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_a_tuple() {
        let e = XstError::NotATuple {
            value: "{a^2}".into(),
        };
        assert!(e.to_string().contains("n-tuple"));
        assert!(e.to_string().contains("{a^2}"));
    }

    #[test]
    fn display_parse() {
        let e = XstError::Parse {
            offset: 7,
            message: "expected '}'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("byte 7"));
        assert!(s.contains("expected '}'"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        let e = XstError::NoUniqueValue { candidates: 2 };
        takes_err(&e);
    }

    #[test]
    fn display_analysis_lists_diagnostics() {
        let e = XstError::Analysis {
            diagnostics: vec!["error[unbound-table] at `t`: table `t` is not bound".into()],
        };
        let s = e.to_string();
        assert!(s.contains("rejected by static analysis"));
        assert!(s.contains("unbound-table"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = XstError::ScopeCollision { scope: "1".into() };
        let b = XstError::ScopeCollision { scope: "1".into() };
        let c = XstError::ScopeCollision { scope: "2".into() };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
