//! Tuples-as-operands machinery (§9) and the Relative Product (§10).
//!
//! * Tuple concatenation (Definition 9.2) shifts the right operand's
//!   positions past the left operand's arity.
//! * The XST cross product `⊗` (Definition 9.3) concatenates member pairs
//!   *and their scopes*.
//! * `Tag` (Definitions 9.5/9.6) wraps each element in a singleton scoped by
//!   a label — the device by which the CST Cartesian product `×`
//!   (Definition 9.7) is recovered: `A × B = A^(1) ⊗ B^(2)`.
//! * The Relative Product (Definition 10.1) is the join primitive: members
//!   of `F` and `G` whose σ2-/ω1-projections agree are merged from their
//!   σ1-/ω2-projections.

use crate::error::{XstError, XstResult};
use crate::ops::boolean::union;
use crate::ops::image::Scope;
use crate::ops::rescope::rescope_value_by_scope;
use crate::set::{ExtendedSet, Member, SetBuilder};
use crate::value::Value;
use std::collections::HashMap;

/// Tuple concatenation `x · y` (Definition 9.2).
///
/// Errors with [`XstError::NotATuple`] unless both operands are n-tuples
/// (Definition 9.1); the empty set is the 0-tuple and is an identity.
pub fn concat(x: &ExtendedSet, y: &ExtendedSet) -> XstResult<ExtendedSet> {
    let n = x.tuple_len().ok_or_else(|| XstError::NotATuple {
        value: format!("{x}"),
    })? as i64;
    y.tuple_len().ok_or_else(|| XstError::NotATuple {
        value: format!("{y}"),
    })?;
    let mut members: Vec<Member> = x.members().to_vec();
    for m in y.members() {
        let Value::Int(i) = m.scope else {
            unreachable!("tuple scopes are ints")
        };
        members.push(Member::new(m.element.clone(), Value::Int(i + n)));
    }
    Ok(ExtendedSet::from_members(members))
}

/// Union that fails on scope collision. This is the generalized `·` used by
/// [`cross`] when an operand member is not a tuple (e.g. the tagged
/// singletons of Definition 9.7, whose scopes are labels, not positions).
pub fn scope_disjoint_union(x: &ExtendedSet, y: &ExtendedSet) -> XstResult<ExtendedSet> {
    for (_, sx) in x.iter() {
        for (_, sy) in y.iter() {
            if sx == sy {
                return Err(XstError::ScopeCollision {
                    scope: format!("{sx}"),
                });
            }
        }
    }
    Ok(union(x, y))
}

/// The member-level product `x · y`: tuple concatenation when both operands
/// are tuples, scope-disjoint union otherwise.
fn member_product(x: &Value, y: &Value) -> XstResult<ExtendedSet> {
    let xs = x.as_set_view();
    let ys = y.as_set_view();
    if xs.tuple_len().is_some() && ys.tuple_len().is_some() {
        concat(&xs, &ys)
    } else {
        scope_disjoint_union(&xs, &ys)
    }
}

/// XST cross product `A ⊗ B = {(x·y)^{(s·t)} : x ∈_s A ∧ y ∈_t B}`
/// (Definition 9.3).
pub fn cross(a: &ExtendedSet, b: &ExtendedSet) -> XstResult<ExtendedSet> {
    let mut out = SetBuilder::with_capacity(a.card() * b.card());
    for (x, s) in a.iter() {
        for (y, t) in b.iter() {
            let elem = member_product(x, y)?;
            let scope = member_product(s, t)?;
            out.scoped(Value::Set(elem), Value::Set(scope));
        }
    }
    Ok(out.build())
}

/// `Tag`: `A^(a)` (Definitions 9.5/9.6) — wrap each element `x ∈_s A` into
/// the singleton `{x^a}`, scoped `{s^a}` when `s ≠ ∅` and classically
/// otherwise.
pub fn tag(a: &ExtendedSet, label: &Value) -> ExtendedSet {
    let mut out = SetBuilder::with_capacity(a.card());
    for (x, s) in a.iter() {
        let elem = ExtendedSet::singleton(x.clone(), label.clone());
        let scope = if s.is_empty_set() {
            Value::classical_scope() // Definition 9.6
        } else {
            Value::Set(ExtendedSet::singleton(s.clone(), label.clone())) // Definition 9.5
        };
        out.scoped(Value::Set(elem), scope);
    }
    out.build()
}

/// CST Cartesian product `A × B = A^(1) ⊗ B^(2)` (Definition 9.7).
///
/// For classical operands this produces the classical set of ordered pairs
/// `{⟨x,y⟩}` (Definition 7.2), which the CST layer and Theorem 9.10 build on.
pub fn cartesian(a: &ExtendedSet, b: &ExtendedSet) -> XstResult<ExtendedSet> {
    cross(&tag(a, &Value::Int(1)), &tag(b, &Value::Int(2)))
}

/// Relative Product (Definition 10.1):
///
/// ```text
/// F /^{⟨ω1,ω2⟩}_{⟨σ1,σ2⟩} G = { z^τ : ∃x,s,y,t ( x ∈_s F ∧ y ∈_t G
///     ∧ x^{/σ2/} = y^{/ω1/} ∧ s^{/σ2/} = t^{/ω1/}
///     ∧ z = x^{/σ1/} ∪ y^{/ω2/} ∧ τ = s^{/σ1/} ∪ t^{/ω2/} ) }
/// ```
///
/// `sigma` carries `⟨σ1, σ2⟩` (the F side: keep-spec and match-spec) and
/// `omega` carries `⟨ω1, ω2⟩` (the G side: match-spec and keep-spec). The
/// eight recipes listed in §10 are reproduced in this module's tests.
pub fn relative_product(
    f: &ExtendedSet,
    sigma: &Scope,
    g: &ExtendedSet,
    omega: &Scope,
) -> ExtendedSet {
    // Hash-partition G by its (key, key-scope) projection once, then probe
    // with each F member: O(|F| + |G| + matches) member visits instead of
    // the naive pairwise O(|F|·|G|).
    let g_by_key = index_by_key(g, omega);
    let mut out = SetBuilder::new();
    for m in f.members() {
        probe_member(m, sigma, &g_by_key, &mut out);
    }
    out.build()
}

/// G hash-partitioned by its `⟨ω1⟩` projection; values are the kept `⟨ω2⟩`
/// projections. Shared between [`relative_product`] and the parallel kernel
/// (`ops::par`), which probes the same index from several threads.
pub(crate) type KeyIndex = HashMap<(ExtendedSet, ExtendedSet), Vec<(ExtendedSet, ExtendedSet)>>;

/// Build phase of the relative product: partition `G` by join key.
pub(crate) fn index_by_key(g: &ExtendedSet, omega: &Scope) -> KeyIndex {
    let mut g_by_key: KeyIndex = HashMap::with_capacity(g.card());
    for (y, t) in g.iter() {
        let key = (
            rescope_value_by_scope(y, &omega.sigma1),
            rescope_value_by_scope(t, &omega.sigma1),
        );
        let keep = (
            rescope_value_by_scope(y, &omega.sigma2),
            rescope_value_by_scope(t, &omega.sigma2),
        );
        g_by_key.entry(key).or_default().push(keep);
    }
    g_by_key
}

/// Probe phase of the relative product: emit all joined members for one
/// member of `F` into `out`.
pub(crate) fn probe_member(m: &Member, sigma: &Scope, g_by_key: &KeyIndex, out: &mut SetBuilder) {
    let (x, s) = (&m.element, &m.scope);
    let key = (
        rescope_value_by_scope(x, &sigma.sigma2),
        rescope_value_by_scope(s, &sigma.sigma2),
    );
    let Some(matches) = g_by_key.get(&key) else {
        return;
    };
    let x_keep = rescope_value_by_scope(x, &sigma.sigma1);
    let s_keep = rescope_value_by_scope(s, &sigma.sigma1);
    for (y_keep, t_keep) in matches {
        let z = union(&x_keep, y_keep);
        let tau = union(&s_keep, t_keep);
        out.scoped(Value::Set(z), Value::Set(tau));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{xset, xtuple};

    #[test]
    fn concat_per_definition_9_2() {
        // ⟨a,b,c,d⟩ · ⟨w,x,y,z⟩ = ⟨a,b,c,d,w,x,y,z⟩
        let x = xtuple!["a", "b", "c", "d"];
        let y = xtuple!["w", "x", "y", "z"];
        let z = concat(&x, &y).unwrap();
        assert_eq!(z, xtuple!["a", "b", "c", "d", "w", "x", "y", "z"]);
        assert_eq!(z.tuple_len(), Some(8)); // tup(x·y) = n + m
    }

    #[test]
    fn concat_with_empty_tuple_is_identity() {
        let x = xtuple!["a", "b"];
        assert_eq!(concat(&x, &ExtendedSet::empty()).unwrap(), x);
        assert_eq!(concat(&ExtendedSet::empty(), &x).unwrap(), x);
    }

    #[test]
    fn concat_rejects_non_tuples() {
        let x = xtuple!["a"];
        let not_tuple = xset!["a" => "weird"];
        assert!(matches!(
            concat(&x, &not_tuple),
            Err(XstError::NotATuple { .. })
        ));
        assert!(matches!(
            concat(&not_tuple, &x),
            Err(XstError::NotATuple { .. })
        ));
    }

    #[test]
    fn scope_disjoint_union_detects_collision() {
        let a = xset!["a" => 1];
        let b = xset!["b" => 1];
        assert!(matches!(
            scope_disjoint_union(&a, &b),
            Err(XstError::ScopeCollision { .. })
        ));
        let c = xset!["b" => 2];
        assert_eq!(
            scope_disjoint_union(&a, &c).unwrap(),
            xset!["a" => 1, "b" => 2]
        );
    }

    #[test]
    fn cross_product_of_tuple_sets() {
        // {⟨a⟩, ⟨b⟩} ⊗ {⟨x⟩} = {⟨a,x⟩, ⟨b,x⟩}
        let a = xset![xtuple!["a"].into_value(), xtuple!["b"].into_value()];
        let b = xset![xtuple!["x"].into_value()];
        let got = cross(&a, &b).unwrap();
        assert_eq!(
            got,
            xset![
                ExtendedSet::pair("a", "x").into_value(),
                ExtendedSet::pair("b", "x").into_value()
            ]
        );
    }

    #[test]
    fn theorem_9_4_cross_is_associative() {
        let a = xset![xtuple!["a"].into_value(), xtuple!["b"].into_value()];
        let b = xset![xtuple!["x", "y"].into_value()];
        let c = xset![xtuple![1, 2].into_value(), xtuple![3].into_value()];
        let left = cross(&cross(&a, &b).unwrap(), &c).unwrap();
        let right = cross(&a, &cross(&b, &c).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn cross_scope_concatenation() {
        // Members carrying tuple scopes: the scopes concatenate too.
        let a = xset![xtuple!["a"].into_value() => xtuple!["A"].into_value()];
        let b = xset![xtuple!["x"].into_value() => xtuple!["X"].into_value()];
        let got = cross(&a, &b).unwrap();
        assert_eq!(
            got,
            xset![ExtendedSet::pair("a", "x").into_value()
                => ExtendedSet::pair("A", "X").into_value()]
        );
    }

    #[test]
    fn tag_definitions_9_5_and_9_6() {
        // Classical member: Definition 9.6 — {x^a} with classical scope.
        let a = xset!["v"];
        let tagged = tag(&a, &Value::Int(1));
        assert_eq!(tagged, xset![xset!["v" => 1].into_value()]);
        // Scoped member: Definition 9.5 — {x^a}^{{s^a}}.
        let b = xset!["v" => "s"];
        let tagged_b = tag(&b, &Value::Int(2));
        assert_eq!(
            tagged_b,
            xset![xset!["v" => 2].into_value() => xset!["s" => 2].into_value()]
        );
    }

    #[test]
    fn cartesian_product_definition_9_7() {
        // A × B over classical sets yields classical ordered pairs.
        let a = xset!["a", "b"];
        let b = xset!["x"];
        let got = cartesian(&a, &b).unwrap();
        assert_eq!(
            got,
            xset![
                ExtendedSet::pair("a", "x").into_value(),
                ExtendedSet::pair("b", "x").into_value()
            ]
        );
    }

    #[test]
    fn cartesian_cardinality() {
        let a = xset![1, 2, 3];
        let b = xset!["x", "y"];
        assert_eq!(cartesian(&a, &b).unwrap().card(), 6);
    }

    /// §10 CST warm-up: {⟨a,b⟩} / {⟨b,c⟩} = {⟨a,c⟩} using recipe (1):
    /// σ = ⟨{1^1}, {2^1}⟩, ω = ⟨{1^1}, {2^2}⟩.
    #[test]
    fn relative_product_recipe_1_cst_compose() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("b", "c").into_value()];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        let got = relative_product(&f, &sigma, &g, &omega);
        assert_eq!(
            got,
            xset![ExtendedSet::pair("a", "c").into_value() => Value::empty_set()]
        );
    }

    /// §10 recipe (2): keep all three components — ⟨a,b⟩ / ⟨b,c⟩ = ⟨a,b,c⟩
    /// with σ = ⟨{1^1}, {2^1}⟩, ω = ⟨{1^1}, {1^2, 2^3}⟩.
    #[test]
    fn relative_product_recipe_2_keep_join_key() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("b", "c").into_value()];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![1 => 2, 2 => 3]);
        let got = relative_product(&f, &sigma, &g, &omega);
        assert_eq!(
            got,
            xset![xtuple!["a", "b", "c"].into_value() => Value::empty_set()]
        );
    }

    /// §10 recipe (4): swap the kept side — produces ⟨b, c⟩-shaped output
    /// keyed on the *first* components: σ = ⟨{2^1}, {1^1}⟩, ω = ⟨{1^1}, {2^2}⟩.
    #[test]
    fn relative_product_recipe_4_swap() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("a", "c").into_value()];
        let sigma = Scope::new(xset![2 => 1], xset![1 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        let got = relative_product(&f, &sigma, &g, &omega);
        assert_eq!(
            got,
            xset![ExtendedSet::pair("b", "c").into_value() => Value::empty_set()]
        );
    }

    /// §10 recipe (6): match on G's *second* component and emit only G's
    /// first: σ = ⟨{1^1}, {2^1}⟩, ω = ⟨{2^1}, {1^2}⟩.
    #[test]
    fn relative_product_recipe_6_reverse_key() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("c", "b").into_value()];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![2 => 1], xset![1 => 2]);
        let got = relative_product(&f, &sigma, &g, &omega);
        assert_eq!(
            got,
            xset![ExtendedSet::pair("a", "c").into_value() => Value::empty_set()]
        );
    }

    /// §10 recipe (3): keep both of F's components and re-home G's second
    /// after them — σ = ⟨{1^1, 2^2}, {1^1}⟩, ω = ⟨{1^1}, {2^3}⟩, matching
    /// on *first* components: ⟨a,b⟩ / ⟨a,c⟩ = ⟨a,b,c⟩.
    #[test]
    fn relative_product_recipe_3_keep_left_whole() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("a", "c").into_value()];
        let sigma = Scope::new(xset![1 => 1, 2 => 2], xset![1 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 3]);
        assert_eq!(
            relative_product(&f, &sigma, &g, &omega),
            xset![xtuple!["a", "b", "c"].into_value() => Value::empty_set()]
        );
    }

    /// §10 recipe (5): match on both *second* components, keep F's first
    /// and all of G re-homed — σ = ⟨{1^1}, {2^1}⟩, ω = ⟨{2^1}, {1^2, 2^3}⟩:
    /// ⟨a,b⟩ / ⟨c,b⟩ = ⟨a,c,b⟩.
    #[test]
    fn relative_product_recipe_5_match_seconds_keep_right() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("c", "b").into_value()];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![2 => 1], xset![1 => 2, 2 => 3]);
        assert_eq!(
            relative_product(&f, &sigma, &g, &omega),
            xset![xtuple!["a", "c", "b"].into_value() => Value::empty_set()]
        );
    }

    /// §10 recipe (7): a wide permuting recipe over mixed arities —
    /// σ = ⟨{2^1, 3^2, 1^3}, {2^1, 3^2}⟩, ω = ⟨{4^1, 3^2},
    /// {2^4, 4^5, 3^6, 1^7, 1^8}⟩. F's (2nd, 3rd) must equal G's
    /// (4th, 3rd); the result permutes F to ⟨b,c,a⟩ and fans G's first
    /// component into two trailing positions.
    #[test]
    fn relative_product_recipe_7_wide_permutation() {
        let f = xset![xtuple!["a", "b", "c"].into_value()];
        let g = xset![xtuple!["p", "q", "c", "b"].into_value()];
        let sigma = Scope::new(xset![2 => 1, 3 => 2, 1 => 3], xset![2 => 1, 3 => 2]);
        let omega = Scope::new(
            xset![4 => 1, 3 => 2],
            xset![2 => 4, 4 => 5, 3 => 6, 1 => 7, 1 => 8],
        );
        assert_eq!(
            relative_product(&f, &sigma, &g, &omega),
            xset![xtuple!["b", "c", "a", "q", "b", "c", "p", "p"].into_value()
                => Value::empty_set()]
        );
    }

    /// §10 recipe (8): a 3-key natural-join shape over wide tuples —
    /// σ = ⟨{1^1,…,5^5}, {1^1, 2^2, 3^3}⟩, ω = ⟨{1^1, 2^2, 3^3},
    /// {4^6, 5^7, 6^8}⟩: F's first three components match G's, F is kept
    /// whole, and G contributes its last three at positions 6–8.
    #[test]
    fn relative_product_recipe_8_three_key_join() {
        let f = xset![xtuple!["a", "b", "c", "d", "e"].into_value()];
        let g = xset![
            xtuple!["a", "b", "c", "x", "y", "z"].into_value(),
            xtuple!["a", "b", "WRONG", "u", "v", "w"].into_value()
        ];
        let sigma = Scope::new(
            xset![1 => 1, 2 => 2, 3 => 3, 4 => 4, 5 => 5],
            xset![1 => 1, 2 => 2, 3 => 3],
        );
        let omega = Scope::new(xset![1 => 1, 2 => 2, 3 => 3], xset![4 => 6, 5 => 7, 6 => 8]);
        assert_eq!(
            relative_product(&f, &sigma, &g, &omega),
            xset![xtuple!["a", "b", "c", "d", "e", "x", "y", "z"].into_value()
                => Value::empty_set()]
        );
    }

    #[test]
    fn relative_product_no_match_is_empty() {
        let f = xset![ExtendedSet::pair("a", "b").into_value()];
        let g = xset![ExtendedSet::pair("z", "c").into_value()];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        assert!(relative_product(&f, &sigma, &g, &omega).is_empty());
    }

    #[test]
    fn relative_product_is_a_join() {
        // Multi-row join: two F rows match one G row each.
        let f = xset![
            ExtendedSet::pair("a", "k1").into_value(),
            ExtendedSet::pair("b", "k2").into_value(),
            ExtendedSet::pair("c", "k3").into_value()
        ];
        let g = xset![
            ExtendedSet::pair("k1", "x").into_value(),
            ExtendedSet::pair("k2", "y").into_value()
        ];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        let got = relative_product(&f, &sigma, &g, &omega);
        assert_eq!(
            got,
            xset![
                ExtendedSet::pair("a", "x").into_value() => Value::empty_set(),
                ExtendedSet::pair("b", "y").into_value() => Value::empty_set()
            ]
        );
    }

    #[test]
    fn relative_product_matches_scopes_too() {
        // Same elements, different member scopes on the key side: no match
        // unless the scope projections agree as well.
        let f = xset![ExtendedSet::pair("a", "b").into_value() => xtuple!["S", "T"].into_value()];
        let g = xset![ExtendedSet::pair("b", "c").into_value() => xtuple!["U", "V"].into_value()];
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        // Key scopes: s^{/σ2/} = {T^1}, t^{/ω1/} = {U^1} — differ, no match.
        assert!(relative_product(&f, &sigma, &g, &omega).is_empty());
        // Align the scopes and the match appears.
        let g2 = xset![ExtendedSet::pair("b", "c").into_value() => xtuple!["T", "V"].into_value()];
        let got = relative_product(&f, &sigma, &g2, &omega);
        assert_eq!(got.card(), 1);
    }
}
