//! Data-parallel kernels for the hot XST operators.
//!
//! Every kernel here follows the same shape: **partition** the dominant
//! operand's member slice into near-equal chunks, run the ordinary
//! sequential kernel on each chunk in a scoped thread, then **merge** the
//! per-chunk results in a way that provably reconstructs the sequential
//! answer:
//!
//! * restriction filters a canonical (sorted, deduplicated) member list, so
//!   per-chunk survivors concatenate back into a canonical list —
//!   [`ExtendedSet::from_sorted_unique`] is exact;
//! * union/intersection partition both operands by *member ranges* at chunk
//!   boundaries drawn from the larger side, so per-range merges are
//!   disjoint and ordered and again concatenate exactly;
//! * image and relative product are defined member-wise over `R`/`F`, and
//!   canonicalization commutes with union, so chunk results combine with
//!   [`union_all`].
//!
//! Each kernel equals its sequential oracle on every input — see
//! `tests/differential.rs`, which drives them at 1, 2, 4 and 8 threads
//! against random sets.

use crate::ops::boolean::{intersection, union, union_all};
use crate::ops::image::Scope;
use crate::ops::product::{index_by_key, probe_member};
use crate::ops::rescope::rescope_value_by_scope;
use crate::ops::restrict::restriction_witnesses;
use crate::set::{ExtendedSet, Member, SetBuilder};
use crate::value::Value;
use std::sync::{Arc, OnceLock};
use xst_obs::{registry, Counter};

/// Times a kernel actually fanned out to threads (threshold met).
fn par_fanouts_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::CORE_PAR_FANOUTS_TOTAL,
            "Parallel kernel invocations that crossed the threshold and fanned out to threads.",
        )
    })
}

/// Total worker chunks dispatched across all fanned-out kernel calls.
fn par_chunks_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::CORE_PAR_CHUNKS_TOTAL,
            "Worker chunks dispatched by fanned-out parallel kernels.",
        )
    })
}

/// Record one fan-out of `workers` chunks on the kernel's span +
/// counters, and charge it to the ambient per-request cost scope (the
/// fan-out decision happens on the request thread, so the charge lands
/// on the right request even though chunk work runs on workers).
fn note_fanout(span: &mut xst_obs::SpanGuard, workers: usize) {
    span.attr("chunks", workers);
    par_fanouts_total().inc();
    par_chunks_total().add(workers as u64);
    xst_obs::cost::add_par_fanout();
}

/// Members below this count run sequentially by default: thread spawn and
/// merge overhead beats the win on small sets.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// Degree-of-parallelism policy threaded from the engine/query layers down
/// to the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker thread count; `1` means always sequential.
    pub threads: usize,
    /// Minimum dominant-operand cardinality before threads are used.
    pub threshold: usize,
}

impl Parallelism {
    /// Use exactly `threads` workers with the default threshold.
    pub fn new(threads: usize) -> Parallelism {
        Parallelism {
            threads: threads.max(1),
            threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Never parallelize.
    pub fn sequential() -> Parallelism {
        Parallelism::new(1)
    }

    /// Use every core the OS reports.
    pub fn available() -> Parallelism {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Replace the cardinality threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Parallelism {
        self.threshold = threshold;
        self
    }

    /// Should an operator over `card` members fan out?
    pub fn should_parallelize(&self, card: usize) -> bool {
        self.threads > 1 && card >= self.threshold
    }

    /// Worker count for `len` items: never more threads than items.
    fn workers_for(&self, len: usize) -> usize {
        self.threads.min(len.max(1))
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::sequential()
    }
}

/// Split `members` into `workers` near-equal contiguous chunks.
fn chunk_slices(members: &[Member], workers: usize) -> Vec<&[Member]> {
    let size = members.len().div_ceil(workers);
    members.chunks(size.max(1)).collect()
}

/// Fan `chunks` out to scoped threads running `work`, preserving chunk
/// order in the returned results.
fn map_chunks<T, F>(chunks: Vec<&[Member]>, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&[Member]) -> T + Sync,
{
    if chunks.len() <= 1 {
        return chunks.into_iter().map(&work).collect();
    }
    let work = &work;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move |_| work(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// `R |_σ A` — parallel σ-restriction. The witness structure is built once
/// (it only depends on `σ` and `A`, both typically small) and shared
/// read-only across workers filtering disjoint chunks of `R`.
pub fn par_sigma_restrict(
    r: &ExtendedSet,
    sigma: &ExtendedSet,
    a: &ExtendedSet,
    par: &Parallelism,
) -> ExtendedSet {
    let mut span = xst_obs::span!("par.sigma_restrict", card = r.card(), threads = par.threads);
    if !par.should_parallelize(r.card()) {
        return crate::ops::restrict::sigma_restrict(r, sigma, a);
    }
    let witnesses = restriction_witnesses(sigma, a);
    if witnesses.is_empty() {
        return ExtendedSet::empty();
    }
    let workers = par.workers_for(r.card());
    note_fanout(&mut span, workers);
    let kept = map_chunks(chunk_slices(r.members(), workers), |chunk| {
        chunk
            .iter()
            .filter(|m| witnesses.matches(m))
            .cloned()
            .collect::<Vec<Member>>()
    });
    // Filtering a canonical list chunk-wise keeps it sorted and unique.
    ExtendedSet::from_sorted_unique(kept.concat())
}

/// `R[A]_⟨σ1,σ2⟩` — parallel fused image. Workers project their chunk of
/// `R` into a local canonical set; chunk images merge by union since the
/// image is a member-wise definition and canonicalization commutes with
/// union.
pub fn par_image(
    r: &ExtendedSet,
    a: &ExtendedSet,
    scope: &Scope,
    par: &Parallelism,
) -> ExtendedSet {
    let mut span = xst_obs::span!("par.image", card = r.card(), threads = par.threads);
    if !par.should_parallelize(r.card()) {
        return crate::ops::image::image(r, a, scope);
    }
    let witnesses = restriction_witnesses(&scope.sigma1, a);
    if witnesses.is_empty() {
        return ExtendedSet::empty();
    }
    let workers = par.workers_for(r.card());
    note_fanout(&mut span, workers);
    let parts = map_chunks(chunk_slices(r.members(), workers), |chunk| {
        let mut b = SetBuilder::new();
        for m in chunk {
            if !witnesses.matches(m) {
                continue;
            }
            let x = rescope_value_by_scope(&m.element, &scope.sigma2);
            if x.is_empty() {
                continue;
            }
            let s = rescope_value_by_scope(&m.scope, &scope.sigma2);
            b.scoped(Value::Set(x), Value::Set(s));
        }
        b.build()
    });
    union_all(parts.iter())
}

/// Relative product `F /ω_σ G` — parallel probe phase. `G` is indexed by
/// join key once (sequentially — building a shared hash map dominates far
/// less than probing), then workers probe disjoint chunks of `F`.
pub fn par_relative_product(
    f: &ExtendedSet,
    sigma: &Scope,
    g: &ExtendedSet,
    omega: &Scope,
    par: &Parallelism,
) -> ExtendedSet {
    let mut span = xst_obs::span!(
        "par.relative_product",
        card = f.card(),
        threads = par.threads
    );
    if !par.should_parallelize(f.card()) {
        return crate::ops::product::relative_product(f, sigma, g, omega);
    }
    let g_by_key = index_by_key(g, omega);
    let workers = par.workers_for(f.card());
    note_fanout(&mut span, workers);
    let parts = map_chunks(chunk_slices(f.members(), workers), |chunk| {
        let mut out = SetBuilder::new();
        for m in chunk {
            probe_member(m, sigma, &g_by_key, &mut out);
        }
        out.build()
    });
    union_all(parts.iter())
}

/// `A ∪ B` — parallel union by member-range partitioning.
///
/// Boundary members drawn from the larger operand split *both* canonical
/// member lists into aligned, disjoint key ranges; each worker merges one
/// range pair and the ordered range results concatenate exactly.
pub fn par_union(a: &ExtendedSet, b: &ExtendedSet, par: &Parallelism) -> ExtendedSet {
    let mut span = xst_obs::span!(
        "par.union",
        card = a.card() + b.card(),
        threads = par.threads
    );
    if !par.should_parallelize(a.card() + b.card()) {
        return union(a, b);
    }
    note_fanout(&mut span, par.workers_for(a.card().max(b.card())));
    merge_by_ranges(a, b, par, merge_union_range)
}

/// `A ∩ B` — parallel intersection by member-range partitioning (same
/// scheme as [`par_union`]).
pub fn par_intersection(a: &ExtendedSet, b: &ExtendedSet, par: &Parallelism) -> ExtendedSet {
    let mut span = xst_obs::span!(
        "par.intersection",
        card = a.card() + b.card(),
        threads = par.threads
    );
    if !par.should_parallelize(a.card() + b.card()) {
        return intersection(a, b);
    }
    note_fanout(&mut span, par.workers_for(a.card().max(b.card())));
    merge_by_ranges(a, b, par, merge_intersection_range)
}

/// Partition both operands at boundaries drawn from the larger side, run
/// `merge_range` per aligned range pair, concatenate in range order.
fn merge_by_ranges(
    a: &ExtendedSet,
    b: &ExtendedSet,
    par: &Parallelism,
    merge_range: fn(&[Member], &[Member], &mut Vec<Member>),
) -> ExtendedSet {
    let (lead, other) = if a.card() >= b.card() { (a, b) } else { (b, a) };
    let workers = par.workers_for(lead.card());
    let lead_chunks = chunk_slices(lead.members(), workers);
    // Align `other` to the lead chunks: cut it at each chunk's first member.
    let mut other_rest = other.members();
    let mut pairs: Vec<(&[Member], &[Member])> = Vec::with_capacity(lead_chunks.len());
    for (i, chunk) in lead_chunks.iter().enumerate() {
        let other_part = if i + 1 < lead_chunks.len() {
            let bound = &lead_chunks[i + 1][0];
            let cut = other_rest.partition_point(|m| m < bound);
            let (head, tail) = other_rest.split_at(cut);
            other_rest = tail;
            head
        } else {
            std::mem::take(&mut other_rest)
        };
        pairs.push((chunk, other_part));
    }
    // `merge_range` is symmetric, so lead/other order does not matter.
    let parts: Vec<Vec<Member>> = if pairs.len() <= 1 {
        pairs
            .into_iter()
            .map(|(x, y)| {
                let mut out = Vec::new();
                merge_range(x, y, &mut out);
                out
            })
            .collect()
    } else {
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(x, y)| {
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        merge_range(x, y, &mut out);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
    };
    ExtendedSet::from_sorted_unique(parts.concat())
}

/// Ordered union merge of two sorted unique ranges.
fn merge_union_range(x: &[Member], y: &[Member], out: &mut Vec<Member>) {
    let (mut i, mut j) = (0, 0);
    out.reserve(x.len() + y.len());
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => {
                out.push(x[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(y[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(x[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&x[i..]);
    out.extend_from_slice(&y[j..]);
}

/// Ordered intersection merge of two sorted unique ranges.
fn merge_intersection_range(x: &[Member], y: &[Member], out: &mut Vec<Member>) {
    let (mut i, mut j) = (0, 0);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::image::image;
    use crate::ops::product::relative_product;
    use crate::ops::restrict::sigma_restrict;
    use crate::set::ExtendedSet;
    use crate::value::Value;
    use crate::xset;

    fn pair_relation(n: i64) -> ExtendedSet {
        ExtendedSet::classical(
            (0..n).map(|i| ExtendedSet::pair(Value::Int(i % 97), Value::Int(i)).into_value()),
        )
    }

    fn forced(threads: usize) -> Parallelism {
        Parallelism::new(threads).with_threshold(1)
    }

    #[test]
    fn par_restrict_matches_sequential_on_forced_threads() {
        let r = pair_relation(500);
        let sigma = ExtendedSet::tuple([1i64]);
        let a = xset![ExtendedSet::tuple([Value::Int(13)]).into_value()];
        let expect = sigma_restrict(&r, &sigma, &a);
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_sigma_restrict(&r, &sigma, &a, &forced(threads)), expect);
        }
    }

    #[test]
    fn par_image_matches_sequential_on_forced_threads() {
        let r = pair_relation(500);
        let a = xset![ExtendedSet::tuple([Value::Int(13)]).into_value()];
        let scope = Scope::pairs();
        let expect = image(&r, &a, &scope);
        assert!(!expect.is_empty());
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_image(&r, &a, &scope, &forced(threads)), expect);
        }
    }

    #[test]
    fn par_relative_product_matches_sequential_on_forced_threads() {
        let f = pair_relation(300);
        let g = pair_relation(200);
        let sigma = Scope::new(xset![1 => 1], xset![2 => 1]);
        let omega = Scope::new(xset![1 => 1], xset![2 => 2]);
        let expect = relative_product(&f, &sigma, &g, &omega);
        assert!(!expect.is_empty());
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                par_relative_product(&f, &sigma, &g, &omega, &forced(threads)),
                expect
            );
        }
    }

    #[test]
    fn par_boolean_matches_sequential_on_forced_threads() {
        let a = ExtendedSet::classical((0i64..400).map(Value::Int));
        let b = ExtendedSet::classical((200i64..600).map(Value::Int));
        let expect_u = union(&a, &b);
        let expect_i = intersection(&a, &b);
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_union(&a, &b, &forced(threads)), expect_u);
            assert_eq!(par_intersection(&a, &b, &forced(threads)), expect_i);
            // Asymmetric cardinalities exercise the lead/other swap.
            assert_eq!(par_union(&b, &a, &forced(threads)), expect_u);
            assert_eq!(par_intersection(&b, &a, &forced(threads)), expect_i);
        }
    }

    #[test]
    fn below_threshold_stays_sequential_and_exact() {
        let a = ExtendedSet::classical((0i64..10).map(Value::Int));
        let b = ExtendedSet::classical((5i64..15).map(Value::Int));
        let par = Parallelism::new(8); // default threshold ≫ 20
        assert!(!par.should_parallelize(a.card() + b.card()));
        assert_eq!(par_union(&a, &b, &par), union(&a, &b));
    }

    #[test]
    fn parallelism_policy_basics() {
        assert_eq!(Parallelism::new(0).threads, 1);
        assert!(Parallelism::default() == Parallelism::sequential());
        assert!(Parallelism::available().threads >= 1);
        let p = Parallelism::new(4).with_threshold(100);
        assert!(!p.should_parallelize(99));
        assert!(p.should_parallelize(100));
        assert_eq!(p.workers_for(2), 2);
        assert_eq!(p.workers_for(0), 1);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = ExtendedSet::empty();
        let a = ExtendedSet::classical((0i64..50).map(Value::Int));
        let par = forced(4);
        assert_eq!(par_union(&empty, &a, &par), a);
        assert!(par_intersection(&empty, &a, &par).is_empty());
        assert!(par_sigma_restrict(&empty, &ExtendedSet::tuple([1i64]), &a, &par).is_empty());
        assert!(par_image(&a, &empty, &Scope::pairs(), &par).is_empty());
    }
}
