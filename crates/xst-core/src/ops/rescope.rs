//! Re-scoping — the paper's two scope-rewriting primitives (§7).
//!
//! A re-scope specification `σ` is itself an extended set, read as a mapping
//! between scopes:
//!
//! * **Re-scope by scope** (Definition 7.3):
//!   `A^{/σ/} = { x^w : ∃s (x ∈_s A ∧ s ∈_w σ) }` — a member's *old scope*
//!   `s` is looked up among σ's **elements**; the matching σ-member's scope
//!   `w` becomes the new scope. Members whose scope does not occur in σ are
//!   dropped; a scope occurring several times in σ fans the member out.
//!
//! * **Re-scope by element** (Definition 7.5):
//!   `A^{\σ\} = { x^w : ∃s (x ∈_s A ∧ w ∈_s σ) }` — the inverse direction:
//!   a member's old scope `s` is looked up among σ's **scopes**, and the
//!   matching σ-member's element `w` becomes the new scope.
//!
//! The paper's example for 7.3: `{a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} =
//! {a^1, b^2, c^3}`; and for 7.5: `{a^1, b^2, c^3}^{\{w^1, v^2, t^3}\} =
//! {a^w, b^v, c^t}`.

use crate::set::{ExtendedSet, SetBuilder};
use crate::value::Value;

/// Re-scope by scope, `A^{/σ/}` (Definition 7.3).
pub fn rescope_by_scope(a: &ExtendedSet, sigma: &ExtendedSet) -> ExtendedSet {
    // Fast path: σ maps every member scope of `a` to exactly itself (the
    // identity specs used pervasively by selections and join keep-sides) —
    // the result is `a`, shared, with no allocation or re-sort.
    if sigma_is_identity_on(a, sigma) {
        return a.clone();
    }
    let mut b = SetBuilder::new();
    for m in a.members() {
        // Find σ-members whose *element* equals this member's scope; their
        // scopes are the new scopes. `scopes_of` is a binary search + scan.
        for w in sigma.scopes_of(&m.scope) {
            b.scoped(m.element.clone(), w.clone());
        }
    }
    b.build()
}

/// Does σ map every scope occurring in `a` to exactly itself (and nothing
/// else)? `∅` trivially qualifies only when `a` is empty.
fn sigma_is_identity_on(a: &ExtendedSet, sigma: &ExtendedSet) -> bool {
    a.members().iter().all(|m| {
        let mut targets = sigma.scopes_of(&m.scope);
        targets.next() == Some(&m.scope) && targets.next().is_none()
    })
}

/// Re-scope by element, `A^{\σ\}` (Definition 7.5).
pub fn rescope_by_element(a: &ExtendedSet, sigma: &ExtendedSet) -> ExtendedSet {
    let mut b = SetBuilder::new();
    for m in a.members() {
        // Find σ-members whose *scope* equals this member's scope; their
        // elements are the new scopes.
        for (w, s) in sigma.iter() {
            if s == &m.scope {
                b.scoped(m.element.clone(), w.clone());
            }
        }
    }
    b.build()
}

/// Re-scope by scope lifted to a [`Value`]: atoms re-scope to `∅`
/// (see [`Value::as_set_view`]).
pub fn rescope_value_by_scope(v: &Value, sigma: &ExtendedSet) -> ExtendedSet {
    match v {
        Value::Set(s) => rescope_by_scope(s, sigma),
        _ => ExtendedSet::empty(),
    }
}

/// Re-scope by element lifted to a [`Value`]: atoms re-scope to `∅`.
pub fn rescope_value_by_element(v: &Value, sigma: &ExtendedSet) -> ExtendedSet {
    match v {
        Value::Set(s) => rescope_by_element(s, sigma),
        _ => ExtendedSet::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::sym;
    use crate::{xset, xtuple};

    #[test]
    fn paper_example_7_3() {
        // {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}
        let a = xset!["a" => "x", "b" => "y", "c" => "z"];
        let sigma = xset!["x" => 1, "y" => 2, "z" => 3];
        assert_eq!(
            rescope_by_scope(&a, &sigma),
            xset!["a" => 1, "b" => 2, "c" => 3]
        );
    }

    #[test]
    fn paper_example_7_5() {
        // {a^1, b^2, c^3}^{\{w^1, v^2, t^3}\} = {a^w, b^v, c^t}
        let a = xset!["a" => 1, "b" => 2, "c" => 3];
        let sigma = xset!["w" => 1, "v" => 2, "t" => 3];
        assert_eq!(
            rescope_by_element(&a, &sigma),
            xset!["a" => "w", "b" => "v", "c" => "t"]
        );
    }

    #[test]
    fn rescope_by_scope_drops_unmapped_members() {
        let a = xset!["a" => 1, "b" => 2];
        let sigma = xset![1 => 10]; // only old scope 1 is mapped
        assert_eq!(rescope_by_scope(&a, &sigma), xset!["a" => 10]);
    }

    #[test]
    fn rescope_by_scope_fans_out_on_duplicate_mapping() {
        let a = xset!["a" => 1];
        // old scope 1 maps to both 10 and 20
        let sigma = xset![1 => 10, 1 => 20];
        assert_eq!(rescope_by_scope(&a, &sigma), xset!["a" => 10, "a" => 20]);
    }

    #[test]
    fn tuple_permutation_via_rescope() {
        // ω2 = ⟨1,3,4,5,2⟩ permutes ⟨a,a,a,b,b⟩ into ⟨a,a,b,b,a⟩
        // (Appendix B derivation c).
        let t = xtuple!["a", "a", "a", "b", "b"];
        let omega2 = xtuple![1, 3, 4, 5, 2];
        assert_eq!(
            rescope_by_scope(&t, &omega2),
            xtuple!["a", "a", "b", "b", "a"]
        );
    }

    #[test]
    fn rescope_of_empty_is_empty() {
        let sigma = xset![1 => 2];
        assert!(rescope_by_scope(&ExtendedSet::empty(), &sigma).is_empty());
        assert!(rescope_by_element(&ExtendedSet::empty(), &sigma).is_empty());
    }

    #[test]
    fn rescope_with_empty_sigma_is_empty() {
        let a = xset!["a" => 1];
        assert!(rescope_by_scope(&a, &ExtendedSet::empty()).is_empty());
        assert!(rescope_by_element(&a, &ExtendedSet::empty()).is_empty());
    }

    #[test]
    fn value_lift_treats_atoms_as_memberless() {
        let sigma = xset![1 => 2];
        assert!(rescope_value_by_scope(&sym("q"), &sigma).is_empty());
        assert!(rescope_value_by_element(&sym("q"), &sigma).is_empty());
        let v = Value::Set(xset!["a" => 1]);
        assert_eq!(rescope_value_by_scope(&v, &sigma), xset!["a" => 2]);
    }

    #[test]
    fn rescope_directions_are_inverse_on_bijective_sigma() {
        let a = xset!["a" => 1, "b" => 2, "c" => 3];
        let sigma = xset!["x" => 1, "y" => 2, "z" => 3];
        // by-element then by-scope round-trips when σ is a bijection
        let forward = rescope_by_element(&a, &sigma); // scopes 1,2,3 -> x,y,z
        let back = rescope_by_scope(&forward, &sigma); // x,y,z -> 1,2,3
        assert_eq!(back, a);
    }

    #[test]
    fn rescope_can_merge_members() {
        // Two members collapse onto one scope; canonical form dedups the
        // resulting identical memberships.
        let a = xset!["a" => 1, "a" => 2];
        let sigma = xset![1 => 9, 2 => 9];
        assert_eq!(rescope_by_scope(&a, &sigma), xset!["a" => 9]);
    }
}
