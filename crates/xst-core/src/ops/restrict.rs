//! σ-Restriction (Definition 7.6) — the selection primitive of XST.
//!
//! ```text
//! R |_σ A = { z^w : z ∈_w R ∧ ∃a,s ( a ∈_s A ∧ a^{\σ\} ⊆ z ∧ s^{\σ\} ⊆ w ) }
//! ```
//!
//! A member `z` of `R` survives when some member `a` of `A`, re-scoped *by
//! element* through `σ`, is found inside `z` (and likewise its membership
//! scope inside `z`'s scope). With `σ = ⟨1⟩` over pairs this is the CST
//! restriction `R | A`; general `σ` selects on any combination of positions.
//!
//! # Subset reading (interpretive decision)
//!
//! The paper overloads `⊆`, noting at Definitions 2.1/5.1 that it often
//! means *non-empty* subset. Reading both conditions of 7.6 as plain subset
//! makes every memberless witness vacuously match all of `R` (so nothing
//! could ever be a function — contradicting Example 8.1); reading both as
//! non-empty subset makes classically-scoped members (`s = ∅`) match nothing
//! (contradicting Appendix B's derivations). The unique reading under which
//! *all* of the paper's worked examples hold is:
//!
//! * the **element** condition `a^{\σ\} ⊆ z` requires a **non-empty**
//!   subset — a witness must actually pin part of `z`;
//! * the **scope** condition `s^{\σ\} ⊆ w` is a plain subset — the empty
//!   constraint (classical scope) is satisfiable by any `w`.
//!
//! This is validated end-to-end by the Appendix A/B reproduction tests.

use crate::ops::rescope::rescope_value_by_element;
use crate::set::{ExtendedSet, Member, SetBuilder};

/// `R |_σ A` (Definition 7.6).
pub fn sigma_restrict(r: &ExtendedSet, sigma: &ExtendedSet, a: &ExtendedSet) -> ExtendedSet {
    let witnesses = restriction_witnesses(sigma, a);
    let mut b = SetBuilder::with_capacity(r.card());
    for m in r.members() {
        if witnesses.matches(m) {
            b.member(m.clone());
        }
    }
    b.build()
}

/// Pre-computed `(a^{\σ\}, s^{\σ\})` witness pairs for a restriction,
/// partitioned for matching speed; reused by the fused image operator.
///
/// The overwhelmingly common witness shape — a single re-scoped member with
/// no scope constraint (every equality selection) — is kept in one merged
/// canonical set so a candidate `z` is tested with a single linear
/// intersection walk instead of one subset check per witness. Everything
/// else falls back to the general subset test.
pub(crate) struct WitnessSet {
    /// Union of all single-member, unconstrained-scope witnesses.
    singletons: ExtendedSet,
    /// General witnesses: `(a^{\σ\}, s^{\σ\})` pairs.
    general: Vec<(ExtendedSet, ExtendedSet)>,
}

impl WitnessSet {
    /// No witness can match anything.
    pub(crate) fn is_empty(&self) -> bool {
        self.singletons.is_empty() && self.general.is_empty()
    }

    /// Does one member of `R` satisfy the restriction condition for any
    /// witness?
    pub(crate) fn matches(&self, m: &Member) -> bool {
        let z = m.element.as_set_view();
        if !self.singletons.is_empty() {
            // Size-adaptive probe: when the witness set is much larger than
            // the candidate, binary-search each candidate member instead of
            // merge-walking the whole witness set.
            let hit = if self.singletons.card() > 8 * z.card() {
                z.members()
                    .iter()
                    .any(|zm| self.singletons.contains(&zm.element, &zm.scope))
            } else {
                !crate::ops::boolean::disjoint(&z, &self.singletons)
            };
            if hit {
                return true;
            }
        }
        if self.general.is_empty() {
            return false;
        }
        let w = m.scope.as_set_view();
        self.general
            .iter()
            .any(|(a_r, s_r)| a_r.is_subset(&z) && s_r.is_subset(&w))
    }
}

/// Paper-literal evaluation of `R |_σ A`: every witness is subset-tested
/// against every member, exactly as Definition 7.6 quantifies.
///
/// This is O(|R|·|A|) and exists as the **ablation baseline** for
/// experiment E7 (EXPERIMENTS.md); [`sigma_restrict`] computes the same
/// set through the partitioned witness structure. The two are asserted
/// equal by property tests and by the experiment harness on every run.
pub fn sigma_restrict_naive(r: &ExtendedSet, sigma: &ExtendedSet, a: &ExtendedSet) -> ExtendedSet {
    let witnesses: Vec<(ExtendedSet, ExtendedSet)> = a
        .members()
        .iter()
        .filter_map(|am| {
            let a_r = rescope_value_by_element(&am.element, sigma);
            if a_r.is_empty() {
                None
            } else {
                Some((a_r, rescope_value_by_element(&am.scope, sigma)))
            }
        })
        .collect();
    let mut b = SetBuilder::with_capacity(r.card());
    for m in r.members() {
        let z = m.element.as_set_view();
        let w = m.scope.as_set_view();
        if witnesses
            .iter()
            .any(|(a_r, s_r)| a_r.is_subset(&z) && s_r.is_subset(&w))
        {
            b.member(m.clone());
        }
    }
    b.build()
}

/// Build the witness structure for `R |_σ A`.
pub(crate) fn restriction_witnesses(sigma: &ExtendedSet, a: &ExtendedSet) -> WitnessSet {
    let mut singleton_members = Vec::new();
    let mut general = Vec::new();
    for am in a.members() {
        let a_r = rescope_value_by_element(&am.element, sigma);
        if a_r.is_empty() {
            // Memberless witness: can never non-vacuously pin a member of R
            // (see module docs).
            continue;
        }
        let s_r = rescope_value_by_element(&am.scope, sigma);
        if a_r.is_singleton() && s_r.is_empty() {
            singleton_members.extend(a_r.members().iter().cloned());
        } else {
            general.push((a_r, s_r));
        }
    }
    WitnessSet {
        singletons: ExtendedSet::from_members(singleton_members),
        general,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::boolean::union;
    use crate::{xset, xtuple};

    /// Appendix B: f |_⟨1⟩ {⟨a⟩} keeps only the tuple starting with `a`.
    #[test]
    fn appendix_b_restriction() {
        let f = xset![
            xtuple!["a", "a", "a", "b", "b"].into_value(),
            xtuple!["b", "b", "a", "a", "b"].into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        let sigma1 = xtuple![1];
        assert_eq!(
            sigma_restrict(&f, &sigma1, &a),
            xset![xtuple!["a", "a", "a", "b", "b"].into_value()]
        );
    }

    /// Restriction on the second position (the inverse direction of
    /// Example 8.1): σ = ⟨2⟩ looks the witness up at position 2.
    #[test]
    fn restrict_on_second_position() {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value(),
            ExtendedSet::pair("c", "x").into_value()
        ];
        let a = xset![xtuple!["x"].into_value()];
        let got = sigma_restrict(&f, &xtuple![2], &a);
        assert_eq!(
            got,
            xset![
                ExtendedSet::pair("a", "x").into_value(),
                ExtendedSet::pair("c", "x").into_value()
            ]
        );
    }

    /// The scope condition `s^{\σ\} ⊆ w` constrains when the witness carries
    /// a scoped membership (Example 8.1 shape).
    #[test]
    fn scope_condition_constrains() {
        // R has one pair scoped ⟨A,Z⟩ and one scoped ⟨B,Y⟩.
        let r = xset![
            ExtendedSet::pair("a", "x").into_value() => xtuple!["A", "Z"].into_value(),
            ExtendedSet::pair("b", "x").into_value() => xtuple!["B", "Y"].into_value()
        ];
        // Witness ⟨x⟩ carried with scope ⟨Z⟩ at position 2.
        let a = xset![xtuple!["x"].into_value() => xtuple!["Z"].into_value()];
        let got = sigma_restrict(&r, &xtuple![2], &a);
        assert_eq!(
            got,
            xset![ExtendedSet::pair("a", "x").into_value() => xtuple!["A", "Z"].into_value()]
        );
    }

    /// A memberless witness (atom or ∅) never matches — the non-vacuity
    /// reading that keeps Example 8.1's `f_(σ)` a function.
    #[test]
    fn memberless_witness_matches_nothing() {
        let f = xset![ExtendedSet::pair("a", "x").into_value()];
        let atom_witness = xset!["q" => 99];
        assert!(sigma_restrict(&f, &xtuple![1], &atom_witness).is_empty());
        let empty_witness = xset![Value::empty_set()];
        assert!(sigma_restrict(&f, &xtuple![1], &empty_witness).is_empty());
    }

    /// A witness whose scopes are not in σ's scopes re-scopes to ∅ and is
    /// likewise rejected.
    #[test]
    fn unmapped_witness_matches_nothing() {
        let f = xset![ExtendedSet::pair("a", "x").into_value()];
        let a = xset![xset!["a" => 99].into_value()];
        assert!(sigma_restrict(&f, &xtuple![1], &a).is_empty());
    }

    #[test]
    fn restriction_is_a_subset_of_r() {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        let got = sigma_restrict(&f, &xtuple![1], &a);
        assert!(got.is_subset(&f));
    }

    #[test]
    fn restriction_by_union_is_union_of_restrictions() {
        let f = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value(),
            ExtendedSet::pair("c", "z").into_value()
        ];
        let a1 = xset![xtuple!["a"].into_value()];
        let a2 = xset![xtuple!["b"].into_value()];
        let s1 = xtuple![1];
        assert_eq!(
            sigma_restrict(&f, &s1, &union(&a1, &a2)),
            union(&sigma_restrict(&f, &s1, &a1), &sigma_restrict(&f, &s1, &a2))
        );
    }

    #[test]
    fn empty_inputs() {
        let f = xset![ExtendedSet::pair("a", "x").into_value()];
        let a = xset![xtuple!["a"].into_value()];
        assert!(sigma_restrict(&ExtendedSet::empty(), &xtuple![1], &a).is_empty());
        assert!(sigma_restrict(&f, &xtuple![1], &ExtendedSet::empty()).is_empty());
        assert!(sigma_restrict(&f, &ExtendedSet::empty(), &a).is_empty());
    }

    /// Multi-position witnesses: σ = ⟨1,2⟩ requires both components.
    #[test]
    fn multi_position_witness() {
        let f = xset![
            xtuple!["a", "x", "p"].into_value(),
            xtuple!["a", "y", "q"].into_value()
        ];
        let a = xset![xtuple!["a", "x"].into_value()];
        let got = sigma_restrict(&f, &xtuple![1, 2], &a);
        assert_eq!(got, xset![xtuple!["a", "x", "p"].into_value()]);
    }

    use crate::value::Value;
}
