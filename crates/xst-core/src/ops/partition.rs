//! Scope partitioning — grouping as a *set-theoretic* operation.
//!
//! Because XST membership carries a scope, "group by" has a natural
//! formulation with no extra machinery: re-scope each member by its group
//! key, then collect the members sharing a scope into one inner set,
//! scoped by the key. The result is a set of groups — itself an ordinary
//! extended set, so every downstream operation applies to it.
//!
//! ```text
//! partition_by_scope({a^1, b^1, c^2}) = { {a, b}^1, {c}^2 }
//! ```
//!
//! The relational layer builds GROUP BY / aggregation on these operations
//! (`xst_relational::aggregate`).

use crate::ops::rescope::rescope_value_by_scope;
use crate::set::{ExtendedSet, Member, SetBuilder};
use crate::value::Value;

/// Collect members by scope: each distinct scope `s` becomes one member
/// `{elements with scope s}^s`. Inner members are classically scoped.
pub fn partition_by_scope(a: &ExtendedSet) -> ExtendedSet {
    // Members are sorted by (element, scope); group by scope instead, so
    // collect per-scope buckets.
    let mut buckets: std::collections::BTreeMap<&Value, SetBuilder> =
        std::collections::BTreeMap::new();
    for m in a.members() {
        buckets
            .entry(&m.scope)
            .or_default()
            .classical_elem(m.element.clone());
    }
    ExtendedSet::from_members(
        buckets
            .into_iter()
            .map(|(scope, b)| Member::new(Value::Set(b.build()), scope.clone()))
            .collect(),
    )
}

/// Inverse of [`partition_by_scope`]: flatten a set of groups back into a
/// single set, scoping each inner element by its group's scope. Members
/// that are not sets pass through unchanged.
pub fn flatten_partition(groups: &ExtendedSet) -> ExtendedSet {
    let mut b = SetBuilder::new();
    for (group, scope) in groups.iter() {
        match group.as_set() {
            Some(inner) => {
                for (e, _) in inner.iter() {
                    b.scoped(e.clone(), scope.clone());
                }
            }
            None => {
                b.scoped(group.clone(), scope.clone());
            }
        }
    }
    b.build()
}

/// Group the members of `a` by a key derived from each member element via
/// the re-scope spec `key` (Definition 7.3): member `x^s` lands in the
/// group scoped by `x^{/key/}`. Members whose key projection is empty are
/// dropped (they have no key).
pub fn group_by_key(a: &ExtendedSet, key: &ExtendedSet) -> ExtendedSet {
    let mut keyed = SetBuilder::with_capacity(a.card());
    for m in a.members() {
        let k = rescope_value_by_scope(&m.element, key);
        if k.is_empty() {
            continue;
        }
        keyed.scoped(m.element.clone(), Value::Set(k));
    }
    partition_by_scope(&keyed.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{xset, xtuple};

    #[test]
    fn partition_groups_by_scope() {
        let a = xset!["a" => 1, "b" => 1, "c" => 2];
        let p = partition_by_scope(&a);
        assert_eq!(
            p,
            xset![
                xset!["a", "b"].into_value() => 1,
                xset!["c"].into_value() => 2
            ]
        );
    }

    #[test]
    fn partition_of_empty_is_empty() {
        assert!(partition_by_scope(&ExtendedSet::empty()).is_empty());
    }

    #[test]
    fn partition_flatten_roundtrip() {
        let a = xset!["a" => 1, "b" => 1, "c" => 2, "d"];
        assert_eq!(flatten_partition(&partition_by_scope(&a)), a);
    }

    #[test]
    fn flatten_passes_atoms_through() {
        let groups = xset!["atom" => 9];
        assert_eq!(flatten_partition(&groups), xset!["atom" => 9]);
    }

    #[test]
    fn group_by_key_projects_then_partitions() {
        // Tuples ⟨dept, name⟩ grouped by position 1.
        let rows = xset![
            xtuple!["eng", "ann"].into_value(),
            xtuple!["eng", "cy"].into_value(),
            xtuple!["ops", "bo"].into_value()
        ];
        let key = xtuple![1]; // project position 1 as the key
        let groups = group_by_key(&rows, &key);
        assert_eq!(groups.card(), 2);
        // The eng group holds both eng rows, scoped by ⟨eng⟩.
        let eng_key = Value::Set(xtuple!["eng"]);
        let eng_group: Vec<_> = groups.elements_with_scope(&eng_key).collect();
        assert_eq!(eng_group.len(), 1);
        assert_eq!(eng_group[0].as_set().unwrap().card(), 2);
    }

    #[test]
    fn group_by_key_drops_keyless_members() {
        let rows = xset![
            xtuple!["eng", "ann"].into_value(),
            "atom" // no position 1 — no key
        ];
        let groups = group_by_key(&rows, &xtuple![1]);
        assert_eq!(groups.card(), 1);
    }

    #[test]
    fn groups_are_ordinary_sets() {
        // Downstream ops apply to the partition: e.g. union of two
        // partitions merges group sets as members.
        let p1 = partition_by_scope(&xset!["a" => 1]);
        let p2 = partition_by_scope(&xset!["b" => 2]);
        let merged = crate::ops::boolean::union(&p1, &p2);
        assert_eq!(merged.card(), 2);
    }
}
