//! Scatter-gather evaluation: the parallel kernels applied per shard
//! fragment, with an ordered-union merge.
//!
//! A sharded engine holds a set as N pairwise-disjoint **fragments**
//! whose union is the whole extension. The algebra distributes over that
//! partition in two distinct ways, and every function here is one of the
//! two:
//!
//! * **Fragment-vs-whole** — for any partition `A = ⋃ᵢ Aᵢ`:
//!   `A ∩ B = ⋃ᵢ (Aᵢ ∩ B)`, `A ∖ B = ⋃ᵢ (Aᵢ ∖ B)`, and every member-wise
//!   operation on the *carrier* operand (σ-restriction, image, relative
//!   product probe) factors the same way, because each member of the
//!   result is decided by one member of `A` against all of `B`. Valid for
//!   ANY partition of the left operand.
//! * **Aligned zip** — when both operands are partitioned by the same
//!   member-hash (co-hashed), the right operand's matching member can
//!   only live in the same-indexed fragment, so
//!   `A ∩ B = ⋃ᵢ (Aᵢ ∩ Bᵢ)` and likewise for difference. Union zips for
//!   any equal-count partition (no alignment needed — union never drops
//!   members).
//!
//! The **gather** step is ordered union ([`union_all`]): fragments are
//! canonical sorted member lists, so the merge is exact and
//! deterministic — the scatter-gather result is *identical* to the
//! single-set result, which the property tests below assert.
//!
//! Observability: each per-fragment kernel invocation charges the
//! ambient [`xst_obs::cost`] scope under its shard slot and bumps
//! `xst_shard_scatter_ops_total`; each gather bumps
//! `xst_shard_gather_merges_total`.

use crate::ops::boolean::{difference, union_all};
use crate::ops::image::Scope;
use crate::ops::par::{
    par_image, par_intersection, par_relative_product, par_sigma_restrict, par_union, Parallelism,
};
use crate::set::ExtendedSet;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use xst_obs::{registry, Counter};

fn scatter_ops_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_SCATTER_OPS_TOTAL,
            "Per-fragment kernel invocations dispatched by scatter-gather evaluation.",
        )
    })
}

fn gather_merges_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_GATHER_MERGES_TOTAL,
            "Gather steps that merged per-shard fragments by ordered union.",
        )
    })
}

/// Charge one per-fragment kernel run to shard slot `i`.
#[inline]
fn note_scatter(i: usize) {
    if xst_obs::enabled() {
        scatter_ops_total().inc();
        xst_obs::cost::add_shard_op(i);
    }
}

/// Partition `set` into `shards` pairwise-disjoint fragments by a
/// deterministic structural hash of each member (element and scope both
/// participate — routing is a function of the member's whole identity).
/// Fragment order preserves canonical member order, so each fragment is
/// itself canonical. `shards == 0` is treated as 1.
pub fn partition_members(set: &ExtendedSet, shards: usize) -> Vec<ExtendedSet> {
    let shards = shards.max(1);
    if shards == 1 {
        return vec![set.clone()];
    }
    let mut parts: Vec<Vec<crate::set::Member>> = vec![Vec::new(); shards];
    for m in set.members() {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        m.hash(&mut h);
        parts[(h.finish() % shards as u64) as usize].push(m.clone());
    }
    parts
        .into_iter()
        .map(ExtendedSet::from_sorted_unique)
        .collect()
}

/// Gather: merge disjoint fragments back into one canonical set by
/// ordered union. Exact — no fragment member is dropped or reweighted.
pub fn gather(fragments: &[ExtendedSet]) -> ExtendedSet {
    if xst_obs::enabled() {
        gather_merges_total().inc();
    }
    union_all(fragments.iter())
}

/// Zip union: `⋃ᵢ (Aᵢ ∪ Bᵢ)` fragment-wise. Valid for ANY equal-count
/// pair of partitions (union drops nothing, so misaligned members still
/// land in the result — just via a different fragment). Returns the
/// fragment list so downstream ops can stay scattered.
pub fn scatter_union(a: &[ExtendedSet], b: &[ExtendedSet], par: &Parallelism) -> Vec<ExtendedSet> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .enumerate()
        .map(|(i, (x, y))| {
            note_scatter(i);
            par_union(x, y, par)
        })
        .collect()
}

/// Zip intersection: `⋃ᵢ (Aᵢ ∩ Bᵢ)` fragment-wise. **Requires aligned
/// (co-hashed) partitions** — a member present in `Aᵢ` and `Bⱼ` with
/// `i ≠ j` would be silently dropped otherwise. The query layer tracks
/// alignment and falls back to [`scatter_intersection_whole`] when it
/// cannot prove it.
pub fn scatter_zip_intersection(
    a: &[ExtendedSet],
    b: &[ExtendedSet],
    par: &Parallelism,
) -> Vec<ExtendedSet> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .enumerate()
        .map(|(i, (x, y))| {
            note_scatter(i);
            par_intersection(x, y, par)
        })
        .collect()
}

/// Fragment-vs-whole intersection: `⋃ᵢ (Aᵢ ∩ B)`. Valid for any
/// partition of `A`.
pub fn scatter_intersection_whole(
    a: &[ExtendedSet],
    b: &ExtendedSet,
    par: &Parallelism,
) -> Vec<ExtendedSet> {
    a.iter()
        .enumerate()
        .map(|(i, x)| {
            note_scatter(i);
            par_intersection(x, b, par)
        })
        .collect()
}

/// Zip difference: `⋃ᵢ (Aᵢ ∖ Bᵢ)`. **Requires aligned partitions** (a
/// to-be-removed member in the wrong fragment would survive).
pub fn scatter_zip_difference(a: &[ExtendedSet], b: &[ExtendedSet]) -> Vec<ExtendedSet> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .enumerate()
        .map(|(i, (x, y))| {
            note_scatter(i);
            difference(x, y)
        })
        .collect()
}

/// Fragment-vs-whole difference: `⋃ᵢ (Aᵢ ∖ B)`. Valid for any partition
/// of `A`.
pub fn scatter_difference_whole(a: &[ExtendedSet], b: &ExtendedSet) -> Vec<ExtendedSet> {
    a.iter()
        .enumerate()
        .map(|(i, x)| {
            note_scatter(i);
            difference(x, b)
        })
        .collect()
}

/// Scattered σ-restriction `R |_σ A`: the carrier `R` is fragmented, the
/// (typically small) filter operands stay whole on every shard. The
/// output fragment `i` is a subset of `Rᵢ`, so restriction **preserves
/// alignment** — downstream zips remain valid.
pub fn scatter_restrict(
    r: &[ExtendedSet],
    sigma: &ExtendedSet,
    a: &ExtendedSet,
    par: &Parallelism,
) -> Vec<ExtendedSet> {
    r.iter()
        .enumerate()
        .map(|(i, frag)| {
            note_scatter(i);
            par_sigma_restrict(frag, sigma, a, par)
        })
        .collect()
}

/// Scattered image `R[A]`: member-wise over the fragmented carrier.
/// Output members are *transformed* (re-scoped), so the result is NOT
/// aligned to the input partition — the query layer must treat it as an
/// arbitrary partition from here on.
pub fn scatter_image(
    r: &[ExtendedSet],
    a: &ExtendedSet,
    scope: &Scope,
    par: &Parallelism,
) -> Vec<ExtendedSet> {
    r.iter()
        .enumerate()
        .map(|(i, frag)| {
            note_scatter(i);
            par_image(frag, a, scope, par)
        })
        .collect()
}

/// Scattered relative product `F /ω_σ G`: the probe side `F` is
/// fragmented, `G` is indexed whole per fragment. Output members are
/// joined pairs — not aligned to the input partition.
pub fn scatter_relative_product(
    f: &[ExtendedSet],
    sigma: &Scope,
    g: &ExtendedSet,
    omega: &Scope,
    par: &Parallelism,
) -> Vec<ExtendedSet> {
    f.iter()
        .enumerate()
        .map(|(i, frag)| {
            note_scatter(i);
            par_relative_product(frag, sigma, g, omega, par)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::boolean::{intersection, union};
    use crate::ops::image::image;
    use crate::ops::product::relative_product;
    use crate::ops::restrict::sigma_restrict;
    use crate::set::SetBuilder;
    use crate::value::Value;
    use proptest::prelude::*;

    fn seq() -> Parallelism {
        Parallelism::sequential()
    }

    fn rel(ks: impl IntoIterator<Item = (i64, i64)>) -> ExtendedSet {
        let mut b = SetBuilder::new();
        for (x, y) in ks {
            b.scoped(Value::Int(y), Value::Int(x));
        }
        b.build()
    }

    #[test]
    fn partition_is_disjoint_total_and_deterministic() {
        let a = rel((0..40).map(|i| (i, i * 2)));
        let parts = partition_members(&a, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.card()).sum();
        assert_eq!(total, a.card(), "no member lost or duplicated");
        assert_eq!(gather(&parts), a, "gather inverts scatter");
        assert_eq!(partition_members(&a, 4), parts, "stable routing");
        assert_eq!(partition_members(&a, 1), vec![a.clone()]);
        assert_eq!(partition_members(&a, 0), vec![a]);
    }

    proptest! {
        #[test]
        fn zip_union_matches_whole(xs in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
                                   ys in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
                                   shards in 1usize..5) {
            let a = rel(xs);
            let b = rel(ys);
            let out = gather(&scatter_union(
                &partition_members(&a, shards),
                &partition_members(&b, shards),
                &seq(),
            ));
            prop_assert_eq!(out, union(&a, &b));
        }

        #[test]
        fn zip_intersection_matches_whole_when_cohashed(
            xs in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
            ys in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
            shards in 1usize..5,
        ) {
            let a = rel(xs);
            let b = rel(ys);
            // Co-hashed: both sides partitioned by the same member hash.
            let out = gather(&scatter_zip_intersection(
                &partition_members(&a, shards),
                &partition_members(&b, shards),
                &seq(),
            ));
            prop_assert_eq!(out, intersection(&a, &b));
        }

        #[test]
        fn whole_side_ops_match_for_any_partition(
            xs in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
            ys in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
            shards in 1usize..5,
        ) {
            let a = rel(xs);
            let b = rel(ys);
            let frags = partition_members(&a, shards);
            prop_assert_eq!(
                gather(&scatter_intersection_whole(&frags, &b, &seq())),
                intersection(&a, &b)
            );
            prop_assert_eq!(
                gather(&scatter_difference_whole(&frags, &b)),
                difference(&a, &b)
            );
        }

        #[test]
        fn zip_difference_matches_whole_when_cohashed(
            xs in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
            ys in proptest::collection::vec((0i64..50, 0i64..50), 0..40),
            shards in 1usize..5,
        ) {
            let a = rel(xs);
            let b = rel(ys);
            let out = gather(&scatter_zip_difference(
                &partition_members(&a, shards),
                &partition_members(&b, shards),
            ));
            prop_assert_eq!(out, difference(&a, &b));
        }

        #[test]
        fn restrict_image_relproduct_scatter_exactly(
            rs in proptest::collection::vec((0i64..30, 0i64..30), 0..40),
            ks in proptest::collection::vec(0i64..30, 0..10),
            shards in 1usize..5,
        ) {
            let r = rel(rs.clone());
            let a = ExtendedSet::classical(ks.into_iter().map(Value::Int));
            let sigma = ExtendedSet::classical([Value::str("s")]);
            let frags = partition_members(&r, shards);
            prop_assert_eq!(
                gather(&scatter_restrict(&frags, &sigma, &a, &seq())),
                sigma_restrict(&r, &sigma, &a)
            );
            let scope = Scope::pairs();
            prop_assert_eq!(
                gather(&scatter_image(&frags, &a, &scope, &seq())),
                image(&r, &a, &scope)
            );
            let g = rel(rs.into_iter().map(|(x, y)| (y, x)));
            prop_assert_eq!(
                gather(&scatter_relative_product(&frags, &scope, &g, &scope, &seq())),
                relative_product(&r, &scope, &g, &scope)
            );
        }

        #[test]
        fn restriction_preserves_alignment(
            rs in proptest::collection::vec((0i64..30, 0i64..30), 0..40),
            ks in proptest::collection::vec(0i64..30, 0..10),
            shards in 2usize..5,
        ) {
            let r = rel(rs);
            let a = ExtendedSet::classical(ks.into_iter().map(Value::Int));
            let sigma = ExtendedSet::classical([Value::str("s")]);
            let frags = partition_members(&r, shards);
            let restricted = scatter_restrict(&frags, &sigma, &a, &seq());
            // Each output fragment re-routes onto itself: restriction's
            // outputs are a subset of its carrier fragment's members.
            let whole = gather(&restricted);
            let reparted = partition_members(&whole, shards);
            prop_assert_eq!(restricted, reparted);
        }
    }
}
