//! σ-Domain (Definition 7.4) — the XST generalization of CST's domain/range
//! extraction.
//!
//! ```text
//! 𝔇_σ(R) = { x^s : ∃z,w ( z ∈_w R ∧ x = z^{/σ/} ≠ ∅ ∧ s = w^{/σ/} ) }
//! ```
//!
//! Every member `z` of `R` is re-scoped by `σ`; non-empty projections are
//! collected, each scoped by the projection of its own membership scope.
//! With `σ = ⟨1⟩` over a set of pairs this is the classical 1-domain (as
//! singleton tuples); with `σ = ⟨2⟩` the classical 2-domain; arbitrary `σ`
//! projects, permutes, and duplicates positions — the paper's examples
//! include `𝔇_⟨3,1⟩({{a^1,b^2,c^3}^{...}}) = {⟨c,a⟩^{...}}`.

use crate::ops::rescope::rescope_value_by_scope;
use crate::set::{ExtendedSet, SetBuilder};
use crate::value::Value;

/// `𝔇_σ(R)` (Definition 7.4).
pub fn sigma_domain(r: &ExtendedSet, sigma: &ExtendedSet) -> ExtendedSet {
    let mut b = SetBuilder::new();
    for m in r.members() {
        let x = rescope_value_by_scope(&m.element, sigma);
        if x.is_empty() {
            continue; // Def 7.4 requires z^{/σ/} ≠ ∅
        }
        let s = rescope_value_by_scope(&m.scope, sigma);
        b.scoped(Value::Set(x), Value::Set(s));
    }
    b.build()
}

/// Iterator form of [`sigma_domain`] that yields each projected member
/// without materializing the result set; used by fused operators.
pub fn sigma_domain_members<'a>(
    r: &'a ExtendedSet,
    sigma: &'a ExtendedSet,
) -> impl Iterator<Item = (ExtendedSet, ExtendedSet)> + 'a {
    r.members().iter().filter_map(move |m| {
        let x = rescope_value_by_scope(&m.element, sigma);
        if x.is_empty() {
            None
        } else {
            Some((x, rescope_value_by_scope(&m.scope, sigma)))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::boolean::{difference, intersection, union};
    use crate::{xset, xtuple};

    #[test]
    fn paper_example_7_4_first() {
        // 𝔇_{A^1, C^2}({{a^A, b^B, c^C}}) = {{a^1, c^2}}
        let inner = xset!["a" => "A", "b" => "B", "c" => "C"];
        let r = xset![inner.into_value()];
        let sigma = xset!["A" => 1, "C" => 2];
        let expected_inner = xset!["a" => 1, "c" => 2];
        let expected = xset![expected_inner.into_value() => Value::empty_set()];
        assert_eq!(sigma_domain(&r, &sigma), expected);
    }

    #[test]
    fn paper_example_7_4_second() {
        // 𝔇_⟨3,1⟩({{a^1,b^2,c^3}^{A^1,B^2,C^3}}) = {⟨c,a⟩^{⟨C,A⟩}}
        let z = xtuple!["a", "b", "c"];
        let w = xset!["A" => 1, "B" => 2, "C" => 3];
        let r = xset![z.into_value() => w.into_value()];
        let sigma = xtuple![3, 1]; // {3^1, 1^2}
        let expected = xset![xtuple!["c", "a"].into_value() => xtuple!["C", "A"].into_value()];
        assert_eq!(sigma_domain(&r, &sigma), expected);
    }

    #[test]
    fn paper_example_7_4_third() {
        // 𝔇_{3^1,1^2,y^9,v^5,v^7,R^A}({{a^1,b^2,c^3}^{x^y,w^v,z^R}})
        //   = {⟨c,a⟩^{x^9, w^5, w^7, z^A}}
        // (the scope projection keeps whatever scope-parts σ maps; the
        // duplicate mapping of v fans w out to two scopes).
        let z = xtuple!["a", "b", "c"];
        let w = xset!["x" => "y", "w" => "v", "z" => "R"];
        let r = xset![z.into_value() => w.into_value()];
        let sigma = xset![3 => 1, 1 => 2, "y" => 9, "v" => 5, "v" => 7, "R" => "A"];
        let expected_elem = xtuple!["c", "a"];
        let expected_scope = xset!["x" => 9, "w" => 5, "w" => 7, "z" => "A"];
        assert_eq!(
            sigma_domain(&r, &sigma),
            xset![expected_elem.into_value() => expected_scope.into_value()]
        );
    }

    #[test]
    fn classical_pair_domains() {
        // Over pairs, σ=⟨1⟩ extracts first components as 1-tuples,
        // σ=⟨2⟩ the second components.
        let r = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let d1 = sigma_domain(&r, &xtuple![1]);
        let d2 = sigma_domain(&r, &xtuple![2]);
        assert_eq!(
            d1,
            xset![xtuple!["a"].into_value(), xtuple!["b"].into_value()]
        );
        assert_eq!(
            d2,
            xset![xtuple!["x"].into_value(), xtuple!["y"].into_value()]
        );
    }

    #[test]
    fn empty_sigma_yields_empty_domain() {
        // Consequence 7.1(e): 𝔇_∅(R) = ∅.
        let r = xset![ExtendedSet::pair("a", "x").into_value()];
        assert!(sigma_domain(&r, &ExtendedSet::empty()).is_empty());
    }

    #[test]
    fn atom_members_are_skipped() {
        // Atoms re-scope to ∅ and Def 7.4 drops empty projections.
        let r = xset!["atom", ExtendedSet::pair("a", "x").into_value()];
        let d = sigma_domain(&r, &xtuple![1]);
        assert_eq!(d, xset![xtuple!["a"].into_value()]);
    }

    #[test]
    fn consequence_7_1_a_union() {
        // 𝔇_σ(R ∪ Q) = 𝔇_σ(R) ∪ 𝔇_σ(Q)
        let r = xset![ExtendedSet::pair("a", "x").into_value()];
        let q = xset![ExtendedSet::pair("b", "y").into_value()];
        let sigma = xtuple![1];
        assert_eq!(
            sigma_domain(&union(&r, &q), &sigma),
            union(&sigma_domain(&r, &sigma), &sigma_domain(&q, &sigma))
        );
    }

    #[test]
    fn consequence_7_1_b_intersection_is_contained() {
        // 𝔇_σ(R ∩ Q) ⊆ 𝔇_σ(R) ∩ 𝔇_σ(Q), possibly strictly.
        let r = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let q = xset![
            ExtendedSet::pair("a", "z").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let sigma = xtuple![1];
        let lhs = sigma_domain(&intersection(&r, &q), &sigma);
        let rhs = intersection(&sigma_domain(&r, &sigma), &sigma_domain(&q, &sigma));
        assert!(lhs.is_subset(&rhs));
        // Strict here: ⟨a⟩ is in both domains but ⟨a,x⟩ ∉ R∩Q.
        assert!(lhs.card() < rhs.card());
    }

    #[test]
    fn consequence_7_1_c_difference() {
        // 𝔇_σ(R) ~ 𝔇_σ(Q) ⊆ 𝔇_σ(R ~ Q)
        let r = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let q = xset![ExtendedSet::pair("b", "y").into_value()];
        let sigma = xtuple![1];
        let lhs = difference(&sigma_domain(&r, &sigma), &sigma_domain(&q, &sigma));
        let rhs = sigma_domain(&difference(&r, &q), &sigma);
        assert!(lhs.is_subset(&rhs));
    }

    #[test]
    fn consequence_7_1_d_monotone() {
        // R ⊆ Q → 𝔇_σ(R) ⊆ 𝔇_σ(Q)
        let q = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value()
        ];
        let r = xset![ExtendedSet::pair("a", "x").into_value()];
        let sigma = xtuple![2];
        assert!(r.is_subset(&q));
        assert!(sigma_domain(&r, &sigma).is_subset(&sigma_domain(&q, &sigma)));
    }

    #[test]
    fn iterator_form_agrees_with_materialized() {
        let r = xset![
            ExtendedSet::pair("a", "x").into_value(),
            ExtendedSet::pair("b", "y").into_value(),
            "atom"
        ];
        let sigma = xtuple![2, 1];
        let via_iter = {
            let mut b = SetBuilder::new();
            for (x, s) in sigma_domain_members(&r, &sigma) {
                b.scoped(Value::Set(x), Value::Set(s));
            }
            b.build()
        };
        assert_eq!(via_iter, sigma_domain(&r, &sigma));
    }
}
