//! XST Image (Definitions 3.10 / 7.1):
//! `R[A]_⟨σ1,σ2⟩ = 𝔇_σ2(R |_σ1 A)` — the σ2-Domain of the σ1-Restriction.
//!
//! Two implementations are provided:
//!
//! * [`image`] — the production operator, **fused**: each member of `R` is
//!   tested against the restriction witnesses and, if it matches, projected
//!   immediately; the intermediate restricted set is never materialized.
//! * [`image_two_pass`] — the paper-literal pipeline (restriction, then
//!   domain). Kept public because experiment **E4** measures the cost of the
//!   intermediate materialization; both must agree on every input (tested
//!   here and by property tests).

use crate::ops::domain::sigma_domain;
use crate::ops::rescope::rescope_value_by_scope;
use crate::ops::restrict::{restriction_witnesses, sigma_restrict};
use crate::set::{ExtendedSet, SetBuilder};
use crate::value::Value;

/// A process scope `σ = ⟨σ1, σ2⟩`: the restriction spec paired with the
/// domain spec (Definition 3.10).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scope {
    /// `σ1` — drives the σ-restriction (input side).
    pub sigma1: ExtendedSet,
    /// `σ2` — drives the σ-domain (output side).
    pub sigma2: ExtendedSet,
}

impl Scope {
    /// Construct from the two component specs.
    pub fn new(sigma1: ExtendedSet, sigma2: ExtendedSet) -> Scope {
        Scope { sigma1, sigma2 }
    }

    /// The pair-relation scope `⟨⟨1⟩, ⟨2⟩⟩` used throughout the paper for
    /// CST-style functions (input = position 1, output = position 2).
    pub fn pairs() -> Scope {
        Scope::new(ExtendedSet::tuple([1i64]), ExtendedSet::tuple([2i64]))
    }

    /// The inverse pair scope `τ = ⟨⟨2⟩, ⟨1⟩⟩` of Example 8.1(b).
    pub fn pairs_inverse() -> Scope {
        Scope::new(ExtendedSet::tuple([2i64]), ExtendedSet::tuple([1i64]))
    }

    /// Positional scope `⟨⟨i…⟩, ⟨j…⟩⟩` built from two tuples of positions.
    pub fn positional(input: &[i64], output: &[i64]) -> Scope {
        Scope::new(
            ExtendedSet::tuple(input.iter().copied().map(Value::Int)),
            ExtendedSet::tuple(output.iter().copied().map(Value::Int)),
        )
    }

    /// Swap the two component specs (the scope of the *inverse* behavior).
    pub fn flipped(&self) -> Scope {
        Scope::new(self.sigma2.clone(), self.sigma1.clone())
    }
}

/// `R[A]_⟨σ1,σ2⟩` — fused single-pass implementation.
pub fn image(r: &ExtendedSet, a: &ExtendedSet, scope: &Scope) -> ExtendedSet {
    let witnesses = restriction_witnesses(&scope.sigma1, a);
    if witnesses.is_empty() {
        return ExtendedSet::empty();
    }
    let mut b = SetBuilder::new();
    for m in r.members() {
        if !witnesses.matches(m) {
            continue;
        }
        let x = rescope_value_by_scope(&m.element, &scope.sigma2);
        if x.is_empty() {
            continue;
        }
        let s = rescope_value_by_scope(&m.scope, &scope.sigma2);
        b.scoped(Value::Set(x), Value::Set(s));
    }
    b.build()
}

/// `𝔇_σ2(R |_σ1 A)` — the paper-literal two-pass pipeline.
pub fn image_two_pass(r: &ExtendedSet, a: &ExtendedSet, scope: &Scope) -> ExtendedSet {
    sigma_domain(&sigma_restrict(r, &scope.sigma1, a), &scope.sigma2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::boolean::{difference, intersection, union};
    use crate::{xset, xtuple};

    fn f_example_8_1() -> ExtendedSet {
        // f = { ⟨a,x⟩^⟨A,Z⟩, ⟨b,y⟩^⟨B,Y⟩, ⟨c,x⟩^⟨C,Z⟩ }
        xset![
            ExtendedSet::pair("a", "x").into_value() => xtuple!["A", "Z"].into_value(),
            ExtendedSet::pair("b", "y").into_value() => xtuple!["B", "Y"].into_value(),
            ExtendedSet::pair("c", "x").into_value() => xtuple!["C", "Z"].into_value()
        ]
    }

    /// Example 8.1(a): f[{⟨a⟩^⟨A⟩}]_σ = {⟨x⟩^⟨Z⟩} with σ = ⟨⟨1⟩,⟨2⟩⟩.
    #[test]
    fn example_8_1_a() {
        let f = f_example_8_1();
        let input = xset![xtuple!["a"].into_value() => xtuple!["A"].into_value()];
        let got = image(&f, &input, &Scope::pairs());
        assert_eq!(
            got,
            xset![xtuple!["x"].into_value() => xtuple!["Z"].into_value()]
        );
    }

    /// Example 8.1(b): f[{⟨x⟩^⟨Z⟩}]_τ = {⟨a⟩^⟨A⟩, ⟨c⟩^⟨C⟩} with τ = ⟨⟨2⟩,⟨1⟩⟩
    /// — the inverse behaves like a relation, not a function.
    #[test]
    fn example_8_1_b() {
        let f = f_example_8_1();
        let input = xset![xtuple!["x"].into_value() => xtuple!["Z"].into_value()];
        let got = image(&f, &input, &Scope::pairs_inverse());
        assert_eq!(
            got,
            xset![
                xtuple!["a"].into_value() => xtuple!["A"].into_value(),
                xtuple!["c"].into_value() => xtuple!["C"].into_value()
            ]
        );
    }

    /// Consequence C.1(f): the fused and two-pass images agree.
    #[test]
    fn fused_equals_two_pass() {
        let f = f_example_8_1();
        for input in [
            xset![xtuple!["a"].into_value() => xtuple!["A"].into_value()],
            xset![xtuple!["x"].into_value()],
            xset![xtuple!["q"].into_value()],
            ExtendedSet::empty(),
        ] {
            for scope in [Scope::pairs(), Scope::pairs_inverse()] {
                assert_eq!(
                    image(&f, &input, &scope),
                    image_two_pass(&f, &input, &scope),
                    "input {input:?} scope {scope:?}"
                );
            }
        }
    }

    /// Consequence C.1(g): Q[∅]_σ = ∅, ∅[A]_σ = ∅, Q[A]_∅ = ∅.
    #[test]
    fn consequence_c1_g_empties() {
        let f = f_example_8_1();
        let a = xset![xtuple!["a"].into_value()];
        let empty_scope = Scope::new(ExtendedSet::empty(), ExtendedSet::empty());
        assert!(image(&f, &ExtendedSet::empty(), &Scope::pairs()).is_empty());
        assert!(image(&ExtendedSet::empty(), &a, &Scope::pairs()).is_empty());
        assert!(image(&f, &a, &empty_scope).is_empty());
    }

    /// Consequence C.1(a): Q[A ∪ B]_σ = Q[A]_σ ∪ Q[B]_σ.
    #[test]
    fn consequence_c1_a_union_of_inputs() {
        let f = f_example_8_1();
        let a = xset![xtuple!["a"].into_value() => xtuple!["A"].into_value()];
        let b = xset![xtuple!["b"].into_value() => xtuple!["B"].into_value()];
        let s = Scope::pairs();
        assert_eq!(
            image(&f, &union(&a, &b), &s),
            union(&image(&f, &a, &s), &image(&f, &b, &s))
        );
    }

    /// Consequence C.1(b): Q[A ∩ B]_σ ⊆ Q[A]_σ ∩ Q[B]_σ.
    #[test]
    fn consequence_c1_b_intersection() {
        let f = f_example_8_1();
        let a = xset![
            xtuple!["a"].into_value() => xtuple!["A"].into_value(),
            xtuple!["b"].into_value() => xtuple!["B"].into_value()
        ];
        let b = xset![xtuple!["b"].into_value() => xtuple!["B"].into_value()];
        let s = Scope::pairs();
        assert!(image(&f, &intersection(&a, &b), &s)
            .is_subset(&intersection(&image(&f, &a, &s), &image(&f, &b, &s))));
    }

    /// Consequence C.1(c): Q[A]_σ ~ Q[B]_σ ⊆ Q[A ~ B]_σ.
    #[test]
    fn consequence_c1_c_difference() {
        let f = f_example_8_1();
        let a = xset![
            xtuple!["a"].into_value() => xtuple!["A"].into_value(),
            xtuple!["b"].into_value() => xtuple!["B"].into_value()
        ];
        let b = xset![xtuple!["b"].into_value() => xtuple!["B"].into_value()];
        let s = Scope::pairs();
        assert!(
            difference(&image(&f, &a, &s), &image(&f, &b, &s)).is_subset(&image(
                &f,
                &difference(&a, &b),
                &s
            ))
        );
    }

    /// Consequence C.1(d): A ⊆ B → Q[A]_σ ⊆ Q[B]_σ.
    #[test]
    fn consequence_c1_d_monotone() {
        let f = f_example_8_1();
        let a = xset![xtuple!["a"].into_value() => xtuple!["A"].into_value()];
        let b = union(
            &a,
            &xset![xtuple!["c"].into_value() => xtuple!["C"].into_value()],
        );
        let s = Scope::pairs();
        assert!(image(&f, &a, &s).is_subset(&image(&f, &b, &s)));
    }

    /// Consequences C.1(i)/(j)/(k): images of combined relations.
    #[test]
    fn consequence_c1_ijk_relation_combinations() {
        let q = xset![ExtendedSet::pair("a", "x").into_value()];
        let r = xset![
            ExtendedSet::pair("a", "y").into_value(),
            ExtendedSet::pair("b", "z").into_value()
        ];
        let a = xset![xtuple!["a"].into_value()];
        let s = Scope::pairs();
        // (i) union distributes
        assert_eq!(
            image(&union(&q, &r), &a, &s),
            union(&image(&q, &a, &s), &image(&r, &a, &s))
        );
        // (j) intersection contained
        assert!(image(&intersection(&q, &r), &a, &s)
            .is_subset(&intersection(&image(&q, &a, &s), &image(&r, &a, &s))));
        // (k) difference contained
        assert!(
            difference(&image(&q, &a, &s), &image(&r, &a, &s)).is_subset(&image(
                &difference(&q, &r),
                &a,
                &s
            ))
        );
    }

    /// Scope constructors behave as documented.
    #[test]
    fn scope_constructors() {
        assert_eq!(Scope::pairs().flipped(), Scope::pairs_inverse());
        let s = Scope::positional(&[1, 3], &[2, 4]);
        assert_eq!(s.sigma1, xtuple![1, 3]);
        assert_eq!(s.sigma2, xtuple![2, 4]);
    }
}
