//! Boolean set operations over scoped members.
//!
//! Union, intersection, difference and symmetric difference operate on the
//! full `(element, scope)` membership relation: `a^1` and `a^2` are distinct
//! memberships. Because [`ExtendedSet`] keeps a canonical sorted member
//! sequence, all four operations are linear merges over the two inputs.

use crate::set::{ExtendedSet, Member};
use std::cmp::Ordering;

/// `A ∪ B`: every scoped membership from either operand.
pub fn union(a: &ExtendedSet, b: &ExtendedSet) -> ExtendedSet {
    if a.is_empty() {
        return b.clone();
    }
    if b.is_empty() {
        return a.clone();
    }
    let (am, bm) = (a.members(), b.members());
    let mut out: Vec<Member> = Vec::with_capacity(am.len() + bm.len());
    let (mut i, mut j) = (0, 0);
    while i < am.len() && j < bm.len() {
        match am[i].cmp(&bm[j]) {
            Ordering::Less => {
                out.push(am[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(bm[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                out.push(am[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&am[i..]);
    out.extend_from_slice(&bm[j..]);
    // Already sorted and deduplicated by the merge; skip re-canonicalizing.
    ExtendedSet::from_sorted_unique(out)
}

/// `A ∩ B`: scoped memberships present in both operands.
pub fn intersection(a: &ExtendedSet, b: &ExtendedSet) -> ExtendedSet {
    let (am, bm) = (a.members(), b.members());
    let mut out: Vec<Member> = Vec::with_capacity(am.len().min(bm.len()));
    let (mut i, mut j) = (0, 0);
    while i < am.len() && j < bm.len() {
        match am[i].cmp(&bm[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(am[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    ExtendedSet::from_sorted_unique(out)
}

/// `A ~ B` (the paper's difference notation): memberships of `A` absent
/// from `B`.
pub fn difference(a: &ExtendedSet, b: &ExtendedSet) -> ExtendedSet {
    if b.is_empty() {
        return a.clone();
    }
    let (am, bm) = (a.members(), b.members());
    let mut out: Vec<Member> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < am.len() && j < bm.len() {
        match am[i].cmp(&bm[j]) {
            Ordering::Less => {
                out.push(am[i].clone());
                i += 1;
            }
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&am[i..]);
    ExtendedSet::from_sorted_unique(out)
}

/// `(A ~ B) ∪ (B ~ A)`.
pub fn symmetric_difference(a: &ExtendedSet, b: &ExtendedSet) -> ExtendedSet {
    let (am, bm) = (a.members(), b.members());
    let mut out: Vec<Member> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < am.len() && j < bm.len() {
        match am[i].cmp(&bm[j]) {
            Ordering::Less => {
                out.push(am[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(bm[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&am[i..]);
    out.extend_from_slice(&bm[j..]);
    ExtendedSet::from_sorted_unique(out)
}

/// True iff `A ∩ B = ∅`, without materializing the intersection.
pub fn disjoint(a: &ExtendedSet, b: &ExtendedSet) -> bool {
    let (am, bm) = (a.members(), b.members());
    let (mut i, mut j) = (0, 0);
    while i < am.len() && j < bm.len() {
        match am[i].cmp(&bm[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => return false,
        }
    }
    true
}

/// n-ary union, merged as a balanced tournament: `O(total · log k)` member
/// visits for `k` inputs instead of the `O(total · k)` of a left fold.
pub fn union_all<'a>(sets: impl IntoIterator<Item = &'a ExtendedSet>) -> ExtendedSet {
    let mut layer: Vec<ExtendedSet> = sets.into_iter().cloned().collect();
    if layer.is_empty() {
        return ExtendedSet::empty();
    }
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(union(&a, &b)),
                None => next.push(a),
            }
        }
        layer = next;
    }
    layer.into_iter().next().unwrap_or_else(ExtendedSet::empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xset;

    #[test]
    fn union_merges_scoped_members() {
        let a = xset!["a" => 1, "b" => 2];
        let b = xset!["b" => 2, "c" => 3];
        assert_eq!(union(&a, &b), xset!["a" => 1, "b" => 2, "c" => 3]);
    }

    #[test]
    fn union_keeps_same_element_under_different_scopes() {
        let a = xset!["a" => 1];
        let b = xset!["a" => 2];
        assert_eq!(union(&a, &b).card(), 2);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = xset!["a" => 1];
        assert_eq!(union(&a, &ExtendedSet::empty()), a);
        assert_eq!(union(&ExtendedSet::empty(), &a), a);
    }

    #[test]
    fn intersection_requires_matching_scope() {
        let a = xset!["a" => 1, "b" => 2];
        let b = xset!["a" => 9, "b" => 2];
        assert_eq!(intersection(&a, &b), xset!["b" => 2]);
    }

    #[test]
    fn difference_removes_exact_memberships() {
        let a = xset!["a" => 1, "a" => 2, "b" => 3];
        let b = xset!["a" => 2];
        assert_eq!(difference(&a, &b), xset!["a" => 1, "b" => 3]);
        assert_eq!(difference(&a, &ExtendedSet::empty()), a);
        assert!(difference(&a, &a).is_empty());
    }

    #[test]
    fn symmetric_difference_matches_definition() {
        let a = xset!["a" => 1, "b" => 2];
        let b = xset!["b" => 2, "c" => 3];
        let sym = symmetric_difference(&a, &b);
        assert_eq!(sym, union(&difference(&a, &b), &difference(&b, &a)));
        assert_eq!(sym, xset!["a" => 1, "c" => 3]);
    }

    #[test]
    fn disjointness() {
        let a = xset!["a" => 1];
        let b = xset!["a" => 2];
        let c = xset!["a" => 1, "z" => 9];
        assert!(disjoint(&a, &b));
        assert!(!disjoint(&a, &c));
        assert!(disjoint(&a, &ExtendedSet::empty()));
    }

    #[test]
    fn union_all_folds() {
        let sets = [xset!["a" => 1], xset!["b" => 2], xset!["c" => 3]];
        assert_eq!(union_all(sets.iter()), xset!["a" => 1, "b" => 2, "c" => 3]);
        assert!(union_all(std::iter::empty()).is_empty());
    }
}
