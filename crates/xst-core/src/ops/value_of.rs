//! σ-Value and Value (Definitions 9.8/9.9) — extracting an *element* from a
//! set-valued result, bridging XST's sets-to-sets behaviors back to CST's
//! elements-to-elements functions.
//!
//! ```text
//! 𝒱_σ(x) = b  ⟺  ∀y ( ⟨y⟩ ∈_⟨σ⟩ x → y = b )
//! 𝒱(x)   = b  ⟺  ∀y ( ⟨y⟩ ∈     x → y = b )
//! ```
//!
//! `x` is expected to contain singleton tuples `⟨y⟩`; `𝒱_σ` selects the one
//! whose membership scope is `⟨σ⟩`, `𝒱` the classically-scoped one. The
//! paper's Example 9.1 keeps all four square roots of 16 in one set and
//! selects among them by scope.

use crate::error::{XstError, XstResult};
use crate::set::ExtendedSet;
use crate::value::Value;

/// `𝒱_σ(x)` (Definition 9.8): the unique `y` with `⟨y⟩ ∈_⟨σ⟩ x`.
///
/// Errors with [`XstError::NoUniqueValue`] when no member — or more than
/// one distinct member — matches (the biconditional in 9.8 only defines a
/// value when it is unique).
pub fn sigma_value(x: &ExtendedSet, sigma: &Value) -> XstResult<Value> {
    let scope = Value::Set(ExtendedSet::tuple([sigma.clone()]));
    extract_unique(x, &scope)
}

/// `𝒱(x)` (Definition 9.9): the unique `y` with `⟨y⟩ ∈ x` (classical scope).
pub fn value(x: &ExtendedSet) -> XstResult<Value> {
    extract_unique(x, &Value::classical_scope())
}

fn extract_unique(x: &ExtendedSet, scope: &Value) -> XstResult<Value> {
    let mut found: Option<Value> = None;
    let mut distinct = 0usize;
    for (elem, s) in x.iter() {
        if s != scope {
            continue;
        }
        let Some(t) = elem.as_set() else { continue };
        let Some(components) = t.as_tuple() else {
            continue;
        };
        if components.len() != 1 {
            continue; // only singleton tuples ⟨y⟩ carry values
        }
        let y = &components[0];
        match &found {
            Some(prev) if prev == y => {}
            Some(_) => distinct += 1,
            None => {
                found = Some(y.clone());
                distinct = 1;
            }
        }
    }
    match (found, distinct) {
        (Some(v), 1) => Ok(v),
        (_, n) => Err(XstError::NoUniqueValue { candidates: n }),
    }
}

/// Example 9.1's square-root set: `√16 = {⟨4⟩^⟨+⟩, ⟨-4⟩^⟨-⟩, ...}`
/// generalized — build a multi-valued result set from labeled alternatives.
pub fn labeled_values<L, V>(alternatives: impl IntoIterator<Item = (L, V)>) -> ExtendedSet
where
    L: Into<Value>,
    V: Into<Value>,
{
    ExtendedSet::from_pairs(alternatives.into_iter().map(|(label, v)| {
        (
            Value::Set(ExtendedSet::tuple([v.into()])),
            Value::Set(ExtendedSet::tuple([label.into()])),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{xset, xtuple};

    /// Example 9.1: √16 carries all four roots, selected by scope.
    #[test]
    fn example_9_1_square_root() {
        // Represent 2i as the symbol "2i" (no complex atom needed to
        // reproduce the selection behavior).
        let roots = labeled_values([
            ("+", Value::Int(2)),
            ("-", Value::Int(-2)),
            ("i", Value::sym("2i")),
            ("-i", Value::sym("-2i")),
        ]);
        assert_eq!(
            sigma_value(&roots, &Value::sym("+")).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            sigma_value(&roots, &Value::sym("-")).unwrap(),
            Value::Int(-2)
        );
        assert_eq!(
            sigma_value(&roots, &Value::sym("i")).unwrap(),
            Value::sym("2i")
        );
        assert_eq!(
            sigma_value(&roots, &Value::sym("-i")).unwrap(),
            Value::sym("-2i")
        );
    }

    #[test]
    fn classical_value_extraction() {
        let x = xset![xtuple!["b"].into_value()];
        assert_eq!(value(&x).unwrap(), Value::sym("b"));
    }

    #[test]
    fn value_undefined_when_absent() {
        let x = xset![xtuple!["b"].into_value() => xtuple!["+"].into_value()];
        // No classically-scoped singleton tuple.
        assert!(matches!(
            value(&x),
            Err(XstError::NoUniqueValue { candidates: 0 })
        ));
        // No ⟨-⟩-scoped member either.
        assert!(sigma_value(&x, &Value::sym("-")).is_err());
    }

    #[test]
    fn value_undefined_when_ambiguous() {
        let x = xset![xtuple!["a"].into_value(), xtuple!["b"].into_value()];
        assert!(matches!(
            value(&x),
            Err(XstError::NoUniqueValue { candidates: 2 })
        ));
    }

    #[test]
    fn duplicate_identical_values_are_fine() {
        // The same ⟨y⟩ cannot appear twice in canonical form, but a y
        // reachable via one member is unique by construction.
        let x = xset![xtuple![7].into_value()];
        assert_eq!(value(&x).unwrap(), Value::Int(7));
    }

    #[test]
    fn non_singleton_tuples_are_ignored() {
        let x = xset![
            xtuple!["a", "b"].into_value(), // pair — not a value carrier
            xtuple!["c"].into_value()
        ];
        assert_eq!(value(&x).unwrap(), Value::sym("c"));
    }

    #[test]
    fn atoms_are_ignored() {
        let x = xset!["bare", xtuple!["c"].into_value()];
        assert_eq!(value(&x).unwrap(), Value::sym("c"));
    }
}
