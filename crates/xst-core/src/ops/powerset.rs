//! Powerset and the axiom-level operations of extended set theory.
//!
//! The axioms of XST (Blass & Childs, the paper's reference \[1\]) assert
//! closure of the universe under the classical constructions, re-read for
//! scoped membership. This module provides the constructive ones —
//! powerset, pairing, union-of-a-set, separation — and the crate's test
//! suite (plus the repo-level `tests/axioms.rs`) verifies their
//! characteristic properties on random sets.

use crate::ops::boolean::union;
use crate::set::{ExtendedSet, SetBuilder};
use crate::value::Value;

/// Practical guard: `powerset` of a set with more members than this is
/// refused (2^n members would be produced).
pub const MAX_POWERSET_INPUT: usize = 20;

/// The classical-scope powerset: every sub-multiset of `a`'s members, each
/// wrapped as a classically-scoped member of the result.
///
/// `a`'s scoped memberships are preserved inside each subset, so the
/// powerset of `{x^1, x^2}` has 4 members — scoped memberships are
/// distinct memberships.
///
/// # Panics
///
/// Panics if `a.card() > MAX_POWERSET_INPUT` (the result would be
/// astronomically large); callers wanting bounded enumeration should
/// filter members first.
pub fn powerset(a: &ExtendedSet) -> ExtendedSet {
    assert!(
        a.card() <= MAX_POWERSET_INPUT,
        "powerset of {} members refused (> {MAX_POWERSET_INPUT})",
        a.card()
    );
    let members = a.members();
    let n = members.len();
    let mut out = SetBuilder::with_capacity(1 << n);
    for mask in 0u32..(1 << n) {
        let subset = ExtendedSet::from_members(
            members
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, m)| m.clone())
                .collect(),
        );
        out.classical_elem(Value::Set(subset));
    }
    out.build()
}

/// Pairing: `{a, b}` with classical scopes.
pub fn pairing(a: &Value, b: &Value) -> ExtendedSet {
    ExtendedSet::classical([a.clone(), b.clone()])
}

/// Union of a set of sets: `⋃A = { x^s : ∃B,t (B ∈_t A ∧ x ∈_s B) }`.
/// Atom members of `A` contribute nothing (they have no members).
pub fn big_union(a: &ExtendedSet) -> ExtendedSet {
    let mut acc = ExtendedSet::empty();
    for (e, _) in a.iter() {
        if let Some(inner) = e.as_set() {
            acc = union(&acc, inner);
        }
    }
    acc
}

/// Separation: the members of `a` satisfying `predicate`.
pub fn separation(
    a: &ExtendedSet,
    mut predicate: impl FnMut(&Value, &Value) -> bool,
) -> ExtendedSet {
    ExtendedSet::from_members(
        a.members()
            .iter()
            .filter(|m| predicate(&m.element, &m.scope))
            .cloned()
            .collect(),
    )
}

/// Replacement along an element transformation: apply `f` to every member
/// element, keeping scopes.
pub fn replacement(a: &ExtendedSet, mut f: impl FnMut(&Value) -> Value) -> ExtendedSet {
    ExtendedSet::from_members(
        a.members()
            .iter()
            .map(|m| crate::set::Member::new(f(&m.element), m.scope.clone()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xset;

    #[test]
    fn powerset_cardinality() {
        assert_eq!(powerset(&ExtendedSet::empty()).card(), 1); // {∅}
        let a = xset!["a", "b"];
        let p = powerset(&a);
        assert_eq!(p.card(), 4);
        assert!(p.contains_classical(&Value::empty_set()));
        assert!(p.contains_classical(&a.into_value()));
    }

    #[test]
    fn powerset_counts_scoped_memberships() {
        // {x^1, x^2} has 2 members, so 4 subsets.
        let a = xset!["x" => 1, "x" => 2];
        assert_eq!(powerset(&a).card(), 4);
    }

    #[test]
    fn every_powerset_member_is_a_subset() {
        let a = xset!["a" => 1, "b", 3];
        for (e, _) in powerset(&a).iter() {
            assert!(e.as_set().unwrap().is_subset(&a));
        }
    }

    #[test]
    #[should_panic(expected = "powerset of 21 members refused")]
    fn powerset_guard() {
        let big = ExtendedSet::classical((0..21).map(Value::Int));
        let _ = powerset(&big);
    }

    #[test]
    fn pairing_axiom() {
        let p = pairing(&Value::sym("a"), &Value::sym("b"));
        assert_eq!(p.card(), 2);
        assert_eq!(pairing(&Value::sym("a"), &Value::sym("a")).card(), 1);
    }

    #[test]
    fn big_union_flattens_one_level() {
        let a = xset![
            xset!["x" => 1].into_value(),
            xset!["y" => 2, "x" => 1].into_value(),
            "atom"
        ];
        assert_eq!(big_union(&a), xset!["x" => 1, "y" => 2]);
        assert!(big_union(&ExtendedSet::empty()).is_empty());
    }

    #[test]
    fn separation_filters() {
        let a = xset![1, 2, 3, 4];
        let evens = separation(&a, |e, _| matches!(e, Value::Int(i) if i % 2 == 0));
        assert_eq!(evens, xset![2, 4]);
        assert!(evens.is_subset(&a));
    }

    #[test]
    fn replacement_maps_elements() {
        let a = xset![1 => "s", 2 => "t"];
        let doubled = replacement(&a, |e| match e {
            Value::Int(i) => Value::Int(i * 2),
            other => other.clone(),
        });
        assert_eq!(doubled, xset![2 => "s", 4 => "t"]);
    }

    #[test]
    fn replacement_can_merge() {
        // Non-injective replacement collapses members with equal images.
        let a = xset![1, 2];
        let constant = replacement(&a, |_| Value::sym("k"));
        assert_eq!(constant.card(), 1);
    }
}
