//! Iteration of behaviors: powers, transitive closure, and fixpoints.
//!
//! Composition (§11) makes behaviors a monoid, so iterated behavior is
//! definable: `f⁰ = I`, `fⁿ = f ∘ fⁿ⁻¹`. For pair relations this yields
//! the classical reachability operators — implemented here directly on the
//! scoped-set representation with semi-naive evaluation, since the
//! composed-carrier form (repeated `Process::compose`) re-tags scopes at
//! every step and is kept only as a cross-check in tests.

use crate::ops::boolean::{difference, union};
use crate::ops::image::Scope;
use crate::ops::product::relative_product;
use crate::set::ExtendedSet;
use crate::value::Value;

/// The composition-shaped relative-product scopes for classical pair
/// relations: match `f`'s position 2 against `g`'s position 1, keep `f`'s
/// position 1 and `g`'s position 2 in place (§10 recipe (1)).
fn pair_compose_scopes() -> (Scope, Scope) {
    (
        Scope::new(
            ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
            ExtendedSet::from_pairs([(Value::Int(2), Value::Int(1))]),
        ),
        Scope::new(
            ExtendedSet::from_pairs([(Value::Int(1), Value::Int(1))]),
            ExtendedSet::from_pairs([(Value::Int(2), Value::Int(2))]),
        ),
    )
}

/// `r ; s` — relational composition of two classical pair relations:
/// `{⟨x,z⟩ : ∃y (⟨x,y⟩ ∈ r ∧ ⟨y,z⟩ ∈ s)}`.
pub fn pair_compose(r: &ExtendedSet, s: &ExtendedSet) -> ExtendedSet {
    let (sigma, omega) = pair_compose_scopes();
    relative_product(r, &sigma, s, &omega)
}

/// `rⁿ` — the n-th relational power of a classical pair relation
/// (`r¹ = r`; `n = 0` is rejected by debug assertion — the identity
/// carrier depends on a universe).
pub fn pair_power(r: &ExtendedSet, n: u32) -> ExtendedSet {
    debug_assert!(n >= 1, "pair_power needs n >= 1");
    let mut acc = r.clone();
    for _ in 1..n {
        acc = pair_compose(&acc, r);
    }
    acc
}

/// `r⁺` — transitive closure of a classical pair relation, computed
/// semi-naively: only newly-discovered pairs are re-joined each round.
pub fn transitive_closure(r: &ExtendedSet) -> ExtendedSet {
    let mut closure = r.clone();
    let mut frontier = r.clone();
    while !frontier.is_empty() {
        let next = pair_compose(&frontier, r);
        let new = difference(&next, &closure);
        if new.is_empty() {
            break;
        }
        closure = union(&closure, &new);
        frontier = new;
    }
    closure
}

/// `r*` restricted to the elements that occur in `r`: the reflexive
/// transitive closure over `r`'s own field (1-domain ∪ 2-domain).
pub fn reflexive_transitive_closure(r: &ExtendedSet) -> ExtendedSet {
    let mut identity_pairs = Vec::new();
    for (e, _) in r.iter() {
        if let Some(t) = e.as_set().and_then(ExtendedSet::as_tuple) {
            for v in t {
                identity_pairs.push(Value::Set(ExtendedSet::pair(v.clone(), v)));
            }
        }
    }
    union(
        &transitive_closure(r),
        &ExtendedSet::classical(identity_pairs),
    )
}

/// Iterate a *set-to-set* endofunction on sets to its inflationary
/// fixpoint: `x, x ∪ f(x), x ∪ f(x) ∪ f(f(x)), …`, bounded by `max_rounds`.
/// Returns `None` if the bound is hit before stabilizing.
pub fn inflationary_fixpoint(
    mut apply: impl FnMut(&ExtendedSet) -> ExtendedSet,
    start: &ExtendedSet,
    max_rounds: usize,
) -> Option<ExtendedSet> {
    let mut current = start.clone();
    for _ in 0..max_rounds {
        let next = union(&current, &apply(&current));
        if next == current {
            return Some(current);
        }
        current = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use crate::xset;

    fn chain() -> ExtendedSet {
        // a → b → c → d
        xset![
            ExtendedSet::pair("a", "b").into_value(),
            ExtendedSet::pair("b", "c").into_value(),
            ExtendedSet::pair("c", "d").into_value()
        ]
    }

    #[test]
    fn pair_compose_is_relational_composition() {
        let r = chain();
        let rr = pair_compose(&r, &r);
        assert_eq!(
            rr,
            xset![
                ExtendedSet::pair("a", "c").into_value() => Value::empty_set(),
                ExtendedSet::pair("b", "d").into_value() => Value::empty_set()
            ]
        );
    }

    #[test]
    fn pair_compose_agrees_with_process_compose() {
        // Cross-check against the canonical Process composition on
        // behaviors: both realize g(f(x)).
        let f = chain();
        let g = xset![
            ExtendedSet::pair("b", "Q").into_value(),
            ExtendedSet::pair("d", "R").into_value()
        ];
        let via_pairs = Process::pairs(pair_compose(&f, &g));
        let via_process = Process::compose(&Process::pairs(g), &Process::pairs(f)).unwrap();
        assert!(via_pairs.equivalent(&via_process));
    }

    #[test]
    fn powers_walk_the_chain() {
        let r = chain();
        assert_eq!(pair_power(&r, 1), r);
        assert_eq!(pair_power(&r, 2).card(), 2); // a→c, b→d
        assert_eq!(
            pair_power(&r, 3),
            xset![ExtendedSet::pair("a", "d").into_value() => Value::empty_set()]
        );
        assert!(pair_power(&r, 4).is_empty());
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let r = chain();
        let tc = transitive_closure(&r);
        assert_eq!(tc.card(), 6); // ab ac ad bc bd cd
        assert!(tc.contains_element(&ExtendedSet::pair("a", "d").into_value()));
        assert!(!tc.contains_element(&ExtendedSet::pair("d", "a").into_value()));
    }

    #[test]
    fn transitive_closure_of_a_cycle_terminates() {
        let r = xset![
            ExtendedSet::pair("a", "b").into_value(),
            ExtendedSet::pair("b", "a").into_value()
        ];
        let tc = transitive_closure(&r);
        assert_eq!(tc.card(), 4); // ab ba aa bb
        assert!(tc.contains_element(&ExtendedSet::pair("a", "a").into_value()));
    }

    #[test]
    fn transitive_closure_of_empty_is_empty() {
        assert!(transitive_closure(&ExtendedSet::empty()).is_empty());
    }

    #[test]
    fn reflexive_closure_adds_identities() {
        let r = xset![ExtendedSet::pair("a", "b").into_value()];
        let rtc = reflexive_transitive_closure(&r);
        assert_eq!(rtc.card(), 3); // ab aa bb
        assert!(rtc.contains_element(&ExtendedSet::pair("a", "a").into_value()));
        assert!(rtc.contains_element(&ExtendedSet::pair("b", "b").into_value()));
    }

    #[test]
    fn fixpoint_reaches_reachability() {
        // Frontier expansion from {⟨a⟩} along the chain reaches all nodes.
        let r = Process::pairs(chain());
        let start = xset![ExtendedSet::tuple(["a"]).into_value()];
        let all = inflationary_fixpoint(|x| r.apply(x), &start, 10).unwrap();
        assert_eq!(all.card(), 4); // ⟨a⟩, ⟨b⟩, ⟨c⟩, ⟨d⟩
    }

    #[test]
    fn fixpoint_bound_is_respected() {
        // A generator that never stabilizes within the bound.
        let mut i = 0i64;
        let result = inflationary_fixpoint(
            |_| {
                i += 1;
                xset![ExtendedSet::tuple([Value::Int(i)]).into_value()]
            },
            &ExtendedSet::empty(),
            3,
        );
        assert!(result.is_none());
    }
}
