//! The XST operation algebra, one module per operation family.
//!
//! | Module | Paper definitions |
//! |---|---|
//! | [`boolean`] | union, intersection, difference (used throughout §7, C.1) |
//! | [`rescope`] | 7.3 re-scope by scope, 7.5 re-scope by element |
//! | [`domain`] | 7.4 σ-domain |
//! | [`restrict`] | 7.6 σ-restriction |
//! | [`mod@image`] | 3.10 / 7.1 image, process scopes |
//! | [`product`] | 9.2 concatenation, 9.3 `⊗`, 9.5–9.7 tag/`×`, 10.1 relative product |
//! | [`value_of`] | 9.8 σ-value, 9.9 value |
//! | [`closure`] | iterated behavior: powers, transitive closure, fixpoints (§11 extended) |
//! | [`partition`] | scope partitioning — grouping as a set operation |
//! | [`mod@powerset`] | axiom-level constructions: powerset, pairing, ⋃, separation, replacement |

pub mod boolean;
pub mod closure;
pub mod domain;
pub mod image;
pub mod par;
pub mod partition;
pub mod powerset;
pub mod product;
pub mod rescope;
pub mod restrict;
pub mod scatter;
pub mod value_of;

pub use boolean::{difference, disjoint, intersection, symmetric_difference, union, union_all};
pub use closure::{
    inflationary_fixpoint, pair_compose, pair_power, reflexive_transitive_closure,
    transitive_closure,
};
pub use domain::{sigma_domain, sigma_domain_members};
pub use image::{image, image_two_pass, Scope};
pub use par::{
    par_image, par_intersection, par_relative_product, par_sigma_restrict, par_union, Parallelism,
    DEFAULT_PARALLEL_THRESHOLD,
};
pub use partition::{flatten_partition, group_by_key, partition_by_scope};
pub use powerset::{big_union, pairing, powerset, replacement, separation};
pub use product::{cartesian, concat, cross, relative_product, scope_disjoint_union, tag};
pub use rescope::{
    rescope_by_element, rescope_by_scope, rescope_value_by_element, rescope_value_by_scope,
};
pub use restrict::{sigma_restrict, sigma_restrict_naive};
pub use scatter::{
    gather, partition_members, scatter_difference_whole, scatter_image, scatter_intersection_whole,
    scatter_relative_product, scatter_restrict, scatter_union, scatter_zip_difference,
    scatter_zip_intersection,
};
pub use value_of::{labeled_values, sigma_value, value};
