//! The universe of XST values.
//!
//! Extended sets are heterogeneous and arbitrarily nested: a member element —
//! and a member *scope* — may be an atom (symbol, integer, string, ...) or
//! another extended set. [`Value`] is the closed universe over which the
//! whole algebra operates.
//!
//! `Value` carries a **total order** (sets compare lexicographically over
//! their canonical member sequences, atoms compare within their kind, kinds
//! compare by a fixed rank). The total order is what lets
//! [`ExtendedSet`] keep a canonical sorted form, so
//! set equality is plain structural equality and membership is a binary
//! search.

use crate::set::ExtendedSet;
use std::cmp::Ordering;
use std::sync::Arc;

/// A single XST value: an atom or a nested extended set.
///
/// The *classical scope* — the scope under which ordinary (unscoped) set
/// membership is modeled — is the empty set, [`Value::empty_set`]. See the
/// paper's Appendix A, where classical pairs are written `⟨x,y⟩^{⟨∅,∅⟩}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Boolean atom.
    Bool(bool),
    /// Signed integer atom. Tuple positions (Definition 9.1) are `Int`s.
    Int(i64),
    /// IEEE-754 double, ordered by `total_cmp` so `Value` stays `Ord`.
    Float(OrderedF64),
    /// Interned-ish symbolic atom (`a`, `x`, `+`, ...). Cheap to clone.
    Sym(Arc<str>),
    /// String data atom (distinct from `Sym` so data strings and symbolic
    /// labels never collide).
    Str(Arc<str>),
    /// Raw byte-string atom.
    Bytes(Arc<[u8]>),
    /// A nested extended set.
    Set(ExtendedSet),
}

/// Total-ordering wrapper for `f64` using IEEE-754 `total_cmp`.
///
/// NaNs are admitted and ordered after all other floats (per `total_cmp`);
/// `-0.0` and `+0.0` are distinct values under this order, which keeps
/// canonicalization deterministic.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Value {
    /// Rank used to order values of different kinds.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Sym(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
            Value::Set(_) => 6,
        }
    }

    /// The empty extended set, `∅`. Also the *classical scope*.
    pub fn empty_set() -> Value {
        Value::Set(ExtendedSet::empty())
    }

    /// The scope denoting classical (unscoped) membership: `∅`.
    pub fn classical_scope() -> Value {
        Value::empty_set()
    }

    /// True iff this value is the empty set `∅`.
    pub fn is_empty_set(&self) -> bool {
        matches!(self, Value::Set(s) if s.is_empty())
    }

    /// Symbol constructor.
    pub fn sym(s: impl AsRef<str>) -> Value {
        Value::Sym(Arc::from(s.as_ref()))
    }

    /// String-data constructor.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Byte-string constructor.
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// Integer constructor (ergonomic alias for `Value::Int`).
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Float constructor.
    pub fn float(f: f64) -> Value {
        Value::Float(OrderedF64(f))
    }

    /// Borrow the inner set if this value is a set.
    pub fn as_set(&self) -> Option<&ExtendedSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Consume the value, returning the inner set if it is one.
    pub fn into_set(self) -> Option<ExtendedSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// View any value as a set for the re-scope operations of §7: atoms act
    /// like `∅` (they have no scoped members), sets act as themselves.
    ///
    /// The paper defines `A^{/σ/}` and `A^{\σ\}` only for sets; extending
    /// atoms as memberless keeps the algebra total without changing any
    /// behavior on the paper's own examples (an atom's re-scope is `∅`).
    pub fn as_set_view(&self) -> ExtendedSet {
        match self {
            Value::Set(s) => s.clone(),
            _ => ExtendedSet::empty(),
        }
    }

    /// True iff `self` is an n-tuple per Definition 9.1 (possibly n = 0).
    pub fn is_tuple(&self) -> bool {
        match self {
            Value::Set(s) => s.tuple_len().is_some(),
            _ => false,
        }
    }

    /// Depth of nesting: atoms are 0, a set is 1 + max depth of member
    /// elements and scopes. Useful for fuzzing bounds and diagnostics.
    pub fn depth(&self) -> usize {
        match self {
            Value::Set(s) => {
                1 + s
                    .members()
                    .iter()
                    .map(|m| m.element.depth().max(m.scope.depth()))
                    .max()
                    .unwrap_or(0)
            }
            _ => 0,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.cmp(b),
            (Sym(a), Sym(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Set(a), Set(b)) => a.cmp(b),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}
impl From<&str> for Value {
    /// Bare string literals become *symbols* — the paper's `a`, `b`, `x`...
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}
impl From<ExtendedSet> for Value {
    fn from(s: ExtendedSet) -> Self {
        Value::Set(s)
    }
}

/// Shorthand for [`Value::sym`], used pervasively in tests and examples.
pub fn sym(s: &str) -> Value {
    Value::sym(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::ExtendedSet;

    #[test]
    fn kind_order_is_stable() {
        let vals = [
            Value::Bool(true),
            Value::Int(0),
            Value::float(0.0),
            Value::sym("a"),
            Value::str("a"),
            Value::bytes([1u8]),
            Value::empty_set(),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} should precede {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn sym_and_str_are_distinct() {
        assert_ne!(Value::sym("a"), Value::str("a"));
    }

    #[test]
    fn float_total_order_handles_nan_and_zero() {
        let nan = Value::float(f64::NAN);
        let one = Value::float(1.0);
        let neg_zero = Value::float(-0.0);
        let pos_zero = Value::float(0.0);
        assert!(one < nan); // totalOrder puts +NaN after numbers
        assert!(neg_zero < pos_zero);
        assert_eq!(Value::float(2.5), Value::float(2.5));
    }

    #[test]
    fn empty_set_is_classical_scope() {
        assert_eq!(Value::classical_scope(), Value::empty_set());
        assert!(Value::empty_set().is_empty_set());
        assert!(!Value::Int(0).is_empty_set());
    }

    #[test]
    fn atom_set_view_is_empty() {
        assert!(Value::sym("a").as_set_view().is_empty());
        assert_eq!(
            Value::Set(ExtendedSet::classical([Value::Int(1)]))
                .as_set_view()
                .card(),
            1
        );
    }

    #[test]
    fn depth_counts_nesting() {
        assert_eq!(Value::Int(3).depth(), 0);
        assert_eq!(Value::empty_set().depth(), 1);
        let nested = Value::Set(ExtendedSet::classical([Value::empty_set()]));
        assert_eq!(nested.depth(), 2);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::sym("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn set_comparison_is_lexicographic() {
        let a = ExtendedSet::classical([Value::Int(1)]);
        let b = ExtendedSet::classical([Value::Int(1), Value::Int(2)]);
        assert!(Value::Set(a) < Value::Set(b));
    }
}
