//! Classical set theory (CST) compatibility layer (§3, Theorem 9.10).
//!
//! The paper grounds XST by showing the classical relation algebra is the
//! special case where relations are classically-scoped sets of ordered
//! pairs. This module provides that view:
//!
//! * [`CstRelation`] — a set of pairs `⟨x, y⟩` with classical membership;
//! * the classical operators of Definitions 3.1–3.6: image, restriction,
//!   1-domain, 2-domain;
//! * [`CstFunction`] — Definition 3.2's element-to-element function object;
//! * the Theorem 9.10 embedding: every CST function is represented by an
//!   XST behavior with `σ = ⟨⟨1⟩, ⟨2⟩⟩`, via `f(x) = 𝒱(f_(σ)({⟨x⟩}))`.

use crate::error::{XstError, XstResult};
use crate::ops::image::Scope;
use crate::process::Process;
use crate::set::{ExtendedSet, SetBuilder};
use crate::value::Value;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A classical binary relation: a classically-scoped set of ordered pairs
/// `⟨x, y⟩ = {x^1, y^2}` (Definition 7.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CstRelation {
    pairs: BTreeSet<(Value, Value)>,
}

impl CstRelation {
    /// The empty relation.
    pub fn empty() -> CstRelation {
        CstRelation {
            pairs: BTreeSet::new(),
        }
    }

    /// Build from `(x, y)` pairs.
    pub fn from_pairs<A: Into<Value>, B: Into<Value>>(
        pairs: impl IntoIterator<Item = (A, B)>,
    ) -> CstRelation {
        CstRelation {
            pairs: pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate the pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, Value)> + '_ {
        self.pairs.iter()
    }

    /// Pair membership `⟨x,y⟩ ∈ R`.
    pub fn contains(&self, x: &Value, y: &Value) -> bool {
        self.pairs.contains(&(x.clone(), y.clone()))
    }

    /// CST Image (Definition 3.1):
    /// `R[A] = { y : ∃x (x ∈ A ∧ ⟨x,y⟩ ∈ R) }`.
    pub fn cst_image(&self, a: &BTreeSet<Value>) -> BTreeSet<Value> {
        self.pairs
            .iter()
            .filter(|(x, _)| a.contains(x))
            .map(|(_, y)| y.clone())
            .collect()
    }

    /// CST Restriction (Definition 3.3):
    /// `R | A = { ⟨x,y⟩ : ⟨x,y⟩ ∈ R ∧ x ∈ A }`.
    pub fn cst_restrict(&self, a: &BTreeSet<Value>) -> CstRelation {
        CstRelation {
            pairs: self
                .pairs
                .iter()
                .filter(|(x, _)| a.contains(x))
                .cloned()
                .collect(),
        }
    }

    /// CST 1-Domain (Definition 3.4): all first components.
    pub fn domain1(&self) -> BTreeSet<Value> {
        self.pairs.iter().map(|(x, _)| x.clone()).collect()
    }

    /// CST 2-Domain (Definition 3.5): all second components.
    pub fn domain2(&self) -> BTreeSet<Value> {
        self.pairs.iter().map(|(_, y)| y.clone()).collect()
    }

    /// CST relative product `R / S = { ⟨x,z⟩ : ∃y (⟨x,y⟩ ∈ R ∧ ⟨y,z⟩ ∈ S) }`
    /// (the "bland" §10 warm-up example).
    pub fn cst_relative_product(&self, other: &CstRelation) -> CstRelation {
        let mut by_first: BTreeMap<&Value, Vec<&Value>> = BTreeMap::new();
        for (y, z) in other.pairs.iter() {
            by_first.entry(y).or_default().push(z);
        }
        let mut pairs = BTreeSet::new();
        for (x, y) in self.pairs.iter() {
            if let Some(zs) = by_first.get(y) {
                for z in zs {
                    pairs.insert((x.clone(), (*z).clone()));
                }
            }
        }
        CstRelation { pairs }
    }

    /// Is the relation single-valued (no first component with two distinct
    /// second components)?
    pub fn is_single_valued(&self) -> bool {
        let mut last: Option<&Value> = None;
        for (x, _) in self.pairs.iter() {
            if last == Some(x) {
                return false; // BTreeSet orders equal firsts adjacently
            }
            last = Some(x);
        }
        true
    }

    /// View the relation as an extended set of classical pairs.
    pub fn to_extended(&self) -> ExtendedSet {
        let mut b = SetBuilder::with_capacity(self.pairs.len());
        for (x, y) in self.pairs.iter() {
            b.classical_elem(Value::Set(ExtendedSet::pair(x.clone(), y.clone())));
        }
        b.build()
    }

    /// Recover a relation from an extended set of classically-scoped pairs.
    /// Non-pair or non-classical members are rejected.
    pub fn from_extended(set: &ExtendedSet) -> XstResult<CstRelation> {
        let mut pairs = BTreeSet::new();
        for (elem, scope) in set.iter() {
            if !scope.is_empty_set() {
                return Err(XstError::NotATuple {
                    value: format!("{elem}^{scope} (non-classical scope)"),
                });
            }
            let components = elem
                .as_set()
                .and_then(ExtendedSet::as_tuple)
                .ok_or_else(|| XstError::NotATuple {
                    value: format!("{elem}"),
                })?;
            let [x, y] = components.as_slice() else {
                return Err(XstError::NotATuple {
                    value: format!("{elem} (arity ≠ 2)"),
                });
            };
            pairs.insert((x.clone(), y.clone()));
        }
        Ok(CstRelation { pairs })
    }

    /// The XST behavior representing this relation (Theorem 9.10 direction:
    /// relation → process with `σ = ⟨⟨1⟩,⟨2⟩⟩`).
    pub fn to_process(&self) -> Process {
        Process::new(self.to_extended(), Scope::pairs())
    }
}

/// A CST function object (Definition 3.2): a single-valued relation with
/// element-to-element application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CstFunction {
    relation: CstRelation,
}

impl CstFunction {
    /// Build from a relation, verifying single-valuedness.
    pub fn new(relation: CstRelation) -> XstResult<CstFunction> {
        if !relation.is_single_valued() {
            // Find the offending input for the error message.
            let mut last: Option<&Value> = None;
            for (x, _) in relation.pairs.iter() {
                if last == Some(x) {
                    return Err(XstError::NotAFunction {
                        input: format!("{x}"),
                        image_len: relation.pairs.iter().filter(|(a, _)| a == x).count(),
                    });
                }
                last = Some(x);
            }
            unreachable!("is_single_valued and the scan disagree");
        }
        Ok(CstFunction { relation })
    }

    /// Build directly from pairs.
    pub fn from_pairs<A: Into<Value>, B: Into<Value>>(
        pairs: impl IntoIterator<Item = (A, B)>,
    ) -> XstResult<CstFunction> {
        CstFunction::new(CstRelation::from_pairs(pairs))
    }

    /// Classical application `f(x) = b ⟺ f[{x}] = {b}` (Definition 3.2).
    pub fn apply(&self, x: &Value) -> Option<Value> {
        self.relation
            .pairs
            .iter()
            .find(|(a, _)| a == x)
            .map(|(_, b)| b.clone())
    }

    /// The underlying relation.
    pub fn relation(&self) -> &CstRelation {
        &self.relation
    }

    /// The Theorem 9.10 embedding as an XST behavior.
    pub fn to_process(&self) -> Process {
        self.relation.to_process()
    }

    /// Verify Theorem 9.10 on this function: for every `x` in the domain,
    /// `f(x) = 𝒱(f_(σ)({⟨x⟩}))`.
    pub fn embedding_agrees(&self) -> bool {
        let p = self.to_process();
        self.relation.domain1().iter().all(|x| {
            let classical = self.apply(x);
            let behavioral = p.apply_value(x).ok();
            classical == behavioral
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::sym;

    fn rel() -> CstRelation {
        CstRelation::from_pairs([("a", "x"), ("b", "y"), ("c", "x")])
    }

    #[test]
    fn cst_image_definition_3_1() {
        let r = rel();
        let a: BTreeSet<Value> = [sym("a"), sym("c")].into_iter().collect();
        let img = r.cst_image(&a);
        assert_eq!(img, [sym("x")].into_iter().collect());
    }

    #[test]
    fn image_equals_domain2_of_restriction() {
        // Definition 3.6: R[A] = 𝔇₂(R|A).
        let r = rel();
        let a: BTreeSet<Value> = [sym("a"), sym("b")].into_iter().collect();
        assert_eq!(r.cst_image(&a), r.cst_restrict(&a).domain2());
    }

    #[test]
    fn domains() {
        let r = rel();
        assert_eq!(
            r.domain1(),
            [sym("a"), sym("b"), sym("c")].into_iter().collect()
        );
        assert_eq!(r.domain2(), [sym("x"), sym("y")].into_iter().collect());
    }

    #[test]
    fn cst_relative_product_warmup() {
        // {⟨a,b⟩} / {⟨b,c⟩} = {⟨a,c⟩} — §10's CST example.
        let r = CstRelation::from_pairs([("a", "b")]);
        let s = CstRelation::from_pairs([("b", "c")]);
        assert_eq!(
            r.cst_relative_product(&s),
            CstRelation::from_pairs([("a", "c")])
        );
    }

    #[test]
    fn function_rejects_multivalued_relation() {
        let r = CstRelation::from_pairs([("a", "x"), ("a", "y")]);
        assert!(!r.is_single_valued());
        assert!(matches!(
            CstFunction::new(r),
            Err(XstError::NotAFunction { image_len: 2, .. })
        ));
    }

    #[test]
    fn function_application() {
        let f = CstFunction::from_pairs([("a", "x"), ("b", "y")]).unwrap();
        assert_eq!(f.apply(&sym("a")), Some(sym("x")));
        assert_eq!(f.apply(&sym("q")), None);
    }

    #[test]
    fn extended_roundtrip() {
        let r = rel();
        let e = r.to_extended();
        assert_eq!(CstRelation::from_extended(&e).unwrap(), r);
    }

    #[test]
    fn from_extended_rejects_non_pairs() {
        let bad = ExtendedSet::classical([Value::sym("atom")]);
        assert!(CstRelation::from_extended(&bad).is_err());
        let triple = ExtendedSet::classical([Value::Set(ExtendedSet::tuple(["a", "b", "c"]))]);
        assert!(CstRelation::from_extended(&triple).is_err());
        let scoped = ExtendedSet::singleton(Value::Set(ExtendedSet::pair("a", "b")), Value::Int(9));
        assert!(CstRelation::from_extended(&scoped).is_err());
    }

    #[test]
    fn theorem_9_10_embedding() {
        let f = CstFunction::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]).unwrap();
        assert!(f.embedding_agrees());
        assert_eq!(f.to_process().apply_value(&sym("c")).unwrap(), sym("x"));
    }

    #[test]
    fn relation_process_roundtrip_behavior() {
        // The behavior of the embedded process matches the relation's
        // classical image on every domain element.
        let r = rel();
        let p = r.to_process();
        for x in r.domain1() {
            let a: BTreeSet<Value> = [x.clone()].into_iter().collect();
            let classical = r.cst_image(&a);
            let behavioral: BTreeSet<Value> = p
                .apply(&ExtendedSet::classical([Value::Set(ExtendedSet::tuple([
                    x.clone(),
                ]))]))
                .iter()
                .filter_map(|(e, _)| {
                    e.as_set()
                        .and_then(ExtendedSet::as_tuple)
                        .map(|t| t[0].clone())
                })
                .collect();
            assert_eq!(classical, behavioral);
        }
    }
}
