//! Process spaces and function spaces (§5, §6, Appendices D/E).
//!
//! A 𝒫-space `𝒫(A,B)` collects every process from domain `A` to codomain
//! `B`; an ℱ-space is its functional sub-collection. Refinements impose the
//! paper's five conditions:
//!
//! | symbol | condition |
//! |---|---|
//! | `[` | *on* `A`: `𝔇_σ1(f) = A` |
//! | `]` | *onto* `B`: `𝔇_σ2(f) = B` |
//! | `>` | many-to-one associations allowed |
//! | `-` | one-to-one associations allowed |
//! | `<` | one-to-many associations allowed |
//!
//! Combining the on/onto restrictions with the association alphabet yields
//! the paper's **16 basic** process spaces of which **8** are function
//! spaces (Appendix D), and **29 refined** spaces of which **12** are
//! non-empty function spaces (Appendix E). The refined lattice is modeled
//! here as: 4 on/onto choices × 7 non-empty subsets of `{>,-,<}`, plus the
//! degenerate bottom (empty association set — an always-empty space); the
//! original Appendix E graphic is not in the supplied text, so the counts
//! (29/12) are the specification we reproduce.
//!
//! # Quantifier relativization
//!
//! Definitions 5.1–6.3 quantify over *all* sets. Mechanically we relativize
//! the quantifiers to the behavior's minimal singleton probes
//! ([`crate::process::Process::singleton_probes`]): application is additive
//! over union (Consequence 8.1(a)), so behavior on arbitrary inputs is
//! determined by behavior on the singletons that can non-vacuously match,
//! and those are exactly the minimal probes.

use crate::process::Process;
use crate::set::ExtendedSet;

/// Association classes a space admits (the `> - <` alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssocSet {
    /// `>` — many-to-one pairs admitted.
    pub many_to_one: bool,
    /// `-` — one-to-one pairs admitted.
    pub one_to_one: bool,
    /// `<` — one-to-many pairs admitted.
    pub one_to_many: bool,
}

impl AssocSet {
    /// All associations admitted — the unrestricted space.
    pub const ANY: AssocSet = AssocSet {
        many_to_one: true,
        one_to_one: true,
        one_to_many: true,
    };
    /// Function associations only (`>` and `-`).
    pub const FUNCTIONAL: AssocSet = AssocSet {
        many_to_one: true,
        one_to_one: true,
        one_to_many: false,
    };
    /// One-to-one only (`-`).
    pub const ONE_TO_ONE: AssocSet = AssocSet {
        many_to_one: false,
        one_to_one: true,
        one_to_many: false,
    };

    /// Is this a *function* constraint (no one-to-many admitted, something
    /// admitted)?
    pub fn is_functional(&self) -> bool {
        !self.one_to_many && (self.many_to_one || self.one_to_one)
    }

    /// The degenerate bottom: nothing admitted (always-empty space).
    pub fn is_bottom(&self) -> bool {
        !self.many_to_one && !self.one_to_one && !self.one_to_many
    }

    /// All 8 subsets of the alphabet, bottom included.
    pub fn all() -> Vec<AssocSet> {
        let mut out = Vec::with_capacity(8);
        for bits in 0u8..8 {
            out.push(AssocSet {
                many_to_one: bits & 1 != 0,
                one_to_one: bits & 2 != 0,
                one_to_many: bits & 4 != 0,
            });
        }
        out
    }
}

/// A (possibly refined) process-space specification over a fixed domain and
/// codomain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSpec {
    /// `[` — require `𝔇_σ1(f) = A`.
    pub on: bool,
    /// `]` — require `𝔇_σ2(f) = B`.
    pub onto: bool,
    /// Which associations the space admits.
    pub assoc: AssocSet,
}

impl SpaceSpec {
    /// The unrestricted 𝒫-space spec `𝒫(A,B)`.
    pub fn process() -> SpaceSpec {
        SpaceSpec {
            on: false,
            onto: false,
            assoc: AssocSet::ANY,
        }
    }

    /// The ℱ-space spec `ℱ(A,B)` (Definition 5.2).
    pub fn function() -> SpaceSpec {
        SpaceSpec {
            on: false,
            onto: false,
            assoc: AssocSet::FUNCTIONAL,
        }
    }

    /// Injective spec `ℱ*[A,B)` (Definition 6.4).
    pub fn injective() -> SpaceSpec {
        SpaceSpec {
            on: true,
            onto: false,
            assoc: AssocSet::ONE_TO_ONE,
        }
    }

    /// Surjective spec `ℱ[A,B]` (Definition 6.5).
    pub fn surjective() -> SpaceSpec {
        SpaceSpec {
            on: true,
            onto: true,
            assoc: AssocSet::FUNCTIONAL,
        }
    }

    /// Bijective spec `ℱ*[A,B]` (Definition 6.6).
    pub fn bijective() -> SpaceSpec {
        SpaceSpec {
            on: true,
            onto: true,
            assoc: AssocSet::ONE_TO_ONE,
        }
    }

    /// Is this spec a function-space spec (one-to-many excluded)?
    pub fn is_function_space(&self) -> bool {
        self.assoc.is_functional()
    }

    /// Render in the paper's condition alphabet, e.g. `[>-]`.
    pub fn notation(&self) -> String {
        let mut s = String::new();
        s.push(if self.on { '[' } else { '(' });
        if self.assoc.many_to_one {
            s.push('>');
        }
        if self.assoc.one_to_one {
            s.push('-');
        }
        if self.assoc.one_to_many {
            s.push('<');
        }
        s.push(if self.onto { ']' } else { ')' });
        s
    }

    /// Spec-level containment: every behavior admitted by `self` is
    /// admitted by `other` (Consequence 6.1 generalized).
    pub fn is_subspace_of(&self, other: &SpaceSpec) -> bool {
        // Stricter on/onto flags and fewer admitted associations.
        (self.on || !other.on)
            && (self.onto || !other.onto)
            && (!self.assoc.many_to_one || other.assoc.many_to_one)
            && (!self.assoc.one_to_one || other.assoc.one_to_one)
            && (!self.assoc.one_to_many || other.assoc.one_to_many)
    }
}

/// The 16 **basic** process spaces of Appendix D: on/onto (4 combinations)
/// × association constraint drawn from {unrestricted, `>`, `-`, `<`}.
pub fn basic_spaces() -> Vec<SpaceSpec> {
    let assoc_choices = [
        AssocSet::ANY,
        AssocSet {
            many_to_one: true,
            one_to_one: true,
            one_to_many: false,
        }, // functions
        AssocSet {
            many_to_one: false,
            one_to_one: true,
            one_to_many: false,
        }, // 1-1 functions
        AssocSet {
            many_to_one: false,
            one_to_one: true,
            one_to_many: true,
        }, // no many-to-one (invertible relations)
    ];
    let mut out = Vec::with_capacity(16);
    for &on in &[false, true] {
        for &onto in &[false, true] {
            for assoc in assoc_choices {
                out.push(SpaceSpec { on, onto, assoc });
            }
        }
    }
    out
}

/// The 29 **refined** process spaces of Appendix E: on/onto (4) × non-empty
/// association subsets (7), plus the degenerate bottom.
pub fn refined_spaces() -> Vec<SpaceSpec> {
    let mut out = Vec::with_capacity(29);
    for &on in &[false, true] {
        for &onto in &[false, true] {
            for assoc in AssocSet::all() {
                if !assoc.is_bottom() {
                    out.push(SpaceSpec { on, onto, assoc });
                }
            }
        }
    }
    out.push(SpaceSpec {
        on: false,
        onto: false,
        assoc: AssocSet {
            many_to_one: false,
            one_to_one: false,
            one_to_many: false,
        },
    });
    out
}

/// Membership test: is `f ∈_σ` the space `spec` carved from `𝒫(A, B)`
/// (Definitions 5.1–6.6)?
///
/// * domain side: `𝔇_σ1(f) ⊆̇ A` (non-empty subset, per the Def 5.1 note),
///   strengthened to equality when `spec.on`;
/// * codomain side: `𝔇_σ2(f) ⊆̇ B`, equality when `spec.onto` (since every
///   image is contained in `𝔇_σ2(f)`, the `∀x (f_(σ)(x) ⊆ B)` clause of
///   Definition 5.1 follows from the codomain containment);
/// * association side: the behavior's observed association classes must be
///   admitted by `spec.assoc`.
pub fn in_space(f: &Process, spec: &SpaceSpec, a: &ExtendedSet, b: &ExtendedSet) -> bool {
    let d1 = f.domain();
    let d2 = f.codomain();
    let dom_ok = if spec.on {
        d1 == *a
    } else {
        d1.is_nonempty_subset(a)
    };
    if !dom_ok {
        return false;
    }
    let cod_ok = if spec.onto {
        d2 == *b
    } else {
        d2.is_nonempty_subset(b)
    };
    if !cod_ok {
        return false;
    }
    let one_to_many = f.is_one_to_many();
    let many_to_one = f.is_many_to_one();
    if one_to_many && !spec.assoc.one_to_many {
        return false;
    }
    if many_to_one && !spec.assoc.many_to_one {
        return false;
    }
    // A behavior with neither defect exhibits only one-to-one pairs.
    if !one_to_many && !many_to_one && !spec.assoc.one_to_one {
        return false;
    }
    true
}

/// Arrow notation (Definitions 6.7/6.8): `f_(σ): A → B` iff `f ∈_σ 𝒫(A,B)`.
pub fn arrow(f: &Process, a: &ExtendedSet, b: &ExtendedSet) -> bool {
    in_space(f, &SpaceSpec::process(), a, b)
}

/// Every refined space (Appendix E) containing `f` over `A → B`, most
/// specific first (fewest admitted associations, then on/onto strictness).
pub fn classify(f: &Process, a: &ExtendedSet, b: &ExtendedSet) -> Vec<SpaceSpec> {
    let mut out: Vec<SpaceSpec> = refined_spaces()
        .into_iter()
        .filter(|spec| in_space(f, spec, a, b))
        .collect();
    out.sort_by_key(|s| {
        let admitted = usize::from(s.assoc.many_to_one)
            + usize::from(s.assoc.one_to_one)
            + usize::from(s.assoc.one_to_many);
        let strictness = usize::from(!s.on) + usize::from(!s.onto);
        (admitted, strictness)
    });
    out
}

/// The most specific refined space containing `f` over `A → B`, if any.
pub fn most_specific_space(f: &Process, a: &ExtendedSet, b: &ExtendedSet) -> Option<SpaceSpec> {
    classify(f, a, b).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use crate::value::Value;
    use crate::xset;
    use crate::xtuple;

    fn dom_ab() -> ExtendedSet {
        xset![
            xtuple!["a"].into_value() => Value::empty_set(),
            xtuple!["b"].into_value() => Value::empty_set()
        ]
    }

    fn cod_xy() -> ExtendedSet {
        xset![
            xtuple!["x"].into_value() => Value::empty_set(),
            xtuple!["y"].into_value() => Value::empty_set()
        ]
    }

    #[test]
    fn counts_match_appendix_d() {
        let basic = basic_spaces();
        assert_eq!(basic.len(), 16, "16 basic process spaces");
        assert_eq!(
            basic.iter().filter(|s| s.is_function_space()).count(),
            8,
            "8 basic function spaces"
        );
    }

    #[test]
    fn counts_match_appendix_e() {
        let refined = refined_spaces();
        assert_eq!(refined.len(), 29, "29 refined process spaces");
        assert_eq!(
            refined.iter().filter(|s| s.is_function_space()).count(),
            12,
            "12 non-empty refined function spaces"
        );
    }

    #[test]
    fn bijection_is_in_every_named_space() {
        let f = Process::from_pairs([("a", "x"), ("b", "y")]);
        let (a, b) = (dom_ab(), cod_xy());
        for spec in [
            SpaceSpec::process(),
            SpaceSpec::function(),
            SpaceSpec::injective(),
            SpaceSpec::surjective(),
            SpaceSpec::bijective(),
        ] {
            assert!(in_space(&f, &spec, &a, &b), "spec {}", spec.notation());
        }
    }

    #[test]
    fn fold_is_function_but_not_injective() {
        // a ↦ x, b ↦ x : many-to-one.
        let f = Process::from_pairs([("a", "x"), ("b", "x")]);
        let a = dom_ab();
        let b = xset![xtuple!["x"].into_value() => Value::empty_set()];
        assert!(in_space(&f, &SpaceSpec::function(), &a, &b));
        assert!(in_space(&f, &SpaceSpec::surjective(), &a, &b));
        assert!(!in_space(&f, &SpaceSpec::bijective(), &a, &b));
        assert!(!in_space(&f, &SpaceSpec::injective(), &a, &b));
    }

    #[test]
    fn one_to_many_is_a_process_not_a_function() {
        let f = Process::from_pairs([("a", "x"), ("a", "y")]);
        let a = xset![xtuple!["a"].into_value() => Value::empty_set()];
        let b = cod_xy();
        assert!(in_space(&f, &SpaceSpec::process(), &a, &b));
        assert!(!in_space(&f, &SpaceSpec::function(), &a, &b));
    }

    #[test]
    fn on_requires_domain_equality() {
        // Partial function: domain {a} ⊂ {a, b}.
        let f = Process::from_pairs([("a", "x")]);
        let (a, b) = (dom_ab(), cod_xy());
        assert!(in_space(&f, &SpaceSpec::function(), &a, &b));
        let on_spec = SpaceSpec {
            on: true,
            ..SpaceSpec::function()
        };
        assert!(!in_space(&f, &on_spec, &a, &b));
    }

    #[test]
    fn onto_requires_codomain_equality() {
        let f = Process::from_pairs([("a", "x"), ("b", "x")]);
        let (a, b) = (dom_ab(), cod_xy());
        let onto_spec = SpaceSpec {
            onto: true,
            ..SpaceSpec::function()
        };
        assert!(!in_space(&f, &onto_spec, &a, &b), "misses y");
    }

    #[test]
    fn consequence_6_1_subspace_lattice() {
        // (a) ℱ[A,B) ⊆ ℱ(A,B)
        let on = SpaceSpec {
            on: true,
            ..SpaceSpec::function()
        };
        assert!(on.is_subspace_of(&SpaceSpec::function()));
        // (b) ℱ(A,B] ⊆ ℱ(A,B)
        let onto = SpaceSpec {
            onto: true,
            ..SpaceSpec::function()
        };
        assert!(onto.is_subspace_of(&SpaceSpec::function()));
        // (c) ℱ[A,B] ⊆ ℱ(A,B] and (d) ℱ[A,B] ⊆ ℱ[A,B)
        let both = SpaceSpec {
            on: true,
            onto: true,
            ..SpaceSpec::function()
        };
        assert!(both.is_subspace_of(&onto));
        assert!(both.is_subspace_of(&on));
        // Bijective ⊆ injective-with-onto-dropped, etc.
        assert!(SpaceSpec::bijective().is_subspace_of(&SpaceSpec::surjective()));
        assert!(!SpaceSpec::function().is_subspace_of(&SpaceSpec::bijective()));
    }

    #[test]
    fn subspace_containment_is_sound_on_memberships() {
        // If spec1 ⊆ spec2 then membership in spec1 implies membership in
        // spec2 — checked over a few concrete behaviors.
        let behaviors = [
            Process::from_pairs([("a", "x"), ("b", "y")]),
            Process::from_pairs([("a", "x"), ("b", "x")]),
            Process::from_pairs([("a", "x"), ("a", "y"), ("b", "x")]),
        ];
        let (a, b) = (dom_ab(), cod_xy());
        let specs = refined_spaces();
        for f in &behaviors {
            for s1 in &specs {
                for s2 in &specs {
                    if s1.is_subspace_of(s2) && in_space(f, s1, &a, &b) {
                        assert!(
                            in_space(f, s2, &a, &b),
                            "{} in {} but not in {}",
                            f.graph,
                            s1.notation(),
                            s2.notation()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn notation_renders_alphabet() {
        assert_eq!(SpaceSpec::bijective().notation(), "[-]");
        assert_eq!(SpaceSpec::function().notation(), "(>-)");
        assert_eq!(SpaceSpec::process().notation(), "(>-<)");
    }

    #[test]
    fn classify_orders_most_specific_first() {
        let f = Process::from_pairs([("a", "x"), ("b", "y")]);
        let (a, b) = (dom_ab(), cod_xy());
        let spaces = classify(&f, &a, &b);
        assert!(!spaces.is_empty());
        // A bijection's most specific refined space is on+onto with only
        // one-to-one admitted: "[-]".
        let top = most_specific_space(&f, &a, &b).unwrap();
        assert_eq!(top.notation(), "[-]");
        // Everything listed really contains f, and the unrestricted space
        // is among them.
        assert!(spaces.contains(&SpaceSpec::process()));
        for s in &spaces {
            assert!(in_space(&f, s, &a, &b));
        }
    }

    #[test]
    fn classify_fold_and_one_to_many() {
        let (a, b) = (dom_ab(), cod_xy());
        let fold = Process::from_pairs([("a", "x"), ("b", "x")]);
        let cod_x = xset![xtuple!["x"].into_value() => Value::empty_set()];
        let top = most_specific_space(&fold, &a, &cod_x).unwrap();
        assert_eq!(top.notation(), "[>]", "on + onto, many-to-one only");
        let split = Process::from_pairs([("a", "x"), ("a", "y")]);
        let dom_a = xset![xtuple!["a"].into_value() => Value::empty_set()];
        let top = most_specific_space(&split, &dom_a, &b).unwrap();
        assert!(
            top.notation().contains('<'),
            "one-to-many must be admitted: {}",
            top.notation()
        );
        assert!(!top.is_function_space());
    }

    #[test]
    fn arrow_notation() {
        let f = Process::from_pairs([("a", "x")]);
        let a = xset![xtuple!["a"].into_value() => Value::empty_set()];
        let b = cod_xy();
        assert!(arrow(&f, &a, &b));
        let wrong_b = xset![xtuple!["z"].into_value() => Value::empty_set()];
        assert!(!arrow(&f, &a, &wrong_b));
    }
}
