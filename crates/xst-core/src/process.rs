//! Processes — *functions as set behavior* (§2–§4, §8, §11).
//!
//! A [`Process`] is the pair `f_(σ)` of a carrier set `f` (the "graph") and
//! a process scope `σ = ⟨σ1, σ2⟩`. It is **not** a set: it denotes a
//! behavior, realized only when *applied* (Definition 8.1):
//!
//! ```text
//! f_(σ)(x) = f[x]_σ = 𝔇_σ2( f |_σ1 x )
//! ```
//!
//! Applying a process to a *set* yields a set; applying it to another
//! *process* (Definition 4.1, nested application) yields a process:
//!
//! ```text
//! f_(σ)(g_(ω)) = ( f[g]_σ )_(ω)
//! ```
//!
//! Chains of applications are ambiguous without bracketing (Examples
//! 4.1/4.2); [`Interpretation`] enumerates every legal bracketing (their
//! count is the Catalan number: 2, 5, 14, 42, ... — the figures quoted in
//! the paper), and Appendix A's counterexample showing two bracketings with
//! different non-empty results is reproduced in the integration tests.
//!
//! Composition (Definition 11.1, Theorem 11.2) is provided in two forms:
//! [`Process::compose_raw`] is the paper-literal relative-product form where
//! the caller engineers all scopes, and [`Process::compose`] constructs
//! collision-free scopes automatically so that the semantic law
//! `(g ∘ f)(x) = g(f(x))` holds (validated by property tests).

use crate::error::{XstError, XstResult};
use crate::ops::domain::sigma_domain;
use crate::ops::image::{image, Scope};
use crate::ops::product::relative_product;
use crate::set::{ExtendedSet, Member, SetBuilder};
use crate::value::Value;
use std::collections::BTreeSet;

/// A process `f_(σ)`: a set behavior, not a set (§2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    /// The carrier set `f`.
    pub graph: ExtendedSet,
    /// The process scope `σ = ⟨σ1, σ2⟩`.
    pub scope: Scope,
}

impl Process {
    /// Construct `f_(σ)`.
    pub fn new(graph: ExtendedSet, scope: Scope) -> Process {
        Process { graph, scope }
    }

    /// Construct a pair-relation behavior `f_(⟨⟨1⟩,⟨2⟩⟩)` — the scope used
    /// for CST-style functions throughout the paper.
    pub fn pairs(graph: ExtendedSet) -> Process {
        Process::new(graph, Scope::pairs())
    }

    /// Build a pair-relation process directly from `(input, output)` atoms.
    pub fn from_pairs<A: Into<Value>, B: Into<Value>>(
        pairs: impl IntoIterator<Item = (A, B)>,
    ) -> Process {
        Process::pairs(ExtendedSet::classical(
            pairs
                .into_iter()
                .map(|(a, b)| Value::Set(ExtendedSet::pair(a, b))),
        ))
    }

    /// The inverse behavior `f_(⟨σ2,σ1⟩)` (Example 8.1: `f_(τ)`).
    pub fn inverse(&self) -> Process {
        Process::new(self.graph.clone(), self.scope.flipped())
    }

    /// Application (Definition 8.1): `f_(σ)(x) = f[x]_σ`.
    pub fn apply(&self, x: &ExtendedSet) -> ExtendedSet {
        image(&self.graph, x, &self.scope)
    }

    /// Apply to a single classical element wrapped as `{⟨v⟩}` and extract
    /// the unique classical value of the result — the CST view of Theorem
    /// 9.10: `f(x) = 𝒱(f_(σ)({⟨x⟩}))`.
    pub fn apply_value(&self, v: &Value) -> XstResult<Value> {
        let input = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([v.clone()]))]);
        crate::ops::value_of::value(&self.apply(&input))
    }

    /// Nested application (Definition 4.1):
    /// `f_(σ)(g_(ω)) = (f[g]_σ)_(ω)` — a process, not a set.
    pub fn apply_to_process(&self, g: &Process) -> Process {
        Process::new(self.apply(&g.graph), g.scope.clone())
    }

    /// `𝔇_σ1(f)` — the process's domain projection.
    pub fn domain(&self) -> ExtendedSet {
        sigma_domain(&self.graph, &self.scope.sigma1)
    }

    /// `𝔇_σ2(f)` — the process's codomain projection.
    pub fn codomain(&self) -> ExtendedSet {
        sigma_domain(&self.graph, &self.scope.sigma2)
    }

    /// Is `(f, σ)` a process at all (Definition 2.1)? Requires some input
    /// with non-empty image, hereditarily for every non-empty subset of the
    /// carrier — equivalent to: every member of `f` contributes a non-empty
    /// σ-projection on both sides.
    pub fn is_process(&self) -> bool {
        !self.graph.is_empty()
            && self.graph.members().iter().all(|m| {
                let sub = ExtendedSet::from_sorted_unique(vec![m.clone()]);
                !sigma_domain(&sub, &self.scope.sigma1).is_empty()
                    && !sigma_domain(&sub, &self.scope.sigma2).is_empty()
            })
    }

    /// The *minimal singleton probes* of this behavior: every one-member
    /// input set `{e^p}` that can non-vacuously match the restriction
    /// (element `e` drawn from a carrier member at a σ1-mapped position
    /// `p`). Any singleton input's image is contained in some minimal
    /// probe's image, so quantifications over `Sing(y)` (Definitions 6.3,
    /// 8.2) reduce to these probes.
    pub fn singleton_probes(&self) -> Vec<ExtendedSet> {
        let mut probes: BTreeSet<(Value, Value)> = BTreeSet::new();
        // For each input position p (a scope of σ1) collect the graph
        // positions it maps to, then harvest every element at those
        // positions.
        let sigma1 = &self.scope.sigma1;
        let positions: BTreeSet<&Value> = sigma1.members().iter().map(|m| &m.scope).collect();
        for p in positions {
            let graph_positions: Vec<&Value> = sigma1
                .members()
                .iter()
                .filter(|m| &m.scope == p)
                .map(|m| &m.element)
                .collect();
            for zm in self.graph.members() {
                let z = zm.element.as_set_view();
                for gp in &graph_positions {
                    for e in z.elements_with_scope(gp) {
                        probes.insert((e.clone(), (*p).clone()));
                    }
                }
            }
        }
        probes
            .into_iter()
            .map(|(e, p)| {
                ExtendedSet::singleton_classical(Value::Set(ExtendedSet::singleton(e, p)))
            })
            .collect()
    }

    /// Is the behavior a *function* (Definition 8.2): every singleton input
    /// with non-empty image has a singleton image?
    pub fn is_function(&self) -> bool {
        self.singleton_probes().iter().all(|y| {
            let img = self.apply(y);
            img.is_empty() || img.is_singleton()
        })
    }

    /// Like [`Process::is_function`] but reports the offending input.
    pub fn check_function(&self) -> XstResult<()> {
        for y in self.singleton_probes() {
            let img = self.apply(&y);
            if !img.is_empty() && !img.is_singleton() {
                return Err(XstError::NotAFunction {
                    input: format!("{y}"),
                    image_len: img.card(),
                });
            }
        }
        Ok(())
    }

    /// One-to-one over the minimal singleton probes (Definition 6.3
    /// restricted to domain singletons; see the module docs of
    /// [`crate::spaces`] for why the quantifier is relativized).
    pub fn is_one_to_one(&self) -> bool {
        let probes = self.singleton_probes();
        let mut seen: Vec<(ExtendedSet, &ExtendedSet)> = Vec::new();
        for y in &probes {
            let img = self.apply(y);
            if img.is_empty() {
                continue;
            }
            if let Some((_, prev)) = seen.iter().find(|(i, _)| i == &img) {
                if prev != &y {
                    return false;
                }
            } else {
                seen.push((img, y));
            }
        }
        true
    }

    /// Does some singleton input map to more than one output member
    /// (one-to-many association, the disqualifier for function spaces)?
    pub fn is_one_to_many(&self) -> bool {
        !self.is_function()
    }

    /// Do two distinct singleton inputs share an output (many-to-one)?
    pub fn is_many_to_one(&self) -> bool {
        !self.is_one_to_one()
    }

    /// Process equality (Definition 2.2) checked extensionally over a probe
    /// set: `f_(σ) = g_(ω) ⟺ ∀x f_(σ)(x) = g_(ω)(x)`.
    ///
    /// The probe set defaults (in [`Process::equivalent`]) to the union of
    /// both processes' minimal singleton probes plus `∅`; by additivity of
    /// application over union (Consequence 8.1(a)) agreement on singletons
    /// extends to all inputs whose members are covered by the probes.
    pub fn equivalent_on(&self, other: &Process, probes: &[ExtendedSet]) -> bool {
        probes.iter().all(|x| self.apply(x) == other.apply(x))
    }

    /// Process equality over both processes' canonical probe sets.
    pub fn equivalent(&self, other: &Process) -> bool {
        let mut probes = self.singleton_probes();
        probes.extend(other.singleton_probes());
        probes.push(ExtendedSet::empty());
        probes.sort();
        probes.dedup();
        self.equivalent_on(other, &probes)
    }

    /// The identity behavior `I_A` on a set of k-tuples (Appendix B): carrier
    /// `{t·t : t ∈ A}` with scope `⟨⟨1..k⟩, ⟨k+1..2k⟩⟩`.
    pub fn identity_on(a: &ExtendedSet) -> XstResult<Process> {
        let mut arity: Option<usize> = None;
        let mut b = SetBuilder::with_capacity(a.card());
        for (v, _) in a.iter() {
            let t = v.as_set_view();
            let k = t.tuple_len().ok_or_else(|| XstError::NotATuple {
                value: format!("{v}"),
            })?;
            match arity {
                None => arity = Some(k),
                Some(prev) if prev == k => {}
                Some(prev) => {
                    return Err(XstError::NotComposable {
                        reason: format!("identity_on: mixed tuple arities {prev} and {k}"),
                    })
                }
            }
            let doubled = crate::ops::product::concat(&t, &t)?;
            b.classical_elem(Value::Set(doubled));
        }
        let k = arity.unwrap_or(1) as i64;
        Ok(Process::new(
            b.build(),
            Scope::positional(
                &(1..=k).collect::<Vec<_>>(),
                &(k + 1..=2 * k).collect::<Vec<_>>(),
            ),
        ))
    }

    /// Paper-literal composition (Definition 11.1):
    /// `g_(ω) ∘ f_(σ) = ( f /^{⟨ω1,ω2⟩}_{⟨σ1,σ2⟩} g )_(⟨σ1,ω2⟩)`.
    ///
    /// All scope engineering is the caller's: as §9 notes, the scoped
    /// formulation "replaces old challenges with new ones" — the σ/ω pairs
    /// must be chosen so kept scopes do not collide (the §10 recipes show
    /// how). For an automatic, law-abiding composition use
    /// [`Process::compose`].
    pub fn compose_raw(g: &Process, f: &Process) -> Process {
        let h = relative_product(&f.graph, &f.scope, &g.graph, &g.scope);
        Process::new(
            h,
            Scope::new(f.scope.sigma1.clone(), g.scope.sigma2.clone()),
        )
    }

    /// Scope-engineered composition `g_(ω) ∘ f_(σ)` satisfying
    /// `(g ∘ f)(x) = g(f(x))`.
    ///
    /// Constructs the relative product of Definition 11.1 but re-tags the
    /// kept scopes as `⟨1, p⟩` (f's input positions) and `⟨2, q⟩` (g's
    /// output positions) so they can never collide, then derives the
    /// matching `τ`. Requires both σ1 and ω2 to be *simple* (no duplicate
    /// positions), which is what makes the re-tagging exact; returns
    /// [`XstError::NotComposable`] otherwise.
    pub fn compose(g: &Process, f: &Process) -> XstResult<Process> {
        fn distinct_scopes(spec: &ExtendedSet, what: &str) -> XstResult<Vec<Value>> {
            let mut seen = BTreeSet::new();
            for m in spec.members() {
                if !seen.insert(m.scope.clone()) {
                    return Err(XstError::NotComposable {
                        reason: format!("{what} maps one position twice: {}", m.scope),
                    });
                }
            }
            Ok(seen.into_iter().collect())
        }
        let in_positions = distinct_scopes(&f.scope.sigma1, "σ1")?;
        let out_positions = distinct_scopes(&g.scope.sigma2, "ω2")?;

        // Relative product with re-tagged keep-specs. A keep-spec member
        // (gp ↦ p) becomes (gp ↦ ⟨tag, p⟩).
        let f_keep = ExtendedSet::from_members(
            f.scope
                .sigma1
                .members()
                .iter()
                .map(|m| {
                    Member::new(
                        m.element.clone(),
                        Value::Set(ExtendedSet::pair(Value::Int(1), m.scope.clone())),
                    )
                })
                .collect(),
        );
        let g_keep = ExtendedSet::from_members(
            g.scope
                .sigma2
                .members()
                .iter()
                .map(|m| {
                    Member::new(
                        m.element.clone(),
                        Value::Set(ExtendedSet::pair(Value::Int(2), m.scope.clone())),
                    )
                })
                .collect(),
        );
        let h = relative_product(
            &f.graph,
            &Scope::new(f_keep, f.scope.sigma2.clone()),
            &g.graph,
            &Scope::new(g.scope.sigma1.clone(), g_keep),
        );

        // τ1: input position p is found in h at scope ⟨1, p⟩.
        let tau1 = ExtendedSet::from_pairs(in_positions.into_iter().map(|p| {
            let tagged = Value::Set(ExtendedSet::pair(Value::Int(1), p.clone()));
            (tagged, p)
        }));
        // τ2: output position q is stored in h at scope ⟨2, q⟩.
        let tau2 = ExtendedSet::from_pairs(out_positions.into_iter().map(|q| {
            let tagged = Value::Set(ExtendedSet::pair(Value::Int(2), q.clone()));
            (tagged, q)
        }));
        Ok(Process::new(h, Scope::new(tau1, tau2)))
    }
}

/// Catalan number `C(n)`: the number of legal bracketings of a chain of `n`
/// processes applied to a set (Examples 4.1/4.2 quote 2, 5, 14 and 42 for
/// chains of 2–5 processes).
pub fn interpretation_count(n: u32) -> u64 {
    // C(n) = binom(2n, n) / (n + 1), computed incrementally to avoid
    // overflow for the sizes we care about.
    let mut c: u64 = 1;
    for i in 0..n as u64 {
        c = c * 2 * (2 * i + 1) / (i + 2);
    }
    c
}

/// One bracketing of an application chain: a full binary tree whose leaves
/// are, in order, the processes `p_0 … p_{n-1}` and finally the input set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interpretation {
    /// Leaf `i`: process `p_i` for `i < n`, the input set for `i = n`.
    Leaf(usize),
    /// `Apply(lhs, rhs)`: apply the behavior denoted by `lhs` to `rhs`.
    Apply(Box<Interpretation>, Box<Interpretation>),
}

impl Interpretation {
    /// Render with explicit brackets, e.g. `(f(g))(x)`.
    pub fn render(&self, names: &[&str], input: &str) -> String {
        fn go(t: &Interpretation, names: &[&str], input: &str) -> String {
            match t {
                Interpretation::Leaf(i) => {
                    if *i < names.len() {
                        names[*i].to_string()
                    } else {
                        input.to_string()
                    }
                }
                Interpretation::Apply(l, r) => {
                    let ls = go(l, names, input);
                    let rs = go(r, names, input);
                    if matches!(**l, Interpretation::Leaf(_)) {
                        format!("{ls}({rs})")
                    } else {
                        format!("({ls})({rs})")
                    }
                }
            }
        }
        go(self, names, input)
    }
}

/// Enumerate every bracketing of `n` processes applied to one input set —
/// all full binary trees over `n + 1` ordered leaves. The result has
/// [`interpretation_count`]`(n)` elements.
pub fn enumerate_interpretations(n: usize) -> Vec<Interpretation> {
    fn trees(lo: usize, hi: usize) -> Vec<Interpretation> {
        if lo == hi {
            return vec![Interpretation::Leaf(lo)];
        }
        let mut out = Vec::new();
        for split in lo..hi {
            for l in trees(lo, split) {
                for r in trees(split + 1, hi) {
                    out.push(Interpretation::Apply(Box::new(l.clone()), Box::new(r)));
                }
            }
        }
        out
    }
    trees(0, n)
}

/// The result of evaluating an interpretation: a set (the chain consumed the
/// input) or a residual process (it did not — impossible for bracketings
/// produced by [`enumerate_interpretations`], but expressible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evaluated {
    /// A realized set.
    Set(ExtendedSet),
    /// A residual behavior.
    Process(Process),
}

impl Evaluated {
    /// Unwrap a set result.
    pub fn into_set(self) -> Option<ExtendedSet> {
        match self {
            Evaluated::Set(s) => Some(s),
            Evaluated::Process(_) => None,
        }
    }
}

/// Evaluate one bracketing of `processes` applied to `input`.
///
/// Leaves `0..processes.len()` denote the processes; the final leaf denotes
/// `input`. Nested application follows Definition 4.1.
pub fn eval_interpretation(
    tree: &Interpretation,
    processes: &[Process],
    input: &ExtendedSet,
) -> XstResult<Evaluated> {
    match tree {
        Interpretation::Leaf(i) => {
            if *i < processes.len() {
                Ok(Evaluated::Process(processes[*i].clone()))
            } else {
                Ok(Evaluated::Set(input.clone()))
            }
        }
        Interpretation::Apply(l, r) => {
            let lhs = eval_interpretation(l, processes, input)?;
            let Evaluated::Process(p) = lhs else {
                return Err(XstError::NotComposable {
                    reason: "left side of an application must be a process".into(),
                });
            };
            match eval_interpretation(r, processes, input)? {
                Evaluated::Set(s) => Ok(Evaluated::Set(p.apply(&s))),
                Evaluated::Process(q) => Ok(Evaluated::Process(p.apply_to_process(&q))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{xset, xtuple};

    fn singleton_tuple(e: &str) -> ExtendedSet {
        ExtendedSet::classical([Value::Set(ExtendedSet::tuple([Value::sym(e)]))])
    }

    #[test]
    fn application_on_pairs() {
        let f = Process::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
        assert_eq!(
            f.apply(&singleton_tuple("a")),
            xset![xtuple!["x"].into_value() => Value::empty_set()]
        );
        assert!(f.apply(&singleton_tuple("q")).is_empty());
    }

    #[test]
    fn inverse_behavior_is_relation_not_function() {
        // Example 8.1: f_(σ) is a function; f_(τ) is its non-functional
        // inverse (x has two preimages).
        let f = Process::from_pairs([("a", "x"), ("b", "y"), ("c", "x")]);
        assert!(f.is_function());
        let inv = f.inverse();
        assert!(!inv.is_function());
        let img = inv.apply(&singleton_tuple("x"));
        assert_eq!(img.card(), 2);
    }

    #[test]
    fn check_function_reports_offender() {
        let f = Process::from_pairs([("a", "x"), ("a", "y")]);
        let err = f.check_function().unwrap_err();
        assert!(matches!(err, XstError::NotAFunction { image_len: 2, .. }));
    }

    #[test]
    fn domain_and_codomain_projections() {
        let f = Process::from_pairs([("a", "x"), ("b", "y")]);
        assert_eq!(
            f.domain(),
            xset![
                xtuple!["a"].into_value() => Value::empty_set(),
                xtuple!["b"].into_value() => Value::empty_set()
            ]
        );
        assert_eq!(
            f.codomain(),
            xset![
                xtuple!["x"].into_value() => Value::empty_set(),
                xtuple!["y"].into_value() => Value::empty_set()
            ]
        );
    }

    #[test]
    fn is_process_definition_2_1() {
        let f = Process::from_pairs([("a", "x")]);
        assert!(f.is_process());
        // An empty carrier defines no process.
        assert!(!Process::pairs(ExtendedSet::empty()).is_process());
        // A carrier member invisible to σ breaks the hereditary condition.
        let broken = Process::pairs(xset![ExtendedSet::pair("a", "x").into_value(), "atom"]);
        assert!(!broken.is_process());
    }

    #[test]
    fn apply_value_theorem_9_10() {
        let f = Process::from_pairs([("a", "x"), ("b", "y")]);
        assert_eq!(f.apply_value(&Value::sym("a")).unwrap(), Value::sym("x"));
        assert!(f.apply_value(&Value::sym("q")).is_err());
    }

    #[test]
    fn one_to_one_and_many_to_one() {
        let inj = Process::from_pairs([("a", "x"), ("b", "y")]);
        assert!(inj.is_one_to_one());
        assert!(!inj.is_many_to_one());
        let fold = Process::from_pairs([("a", "x"), ("b", "x")]);
        assert!(!fold.is_one_to_one());
        assert!(fold.is_many_to_one());
        assert!(!fold.is_one_to_many());
    }

    #[test]
    fn process_equality_definition_2_2() {
        // Same behavior, different carrier sets.
        let f = Process::from_pairs([("a", "x"), ("b", "y")]);
        let g = Process::new(
            xset![
                xtuple!["a", "x", "junk"].into_value(),
                xtuple!["b", "y", "junk"].into_value()
            ],
            Scope::positional(&[1], &[2]),
        );
        assert!(f.equivalent(&g));
        let h = Process::from_pairs([("a", "x"), ("b", "z")]);
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn identity_on_appendix_b_domain() {
        let a = xset![xtuple!["a"].into_value(), xtuple!["b"].into_value()];
        let id = Process::identity_on(&a).unwrap();
        assert_eq!(id.apply(&singleton_tuple("a")), singleton_tuple("a"));
        assert_eq!(id.apply(&singleton_tuple("b")), singleton_tuple("b"));
        assert!(id.is_function());
        // g1 = {⟨a,a⟩, ⟨b,b⟩} is the same behavior.
        let g1 = Process::from_pairs([("a", "a"), ("b", "b")]);
        assert!(id.equivalent(&g1));
    }

    #[test]
    fn identity_rejects_mixed_arities() {
        let a = xset![xtuple!["a"].into_value(), xtuple!["b", "c"].into_value()];
        assert!(Process::identity_on(&a).is_err());
    }

    #[test]
    fn nested_application_definition_4_1() {
        // f applied to the process g yields a process whose carrier is
        // f[g]_σ and whose scope is g's.
        let f = Process::from_pairs([("a", "x")]);
        let g = Process::from_pairs([("u", "v")]);
        let fg = f.apply_to_process(&g);
        assert_eq!(fg.scope, g.scope);
        // g's carrier contains ⟨u,v⟩, whose first component u is not in
        // f's domain — empty carrier.
        assert!(fg.graph.is_empty());
    }

    #[test]
    fn compose_law_on_pair_relations() {
        let f = Process::from_pairs([("a", "b"), ("c", "d")]);
        let g = Process::from_pairs([("b", "z"), ("d", "w")]);
        let h = Process::compose(&g, &f).unwrap();
        for e in ["a", "c", "q"] {
            let x = singleton_tuple(e);
            assert_eq!(h.apply(&x), g.apply(&f.apply(&x)), "input {e}");
        }
    }

    #[test]
    fn compose_raw_with_engineered_scopes() {
        // Theorem 11.2 setting with manually disjoint scopes: f keeps its
        // input at position 1, g keeps its output at position 2.
        let f = Process::new(
            xset![ExtendedSet::pair("a", "b").into_value()],
            Scope::new(xset![1 => 1], xset![2 => 1]),
        );
        let g = Process::new(
            xset![ExtendedSet::pair("b", "c").into_value()],
            Scope::new(xset![1 => 1], xset![2 => 2]),
        );
        let h = Process::compose_raw(&g, &f);
        // Carrier is {⟨a,c⟩}; scope ⟨σ1, ω2⟩ reads position 1 in, 2 out.
        assert_eq!(
            h.graph,
            xset![ExtendedSet::pair("a", "c").into_value() => Value::empty_set()]
        );
        let x = singleton_tuple("a");
        let got = h.apply(&x);
        // Output arrives at position 2 (ω2 keeps it there).
        assert_eq!(
            got,
            xset![xset!["c" => 2].into_value() => Value::empty_set()]
        );
    }

    #[test]
    fn compose_rejects_duplicate_positions() {
        let f = Process::new(
            xset![ExtendedSet::pair("a", "b").into_value()],
            Scope::new(xset![1 => 1, 2 => 1], xset![2 => 1]),
        );
        let g = Process::from_pairs([("b", "c")]);
        assert!(Process::compose(&g, &f).is_err());
    }

    #[test]
    fn interpretation_counts_match_paper() {
        // "2 legitimate interpretations" for f g (x); "5 for three";
        // "14 for four and 42 for five".
        assert_eq!(interpretation_count(1), 1);
        assert_eq!(interpretation_count(2), 2);
        assert_eq!(interpretation_count(3), 5);
        assert_eq!(interpretation_count(4), 14);
        assert_eq!(interpretation_count(5), 42);
        for n in 1..=5 {
            assert_eq!(
                enumerate_interpretations(n).len() as u64,
                interpretation_count(n as u32),
                "n = {n}"
            );
        }
    }

    #[test]
    fn interpretation_rendering() {
        let trees = enumerate_interpretations(2);
        let rendered: Vec<String> = trees.iter().map(|t| t.render(&["f", "g"], "x")).collect();
        assert!(rendered.contains(&"f(g(x))".to_string()));
        assert!(rendered.contains(&"(f(g))(x)".to_string()));
    }

    /// Example 4.2 lists the five interpretations of `f_(σ) g_(ω) h_(τ) (x)`
    /// explicitly; the enumerator must produce exactly that list.
    #[test]
    fn example_4_2_lists_all_five_bracketings() {
        let rendered: std::collections::BTreeSet<String> = enumerate_interpretations(3)
            .iter()
            .map(|t| t.render(&["f", "g", "h"], "x"))
            .collect();
        let expected: std::collections::BTreeSet<String> = [
            "f(g(h(x)))",     // (a)
            "f((g(h))(x))",   // (b)
            "(f(g(h)))(x)",   // (c)
            "((f(g))(h))(x)", // (d)
            "(f(g))(h(x))",   // (e)
        ]
        .into_iter()
        .map(String::from)
        .collect();
        assert_eq!(rendered, expected);
    }

    #[test]
    fn eval_interpretation_two_brackets_can_differ() {
        // Minimal shape of Appendix A: f(g(x)) vs (f(g))(x).
        let f = Process::from_pairs([("y", "z"), ("u", "v")]);
        let g = Process::from_pairs([("x", "y")]);
        let input = singleton_tuple("x");
        let trees = enumerate_interpretations(2);
        let results: Vec<ExtendedSet> = trees
            .iter()
            .map(|t| {
                eval_interpretation(t, &[f.clone(), g.clone()], &input)
                    .unwrap()
                    .into_set()
                    .unwrap()
            })
            .collect();
        // f(g(x)) = f({⟨y⟩}) = {⟨z⟩}; (f(g))(x) applies a carrier that no
        // longer matches ⟨x⟩.
        assert!(results.iter().any(|r| !r.is_empty()));
        assert!(results.iter().any(|r| r.is_empty() || r != &results[0]));
    }

    #[test]
    fn interpretation_eval_rejects_set_on_left() {
        // A hand-built tree applying the input to a process is invalid.
        let bad = Interpretation::Apply(
            Box::new(Interpretation::Leaf(1)), // the input leaf
            Box::new(Interpretation::Leaf(0)),
        );
        let f = Process::from_pairs([("a", "b")]);
        let x = singleton_tuple("a");
        assert!(eval_interpretation(&bad, std::slice::from_ref(&f), &x).is_err());
    }
}
