//! # xst-storage — data representations with mathematical identity
//!
//! The storage substrate for the XST reproduction. The VLDB-1977 program
//! models *stored* data — records, pages, files, indexes — as extended
//! sets, so data management becomes validated set processing. This crate
//! supplies the stack under that claim:
//!
//! * [`codec`] — bit-exact binary codec for any nested [`xst_core::Value`];
//! * [`page`] — slotted 4 KiB pages;
//! * [`bufpool`] — a simulated disk and an LRU buffer pool that **count
//!   page transfers** (our stand-in for 1977 disk behavior; the experiments
//!   read their I/O costs here);
//! * [`record`] — records/files and their set identities (positional and
//!   named);
//! * [`mod@file`] — heap files of encoded records;
//! * [`index`] — sorted secondary indexes (restriction pushdown);
//! * [`engine`] — the *set-processing* engine vs the *record-processing*
//!   baseline over identical storage;
//! * [`restructure`] — dynamic restructuring as re-scoping vs record
//!   rewriting;
//! * [`mod@snapshot`] — checksummed whole-disk backup/restore images;
//! * [`parallel`] — multi-threaded identity loading over page ranges;
//! * [`wal`] — write-ahead logging, group commit, and crash recovery;
//! * [`fault`] — deterministic fault injection at numbered I/O sites;
//! * [`retry`] — bounded retry with deterministic exponential backoff;
//! * [`colstore`] — the same relation under a column-oriented identity;
//! * [`txn`] — snapshot-isolated transactions over versioned set
//!   identities (first committer wins, group-commit durability);
//! * [`shard`] — hash-partitioned engines with scatter-gather reads and
//!   two-phase-commit cross-shard atomicity.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bufpool;
pub mod codec;
pub mod colstore;
pub mod engine;
pub mod error;
pub mod fault;
pub mod file;
pub mod index;
pub mod page;
pub mod parallel;
pub mod record;
pub mod restructure;
pub mod retry;
pub mod shard;
pub mod snapshot;
pub mod txn;
pub mod wal;

pub use bufpool::{
    BufferPool, FileId, IoStats, PageId, ShardStats, Storage, STORAGE_METRIC_PREFIX,
};
pub use colstore::ColumnTable;
pub use engine::{RecordEngine, SetEngine, Table};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultKind, FaultPlan, FaultSchedule, Injection, SiteClass};
pub use file::{HeapFile, RecordId};
pub use index::Index;
pub use page::{Page, MAX_RECORD, PAGE_SIZE};
pub use parallel::load_identity_parallel;
pub use record::{file_identity, Record, Schema};
pub use restructure::{restructure_records, restructure_set, Restructuring};
pub use retry::{with_retry, RetryPolicy};
pub use shard::{decision_schema, shard_of, ShardedEngine, ShardedTxn};
pub use snapshot::{restore, snapshot};
pub use txn::{CommitTs, RecoveredParticipant, Txn, TxnId, TxnManager, TxnOp};
pub use wal::{Checkpoint, LoggedTable, Wal};
