//! Sorted secondary indexes.
//!
//! An [`Index`] maps a key field's values to record addresses, kept in a
//! sorted vector (binary-searchable — the set-theoretic analogue of an
//! inversion on the field, and the storage hook for restriction pushdown:
//! experiment E3 compares `σ`-restriction evaluated by full scan against
//! index-driven page access).

use crate::bufpool::BufferPool;
use crate::error::StorageResult;
use crate::file::{HeapFile, RecordId};
use xst_core::Value;

/// A sorted index over one field position of a heap file.
#[derive(Debug, Clone)]
pub struct Index {
    field: usize,
    entries: Vec<(Value, RecordId)>,
}

impl Index {
    /// Build an index on `field` by scanning `file` through `pool`.
    pub fn build(file: &HeapFile, pool: &BufferPool, field: usize) -> StorageResult<Index> {
        let mut entries = Vec::with_capacity(file.record_count());
        file.scan(pool, |rid, record| {
            if let Some(v) = record.get(field) {
                entries.push((v.clone(), rid));
            }
            Ok(())
        })?;
        entries.sort();
        Ok(Index { field, entries })
    }

    /// The indexed field position.
    pub fn field(&self) -> usize {
        self.field
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record addresses whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<RecordId> {
        let start = self.entries.partition_point(|(k, _)| k < key);
        self.entries[start..]
            .iter()
            .take_while(|(k, _)| k == key)
            .map(|&(_, rid)| rid)
            .collect()
    }

    /// Record addresses with `lo <= key <= hi`.
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<RecordId> {
        let start = self.entries.partition_point(|(k, _)| k < lo);
        self.entries[start..]
            .iter()
            .take_while(|(k, _)| k <= hi)
            .map(|&(_, rid)| rid)
            .collect()
    }

    /// Distinct pages containing any of `rids`, ascending — the read set
    /// for index-driven access.
    pub fn pages_of(rids: &[RecordId]) -> Vec<usize> {
        let mut pages: Vec<usize> = rids.iter().map(|r| r.page).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Distinct keys in order (the index's own 2-domain).
    pub fn keys(&self) -> Vec<&Value> {
        let mut out: Vec<&Value> = Vec::new();
        for (k, _) in &self.entries {
            if out.last() != Some(&k) {
                out.push(k);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::Storage;
    use crate::record::Record;

    fn setup(n: i64) -> (BufferPool, HeapFile) {
        let storage = Storage::new();
        let mut file = HeapFile::create(&storage);
        for i in 0..n {
            file.append(&Record::new([
                Value::Int(i),
                Value::str(format!("name-{i}")),
                Value::Int(i % 10), // qty cycles 0..9
            ]))
            .unwrap();
        }
        file.sync().unwrap();
        (BufferPool::new(storage, 8), file)
    }

    #[test]
    fn point_lookup() {
        let (pool, file) = setup(100);
        let idx = Index::build(&file, &pool, 0).unwrap();
        assert_eq!(idx.len(), 100);
        let hits = idx.lookup(&Value::Int(42));
        assert_eq!(hits.len(), 1);
        assert_eq!(
            file.get(&pool, hits[0]).unwrap().get(0),
            Some(&Value::Int(42))
        );
        assert!(idx.lookup(&Value::Int(1000)).is_empty());
    }

    #[test]
    fn duplicate_keys_all_found() {
        let (pool, file) = setup(100);
        let idx = Index::build(&file, &pool, 2).unwrap();
        let hits = idx.lookup(&Value::Int(3));
        assert_eq!(hits.len(), 10, "qty 3 occurs every 10 records");
    }

    #[test]
    fn range_scan() {
        let (pool, file) = setup(100);
        let idx = Index::build(&file, &pool, 0).unwrap();
        let hits = idx.range(&Value::Int(10), &Value::Int(19));
        assert_eq!(hits.len(), 10);
        let empty = idx.range(&Value::Int(200), &Value::Int(300));
        assert!(empty.is_empty());
    }

    #[test]
    fn pages_of_dedups() {
        let rids = vec![
            RecordId { page: 3, slot: 0 },
            RecordId { page: 1, slot: 2 },
            RecordId { page: 3, slot: 9 },
        ];
        assert_eq!(Index::pages_of(&rids), vec![1, 3]);
    }

    #[test]
    fn keys_are_distinct_sorted() {
        let (pool, file) = setup(25);
        let idx = Index::build(&file, &pool, 2).unwrap();
        let keys = idx.keys();
        assert_eq!(keys.len(), 10);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn index_driven_access_touches_fewer_pages() {
        let (pool, file) = setup(2000);
        let idx = Index::build(&file, &pool, 0).unwrap();
        let total_pages = file.page_count().unwrap();
        assert!(total_pages > 10);
        let hits = idx.lookup(&Value::Int(5));
        let pages = Index::pages_of(&hits);
        assert_eq!(pages.len(), 1, "a point lookup touches one page");
        pool.reset_stats();
        pool.clear();
        let mut found = Vec::new();
        file.scan_pages(&pool, &pages, |_, r| {
            if r.get(0) == Some(&Value::Int(5)) {
                found.push(r);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(pool.stats().disk_reads, 1);
    }

    #[test]
    fn empty_file_builds_empty_index() {
        let (pool, file) = setup(0);
        let idx = Index::build(&file, &pool, 0).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.field(), 0);
    }
}
