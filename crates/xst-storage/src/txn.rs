//! Multi-version concurrency: snapshot-isolated transactions over the
//! set-processing engine.
//!
//! The 1977 program pitches XST as the foundation of a *backend
//! information system serving many concurrent consumers*; this module is
//! the concurrency discipline under that claim. A [`TxnManager`] keeps,
//! per table, a sequence of **committed versions** — copy-on-write
//! [`ExtendedSet`] identities keyed by commit timestamp — and hands out
//! [`Txn`] handles that read a frozen snapshot and buffer their writes
//! privately:
//!
//! * **Snapshot isolation.** A transaction's reads all come from the
//!   version chain as of its begin timestamp. Commits by other
//!   transactions never move a running transaction's view (snapshot-read
//!   stability), and a transaction always sees its own buffered writes
//!   layered over that snapshot (read-your-own-writes).
//! * **First committer wins.** Each version remembers the *write set* (the
//!   exact records inserted or deleted) of the commit that produced it. A
//!   committing transaction is validated against every version committed
//!   after its snapshot: any overlap of write sets is a
//!   [`StorageError::TxnConflict`] and the transaction aborts — the classic
//!   SI write-write rule, at record granularity.
//! * **Committed ⇒ recoverable.** The commit point *is* the group-commit
//!   WAL flush of PR 3: every write of the transaction — across all tables
//!   it touched — is staged as one batch into a single op-log
//!   [`LoggedTable`] and acknowledged by ONE flush
//!   ([`LoggedTable::append_batch`]). A crash at any fault site therefore
//!   leaves a committed transaction fully recoverable and an uncommitted
//!   one atomically absent, and [`TxnManager::recover`] rebuilds the
//!   committed state by replaying the op log in order.
//!
//! Versions are whole-set identities, not byte deltas: the version chain
//! is literally a sequence of extended sets, and a snapshot read is an
//! `Arc` clone — readers never copy the table and never block the writer.
//! The deterministic interleaving harness in `xst-testkit::sched`
//! enumerates schedules of concurrent transactions against this module
//! and checks every outcome against a sequential oracle.

use crate::bufpool::{BufferPool, Storage};
use crate::engine::SetEngine;
use crate::error::{StorageError, StorageResult};
use crate::record::{Record, Schema};
use crate::retry::RetryPolicy;
use crate::wal::{LoggedTable, Wal};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use xst_core::ops::{difference, union};
use xst_core::{ExtendedSet, Value};
use xst_obs::{registry, Counter, Gauge, Histogram};

/// Monotonic transaction id (assigned at [`TxnManager::begin`]).
pub type TxnId = u64;

/// Monotonic commit timestamp; `0` is the pre-history timestamp every
/// empty table is born at.
pub type CommitTs = u64;

pub(crate) fn txn_begins_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| registry().counter(xst_obs::names::TXN_BEGINS_TOTAL, "Transactions begun."))
}

pub(crate) fn txn_commits_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(xst_obs::names::TXN_COMMITS_TOTAL, "Transactions committed.")
    })
}

pub(crate) fn txn_aborts_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::TXN_ABORTS_TOTAL,
            "Transactions aborted (explicitly or by conflict/IO failure).",
        )
    })
}

fn txn_conflicts_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::TXN_CONFLICTS_TOTAL,
            "Commit attempts rejected by first-committer-wins validation.",
        )
    })
}

pub(crate) fn txn_active_gauge() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        registry().gauge(
            xst_obs::names::TXN_ACTIVE,
            "Transactions currently open (each pins a snapshot identity).",
        )
    })
}

pub(crate) fn txn_commit_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::TXN_COMMIT_NS,
            "Latency of a successful commit (validation + WAL group commit + version publish).",
        )
    })
}

/// One buffered write of a transaction, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Insert a record (idempotent under set semantics).
    Insert(Record),
    /// Delete a record if present.
    Delete(Record),
}

impl TxnOp {
    /// The record this op touches — the unit of conflict detection.
    pub fn record(&self) -> &Record {
        match self {
            TxnOp::Insert(r) | TxnOp::Delete(r) => r,
        }
    }
}

/// One committed version of a table: the whole-set identity as of
/// `commit_ts`, plus the write set of the commit that produced it.
struct TableVersion {
    commit_ts: CommitTs,
    identity: Arc<ExtendedSet>,
    /// Records inserted or deleted by this commit, for first-committer-wins
    /// overlap checks against later committers.
    writes: BTreeSet<Record>,
}

/// A table under MVCC: its schema and the ascending version chain.
struct VersionedTable {
    schema: Schema,
    /// Ascending by `commit_ts`; index 0 is the empty pre-history version.
    versions: Vec<TableVersion>,
}

impl VersionedTable {
    fn new(schema: Schema) -> VersionedTable {
        VersionedTable {
            schema,
            versions: vec![TableVersion {
                commit_ts: 0,
                identity: Arc::new(ExtendedSet::empty()),
                writes: BTreeSet::new(),
            }],
        }
    }

    /// The latest version visible at snapshot `ts`. Chains are seeded with
    /// a ts-0 version at construction, so `None` means a corrupted chain.
    fn visible_at(&self, ts: CommitTs) -> Option<&TableVersion> {
        self.versions.iter().rev().find(|v| v.commit_ts <= ts)
    }

    fn latest(&self) -> Option<&TableVersion> {
        self.versions.last()
    }
}

/// The schema of the shared durable op log: which table, insert or
/// delete, and the row as its tuple identity.
fn op_log_schema() -> Schema {
    Schema::new(["table", "op", "row"])
}

const OP_INSERT: &str = "i";
const OP_DELETE: &str = "d";

/// Pseudo-table name of two-phase-commit control records in the op log.
/// The leading NUL keeps it out of the namespace any catalog table can
/// occupy (wire/ shell table names are plain text).
const CTRL_TABLE: &str = "\u{0}2pc";
const CTRL_PREPARE: &str = "p";
const CTRL_COMMIT: &str = "c";

fn encode_op(table: &str, op: &TxnOp) -> Record {
    let (tag, r) = match op {
        TxnOp::Insert(r) => (OP_INSERT, r),
        TxnOp::Delete(r) => (OP_DELETE, r),
    };
    Record::new([Value::str(table), Value::sym(tag), Value::Set(r.to_tuple())])
}

/// Encode one op of a prepared distributed transaction: the op tag
/// carries the global transaction id (`i7`/`d7`), so replay can group the
/// batch under its 2PC outcome instead of applying it at flush time.
fn encode_op_prepared(table: &str, op: &TxnOp, gtxn: u64) -> Record {
    let (tag, r) = match op {
        TxnOp::Insert(r) => (OP_INSERT, r),
        TxnOp::Delete(r) => (OP_DELETE, r),
    };
    Record::new([
        Value::str(table),
        Value::sym(format!("{tag}{gtxn}")),
        Value::Set(r.to_tuple()),
    ])
}

/// Encode a 2PC control record (PREPARE / local COMMIT) for `gtxn`.
fn encode_ctrl(kind: &str, gtxn: u64) -> Record {
    Record::new([
        Value::str(CTRL_TABLE),
        Value::sym(kind),
        Value::Int(gtxn as i64),
    ])
}

/// One decoded op-log record: a data op (optionally tagged with the
/// distributed transaction that prepared it) or a 2PC control record.
enum LogEntry {
    /// `(table, op, gtxn)` — `gtxn = None` for single-flush commits.
    Op(String, TxnOp, Option<u64>),
    /// PREPARE marker of a distributed transaction on this participant.
    Prepare(u64),
    /// Local COMMIT marker: the distributed transaction's ops apply here.
    Commit(u64),
}

fn decode_entry(record: &Record) -> StorageResult<LogEntry> {
    let bad = |what: &str| StorageError::Corrupt {
        reason: format!("op-log record is not a (table, op, row) triple: {what}"),
    };
    let [table, tag, row] = record.values() else {
        return Err(bad("wrong arity"));
    };
    let Value::Str(table) = table else {
        return Err(bad("table name is not a string"));
    };
    if table.as_ref() == CTRL_TABLE {
        let Value::Int(gtxn) = row else {
            return Err(bad("2pc control record without a gtxn"));
        };
        let gtxn = u64::try_from(*gtxn).map_err(|_| bad("negative gtxn"))?;
        return match tag {
            Value::Sym(t) if t.as_ref() == CTRL_PREPARE => Ok(LogEntry::Prepare(gtxn)),
            Value::Sym(t) if t.as_ref() == CTRL_COMMIT => Ok(LogEntry::Commit(gtxn)),
            _ => Err(bad("unknown 2pc control tag")),
        };
    }
    let row = row.as_set().ok_or_else(|| bad("row is not a set"))?;
    let row = Record::from_tuple(row)?;
    let Value::Sym(t) = tag else {
        return Err(bad("op tag is not a symbol"));
    };
    let (kind, rest) = t.as_ref().split_at(1);
    let gtxn = if rest.is_empty() {
        None
    } else {
        Some(rest.parse::<u64>().map_err(|_| bad("bad gtxn suffix"))?)
    };
    let op = match kind {
        OP_INSERT => TxnOp::Insert(row),
        OP_DELETE => TxnOp::Delete(row),
        _ => return Err(bad("unknown op tag")),
    };
    Ok(LogEntry::Op(table.to_string(), op, gtxn))
}

#[cfg(test)]
fn decode_op(record: &Record) -> StorageResult<(String, TxnOp)> {
    match decode_entry(record)? {
        LogEntry::Op(table, op, _) => Ok((table, op)),
        LogEntry::Prepare(_) | LogEntry::Commit(_) => Err(StorageError::Corrupt {
            reason: "expected a data op, found a 2pc control record".to_string(),
        }),
    }
}

struct ManagerInner {
    next_txn: TxnId,
    last_commit: CommitTs,
    /// Transactions begun but not yet committed/aborted/dropped. Kept
    /// even while the collector is off so [`TxnManager::active_txns`] is
    /// always accurate; the `xst_txn_active` gauge mirrors it.
    active: u64,
    tables: BTreeMap<String, VersionedTable>,
    /// The shared durable op log. One [`LoggedTable::append_batch`] per
    /// commit — the group-commit flush is the commit point.
    log: LoggedTable,
    /// Distributed transactions prepared on this participant but not yet
    /// locally committed or aborted: their validated write sets, held
    /// until the coordinator's decision arrives.
    prepared: BTreeMap<u64, BTreeMap<String, Vec<TxnOp>>>,
    /// `false` only under [`TxnManager::with_broken_conflict_detection`],
    /// the deliberately-unsound mode the interleaving harness must catch.
    detect_conflicts: bool,
}

/// Issues transactions and owns the versioned table state. Cloning is
/// cheap (one `Arc`); clones share the same database.
#[derive(Clone)]
pub struct TxnManager {
    inner: Arc<Mutex<ManagerInner>>,
}

/// The outcome of [`TxnManager::recover_with_decisions`] on one 2PC
/// participant.
pub struct RecoveredParticipant {
    /// The recovered manager (logs future commits into the fresh WAL).
    pub mgr: TxnManager,
    /// In-doubt prepares resolved to COMMIT by the coordinator's record.
    pub in_doubt_committed: u64,
    /// In-doubt prepares resolved to ABORT (no coordinator decision).
    pub in_doubt_aborted: u64,
    /// Highest global transaction id seen anywhere in this participant's
    /// log — the coordinator restarts its gtxn counter above the max
    /// across shards so ids never collide after recovery.
    pub max_gtxn: u64,
}

impl TxnManager {
    /// A fresh transactional database over `storage`, logging commits
    /// through `wal`.
    pub fn new(storage: &Storage, wal: Wal) -> TxnManager {
        TxnManager {
            inner: Arc::new(Mutex::new(ManagerInner {
                next_txn: 1,
                last_commit: 0,
                active: 0,
                tables: BTreeMap::new(),
                log: LoggedTable::create(storage, op_log_schema(), wal),
                prepared: BTreeMap::new(),
                detect_conflicts: true,
            })),
        }
    }

    /// Replace the retry policy governing the commit-path WAL flushes.
    pub fn with_retry_policy(self, retry: RetryPolicy) -> TxnManager {
        {
            let mut inner = self.inner.lock();
            let log = std::mem::replace(
                &mut inner.log,
                LoggedTable::create(&Storage::new(), op_log_schema(), Wal::new()),
            );
            inner.log = log.with_retry_policy(retry);
        }
        self
    }

    /// Disable first-committer-wins validation. **Deliberately unsound** —
    /// commits then blindly overwrite each other (lost updates). Exists so
    /// the interleaving harness can prove it detects a broken isolation
    /// implementation; never use it for real data.
    pub fn with_broken_conflict_detection(self) -> TxnManager {
        self.inner.lock().detect_conflicts = false;
        self
    }

    /// Register an (empty) table. Registration is in-memory metadata, like
    /// the catalog of a real system; [`TxnManager::recover`] takes the
    /// catalog as input for the same reason.
    pub fn create_table(&self, name: &str, schema: Schema) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if inner.tables.contains_key(name) {
            return Err(StorageError::SchemaMismatch {
                reason: format!("table '{name}' already exists"),
            });
        }
        inner
            .tables
            .insert(name.to_string(), VersionedTable::new(schema));
        Ok(())
    }

    /// Begin a transaction: its snapshot is everything committed so far.
    pub fn begin(&self) -> Txn {
        self.begin_with(false)
    }

    /// Begin an **internal** sub-transaction: identical isolation and
    /// durability, but silent on the transaction metric families. A
    /// sharded engine opens one sub-transaction per shard for every
    /// distributed transaction and does its own (single) accounting, so
    /// an N-shard deployment must not report N× the begins/commits or an
    /// N× `xst_txn_active` gauge. [`TxnManager::active_txns`] still
    /// counts internal transactions — it answers "who pins snapshots
    /// here", a per-manager question.
    pub fn begin_internal(&self) -> Txn {
        self.begin_with(true)
    }

    fn begin_with(&self, internal: bool) -> Txn {
        let mut inner = self.inner.lock();
        let id = inner.next_txn;
        inner.next_txn += 1;
        let begin_ts = inner.last_commit;
        inner.active += 1;
        drop(inner);
        // Remember whether the gauge actually saw this begin: increments
        // and decrements must pair exactly even if the collector is
        // toggled while the transaction is open.
        let gauge_counted = !internal && xst_obs::enabled();
        if gauge_counted {
            txn_begins_total().inc();
            txn_active_gauge().add(1.0);
        }
        Txn {
            mgr: self.clone(),
            id,
            begin_ts,
            snapshots: BTreeMap::new(),
            writes: BTreeMap::new(),
            finished: false,
            internal,
            gauge_counted,
        }
    }

    /// The latest committed identity of `name` — what a transaction
    /// beginning right now would read.
    pub fn latest_identity(&self, name: &str) -> StorageResult<Arc<ExtendedSet>> {
        let inner = self.inner.lock();
        let vt = require_table(&inner.tables, name)?;
        let head = vt.latest().ok_or_else(|| broken_chain(name))?;
        Ok(Arc::clone(&head.identity))
    }

    /// The latest commit timestamp.
    pub fn last_commit_ts(&self) -> CommitTs {
        self.inner.lock().last_commit
    }

    /// Number of transactions currently open — begun but neither
    /// committed nor aborted. Each open transaction may pin committed
    /// version identities, so a session layer that leaks transactions
    /// shows up here (and on the `xst_txn_active` gauge).
    pub fn active_txns(&self) -> u64 {
        self.inner.lock().active
    }

    /// A transaction finished (committed, aborted, or dropped): release
    /// its slot in the open-transaction count. `gauge_counted` says
    /// whether the begin incremented the `xst_txn_active` gauge; the
    /// decrement mirrors it exactly so multiple managers sharing the
    /// process-wide gauge compose by deltas instead of overwriting each
    /// other with their local counts.
    fn release_txn(&self, gauge_counted: bool) {
        let mut inner = self.inner.lock();
        inner.active = inner.active.saturating_sub(1);
        drop(inner);
        if gauge_counted {
            txn_active_gauge().force_add(-1.0);
        }
    }

    /// Autocommit convenience: run one batch of inserts as its own
    /// transaction.
    pub fn autocommit_insert(&self, table: &str, records: &[Record]) -> StorageResult<CommitTs> {
        let mut txn = self.begin();
        for r in records {
            txn.insert(table, r.clone())?;
        }
        txn.commit()
    }

    /// Rebuild committed state after a crash: recover the shared op log
    /// through the PR 3 machinery (checkpointed pages + marker-sealed WAL
    /// replay), then fold the surviving ops, in commit order, into one
    /// recovered version per table. `catalog` supplies the schemas, as a
    /// real system's separately-durable catalog would; tables in the
    /// catalog with no surviving ops recover empty. The recovered manager
    /// logs future commits into `fresh`.
    pub fn recover(
        storage: &Storage,
        wal: Wal,
        fresh: Wal,
        catalog: &[(&str, Schema)],
    ) -> StorageResult<TxnManager> {
        Self::recover_with_decisions(storage, wal, fresh, catalog, &BTreeSet::new()).map(|r| r.mgr)
    }

    /// Like [`TxnManager::recover`], but resolves **in-doubt** 2PC
    /// participants from the coordinator's decision log. Replay applies
    /// plain ops directly; gtxn-tagged ops are grouped per distributed
    /// transaction and applied at that transaction's local COMMIT
    /// control record. A prepare with no local commit by end-of-log is
    /// in doubt: the crash hit between the prepare flush and the local
    /// decision marker. It commits iff the coordinator's durable decision
    /// record names it in `committed`; otherwise it aborts (presumed
    /// abort — an undecided global transaction was never acknowledged).
    pub fn recover_with_decisions(
        storage: &Storage,
        wal: Wal,
        fresh: Wal,
        catalog: &[(&str, Schema)],
        committed: &BTreeSet<u64>,
    ) -> StorageResult<RecoveredParticipant> {
        let log = LoggedTable::recover_onto(storage, op_log_schema(), wal, fresh)?;
        let pool = BufferPool::new(storage.clone(), 8);
        let ops = log.table.file.read_all(&pool)?;
        let mut tables = BTreeMap::new();
        for (name, schema) in catalog {
            tables.insert(name.to_string(), VersionedTable::new(schema.clone()));
        }
        let mut identities: BTreeMap<String, ExtendedSet> = BTreeMap::new();
        let mut writes: BTreeMap<String, BTreeSet<Record>> = BTreeMap::new();
        // Ops of distributed transactions whose local decision has not
        // been replayed yet, keyed by gtxn (the prepare flush is one
        // marker-sealed batch, so ops and their PREPARE survive or vanish
        // together). `decided_early` tracks prepares applied straight
        // from the coordinator's decision set.
        let mut pending: BTreeMap<u64, Vec<(String, TxnOp)>> = BTreeMap::new();
        let mut decided_early: BTreeSet<u64> = BTreeSet::new();
        let mut max_gtxn = 0u64;
        fn apply_into(
            identities: &mut BTreeMap<String, ExtendedSet>,
            writes: &mut BTreeMap<String, BTreeSet<Record>>,
            name: String,
            op: &TxnOp,
        ) {
            let cur = identities
                .entry(name.clone())
                .or_insert_with(ExtendedSet::empty);
            *cur = apply_op(cur, op);
            writes.entry(name).or_default().insert(op.record().clone());
        }
        for op_record in &ops {
            match decode_entry(op_record)? {
                LogEntry::Op(name, op, None) => {
                    require_table(&tables, &name)?;
                    apply_into(&mut identities, &mut writes, name, &op);
                }
                LogEntry::Op(name, op, Some(gtxn)) => {
                    require_table(&tables, &name)?;
                    max_gtxn = max_gtxn.max(gtxn);
                    pending.entry(gtxn).or_default().push((name, op));
                }
                LogEntry::Prepare(gtxn) => {
                    max_gtxn = max_gtxn.max(gtxn);
                    // A transaction the coordinator durably decided commits
                    // *here*, at its prepare position, not at end of log.
                    // The commit lock serializes the whole 2PC round, so
                    // nothing else lands on this log between a PREPARE and
                    // its local COMMIT — applying at the prepare preserves
                    // commit order even when the best-effort local COMMIT
                    // marker was lost and a later transaction's ops (say a
                    // delete of a row this one inserted) follow in the log.
                    if committed.contains(&gtxn) {
                        for (name, op) in pending.remove(&gtxn).unwrap_or_default() {
                            apply_into(&mut identities, &mut writes, name, &op);
                        }
                        decided_early.insert(gtxn);
                    }
                }
                LogEntry::Commit(gtxn) => {
                    max_gtxn = max_gtxn.max(gtxn);
                    // Already applied at its PREPARE if the decision set
                    // named it; this local marker then adds nothing.
                    if !decided_early.remove(&gtxn) {
                        for (name, op) in pending.remove(&gtxn).unwrap_or_default() {
                            apply_into(&mut identities, &mut writes, name, &op);
                        }
                    }
                }
            }
        }
        // End of log. A decided-committed prepare with no local COMMIT
        // marker was already applied at its prepare position and is still
        // in `decided_early` — that is the in-doubt-committed case.
        // Everything still pending lacks a decision: presumed abort.
        let in_doubt_committed = decided_early.len() as u64;
        let in_doubt_aborted = pending.len() as u64;
        let recovered_any = !identities.is_empty();
        for (name, identity) in identities {
            let vt = tables.get_mut(&name).ok_or_else(|| broken_chain(&name))?;
            vt.versions.push(TableVersion {
                commit_ts: 1,
                identity: Arc::new(identity),
                writes: writes.remove(&name).unwrap_or_default(),
            });
        }
        let mgr = TxnManager {
            inner: Arc::new(Mutex::new(ManagerInner {
                next_txn: 1,
                last_commit: if recovered_any { 1 } else { 0 },
                active: 0,
                tables,
                log,
                prepared: BTreeMap::new(),
                detect_conflicts: true,
            })),
        };
        Ok(RecoveredParticipant {
            mgr,
            in_doubt_committed,
            in_doubt_aborted,
            max_gtxn,
        })
    }

    /// Number of committed versions retained for `name` (including the
    /// empty pre-history version).
    pub fn version_count(&self, name: &str) -> StorageResult<usize> {
        let inner = self.inner.lock();
        Ok(require_table(&inner.tables, name)?.versions.len())
    }

    /// Commit `txn`'s buffered writes. Called by [`Txn::commit`].
    fn commit_writes(
        &self,
        begin_ts: CommitTs,
        writes: &BTreeMap<String, Vec<TxnOp>>,
    ) -> StorageResult<CommitTs> {
        // lint: lock-across-io: group commit — the manager lock IS the commit order; the flush must happen inside it so acknowledged order equals publish order
        let mut inner = self.inner.lock();
        // Read-only transactions commit without a timestamp bump or a
        // flush — they wrote nothing, so there is nothing to make durable.
        if writes.is_empty() {
            return Ok(inner.last_commit);
        }
        validate_writes(&inner, begin_ts, writes)?;
        // Durability: one op-log batch, one group-commit flush, across
        // every table this transaction touched. `Ok` here is the ack —
        // acknowledged ⇒ recoverable. `Err` leaves the batch atomically
        // absent and the in-memory version chains untouched.
        let batch: Vec<Record> = writes
            .iter()
            .flat_map(|(name, ops)| ops.iter().map(move |op| encode_op(name, op)))
            .collect();
        inner.log.append_batch(&batch)?;
        publish_writes(&mut inner, writes)
    }

    /// **Phase one of two-phase commit.** Validate `writes` under
    /// first-committer-wins, then make them durable — tagged with `gtxn`
    /// and sealed with a PREPARE control record — in ONE group-commit
    /// flush. Nothing is published: the writes stay invisible to readers
    /// and are held in memory until [`TxnManager::commit_prepared`] or
    /// [`TxnManager::abort_prepared`] delivers the coordinator's
    /// decision. On `Err` the participant is clean: the batch is
    /// atomically absent and nothing was retained.
    ///
    /// The coordinator must serialize prepare→decision across
    /// participants (the sharded engine holds a commit lock for the whole
    /// 2PC round); two overlapping prepares on one participant would
    /// both pass validation because neither is published yet.
    pub fn prepare(
        &self,
        gtxn: u64,
        begin_ts: CommitTs,
        writes: BTreeMap<String, Vec<TxnOp>>,
    ) -> StorageResult<()> {
        // lint: lock-across-io: prepare must validate and flush atomically — releasing the lock between them would let a racing prepare validate against unpublished state
        let mut inner = self.inner.lock();
        validate_writes(&inner, begin_ts, &writes)?;
        let mut batch: Vec<Record> = writes
            .iter()
            .flat_map(|(name, ops)| ops.iter().map(move |op| encode_op_prepared(name, op, gtxn)))
            .collect();
        batch.push(encode_ctrl(CTRL_PREPARE, gtxn));
        inner.log.append_batch(&batch)?;
        inner.prepared.insert(gtxn, writes);
        Ok(())
    }

    /// **Phase two, commit.** The coordinator's decision record is
    /// already durable, so this CANNOT veto the transaction: the local
    /// COMMIT control record is written best-effort (if its flush dies,
    /// recovery resolves the in-doubt prepare from the coordinator's
    /// decisions instead), and the prepared writes are always published.
    /// Errors only on the invariant violations `Corrupt` covers — never
    /// on I/O.
    pub fn commit_prepared(&self, gtxn: u64) -> StorageResult<CommitTs> {
        // lint: lock-across-io: the best-effort decision marker and the publish must be one critical section so recovery and readers agree on commit order
        let mut inner = self.inner.lock();
        let writes = inner
            .prepared
            .remove(&gtxn)
            .ok_or_else(|| StorageError::Corrupt {
                reason: format!("commit_prepared({gtxn}): no such prepared transaction"),
            })?;
        // Best-effort local decision marker; the prepare flush already
        // made the ops durable and the coordinator record is the truth.
        let _ = inner.log.append_batch(&[encode_ctrl(CTRL_COMMIT, gtxn)]);
        publish_writes(&mut inner, &writes)
    }

    /// **Phase two, abort.** Purely in-memory — the prepared batch stays
    /// in the log but recovery discards prepares with no commit decision,
    /// so dropping the retained writes is all an abort takes. Infallible
    /// by design: an abort path that could itself fail would wedge the
    /// coordinator.
    pub fn abort_prepared(&self, gtxn: u64) {
        self.inner.lock().prepared.remove(&gtxn);
    }

    /// Distributed transactions currently prepared and awaiting a
    /// decision on this participant.
    pub fn prepared_txns(&self) -> usize {
        self.inner.lock().prepared.len()
    }

    /// Is `gtxn` currently prepared (awaiting a decision) here?
    pub fn has_prepared(&self, gtxn: u64) -> bool {
        self.inner.lock().prepared.contains_key(&gtxn)
    }

    /// The global transaction ids currently prepared here, in id order.
    /// An external coordinator resolving in-doubt state enumerates these
    /// and delivers commit/abort for each from its decision log.
    pub fn prepared_gtxns(&self) -> Vec<u64> {
        self.inner.lock().prepared.keys().copied().collect()
    }
}

/// First-committer-wins validation of `writes` against every version
/// committed after `begin_ts` (shared by the single-flush commit path and
/// the 2PC prepare path). With detection disabled, still validates table
/// existence so the deliberately-broken mode only breaks *isolation*.
fn validate_writes(
    inner: &ManagerInner,
    begin_ts: CommitTs,
    writes: &BTreeMap<String, Vec<TxnOp>>,
) -> StorageResult<()> {
    if !inner.detect_conflicts {
        for name in writes.keys() {
            require_table(&inner.tables, name)?;
        }
        return Ok(());
    }
    for (name, ops) in writes {
        let vt = require_table(&inner.tables, name)?;
        for v in vt.versions.iter().rev() {
            if v.commit_ts <= begin_ts {
                break;
            }
            if let Some(op) = ops.iter().find(|op| v.writes.contains(op.record())) {
                if xst_obs::enabled() {
                    txn_conflicts_total().inc();
                    xst_obs::cost::add_conflict();
                }
                return Err(StorageError::TxnConflict {
                    table: name.clone(),
                    reason: format!(
                        "record {:?} was written by commit ts {} after snapshot ts {begin_ts}",
                        op.record(),
                        v.commit_ts
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Publish validated, durable writes: one new version per written table,
/// all at the same commit timestamp (the transaction is atomic across
/// tables). Fails only on broken-chain invariant violations.
fn publish_writes(
    inner: &mut ManagerInner,
    writes: &BTreeMap<String, Vec<TxnOp>>,
) -> StorageResult<CommitTs> {
    let ts = inner.last_commit + 1;
    inner.last_commit = ts;
    for (name, ops) in writes {
        let vt = inner
            .tables
            .get_mut(name)
            .ok_or_else(|| broken_chain(name))?;
        let head = vt.latest().ok_or_else(|| broken_chain(name))?;
        let mut identity = (*head.identity).clone();
        for op in ops {
            identity = apply_op(&identity, op);
        }
        vt.versions.push(TableVersion {
            commit_ts: ts,
            identity: Arc::new(identity),
            writes: ops.iter().map(|op| op.record().clone()).collect(),
        });
    }
    Ok(ts)
}

/// A version chain lost its seed entry (or a validated table vanished) —
/// an invariant violation surfaced as corruption rather than a panic.
fn broken_chain(name: &str) -> StorageError {
    StorageError::Corrupt {
        reason: format!("broken version chain for table '{name}'"),
    }
}

fn require_table<'a>(
    tables: &'a BTreeMap<String, VersionedTable>,
    name: &str,
) -> StorageResult<&'a VersionedTable> {
    tables
        .get(name)
        .ok_or_else(|| StorageError::SchemaMismatch {
            reason: format!("no table named '{name}'"),
        })
}

/// Apply one op to a whole-set identity: insert is a union with the
/// singleton row identity, delete a difference — the set-processing
/// discipline all the way down.
fn apply_op(identity: &ExtendedSet, op: &TxnOp) -> ExtendedSet {
    let row = ExtendedSet::classical([Value::Set(op.record().to_tuple())]);
    match op {
        TxnOp::Insert(_) => union(identity, &row),
        TxnOp::Delete(_) => difference(identity, &row),
    }
}

/// A snapshot-isolated transaction. Reads come from the snapshot taken at
/// [`TxnManager::begin`] (plus this transaction's own writes); writes stay
/// buffered until [`Txn::commit`].
///
/// Dropping a transaction without committing aborts it.
pub struct Txn {
    mgr: TxnManager,
    id: TxnId,
    begin_ts: CommitTs,
    /// Identities pinned on first read — `Arc` clones of committed
    /// versions, so repeat reads are lock-free and provably stable.
    snapshots: BTreeMap<String, Arc<ExtendedSet>>,
    writes: BTreeMap<String, Vec<TxnOp>>,
    finished: bool,
    /// Metric-silent sub-transaction of a distributed transaction (see
    /// [`TxnManager::begin_internal`]).
    internal: bool,
    /// Whether the begin incremented the `xst_txn_active` gauge; the
    /// release decrements iff it did, so increments and decrements pair
    /// exactly across collector toggles.
    gauge_counted: bool,
}

impl Txn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The commit timestamp this transaction's snapshot was taken at.
    pub fn begin_ts(&self) -> CommitTs {
        self.begin_ts
    }

    /// True iff this transaction has buffered writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Pin (on first use) and return the snapshot identity of `table`,
    /// *without* this transaction's own writes.
    fn snapshot(&mut self, table: &str) -> StorageResult<Arc<ExtendedSet>> {
        if let Some(s) = self.snapshots.get(table) {
            return Ok(Arc::clone(s));
        }
        let inner = self.mgr.inner.lock();
        let vt = require_table(&inner.tables, table)?;
        let visible = vt
            .visible_at(self.begin_ts)
            .ok_or_else(|| broken_chain(table))?;
        let identity = Arc::clone(&visible.identity);
        drop(inner);
        self.snapshots
            .insert(table.to_string(), Arc::clone(&identity));
        Ok(identity)
    }

    fn schema(&self, table: &str) -> StorageResult<Schema> {
        let inner = self.mgr.inner.lock();
        Ok(require_table(&inner.tables, table)?.schema.clone())
    }

    /// The identity this transaction sees for `table`: the pinned snapshot
    /// with its own buffered writes applied in program order.
    pub fn read_identity(&mut self, table: &str) -> StorageResult<ExtendedSet> {
        let snap = self.snapshot(table)?;
        match self.writes.get(table) {
            None => Ok((*snap).clone()),
            Some(ops) => {
                let mut cur = (*snap).clone();
                for op in ops {
                    cur = apply_op(&cur, op);
                }
                Ok(cur)
            }
        }
    }

    /// A [`SetEngine`] over this transaction's view of `table` — the
    /// whole-set query surface (select/project/join/...) against a frozen
    /// snapshot. Zero-copy when the transaction has no writes on the
    /// table.
    pub fn engine(&mut self, table: &str) -> StorageResult<SetEngine> {
        let schema = self.schema(table)?;
        if self.writes.get(table).is_none_or(|ops| ops.is_empty()) {
            let snap = self.snapshot(table)?;
            return Ok(SetEngine::from_shared(snap, schema));
        }
        Ok(SetEngine::from_identity(self.read_identity(table)?, schema))
    }

    /// This transaction's view of `table` as sorted records.
    pub fn scan(&mut self, table: &str) -> StorageResult<Vec<Record>> {
        SetEngine::to_records(&self.read_identity(table)?)
    }

    /// Buffer an insert.
    pub fn insert(&mut self, table: &str, record: Record) -> StorageResult<()> {
        record.conforms(&self.schema(table)?)?;
        self.writes
            .entry(table.to_string())
            .or_default()
            .push(TxnOp::Insert(record));
        Ok(())
    }

    /// Buffer a delete (a no-op at read time if the record is absent).
    pub fn delete(&mut self, table: &str, record: Record) -> StorageResult<()> {
        record.conforms(&self.schema(table)?)?;
        self.writes
            .entry(table.to_string())
            .or_default()
            .push(TxnOp::Delete(record));
        Ok(())
    }

    /// Commit: validate first-committer-wins, group-commit the op batch
    /// through the WAL, publish new versions. On `Err` the transaction is
    /// aborted and had no effect (the failed batch is atomically absent
    /// from the log).
    pub fn commit(mut self) -> StorageResult<CommitTs> {
        let timer = (!self.internal && xst_obs::enabled()).then(Instant::now);
        self.finished = true;
        let result = self.mgr.commit_writes(self.begin_ts, &self.writes);
        self.mgr.release_txn(self.gauge_counted);
        if !self.internal && xst_obs::enabled() {
            match &result {
                Ok(_) => {
                    txn_commits_total().inc();
                    if let Some(t) = timer {
                        txn_commit_hist().observe_since(t);
                    }
                }
                Err(_) => txn_aborts_total().inc(),
            }
        }
        result
    }

    /// Abort: discard every buffered write. Also what [`Drop`] does.
    pub fn abort(mut self) {
        self.finished = true;
        self.mgr.release_txn(self.gauge_counted);
        if !self.internal && xst_obs::enabled() {
            txn_aborts_total().inc();
        }
    }

    /// Tear the transaction down and hand its snapshot timestamp and
    /// buffered writes to a 2PC coordinator: the sharded engine turns
    /// each per-shard sub-transaction into a [`TxnManager::prepare`]
    /// call. Releases the open-transaction slot — from here on the
    /// prepared write set, not the transaction handle, carries the work.
    pub(crate) fn into_writes(mut self) -> (CommitTs, BTreeMap<String, Vec<TxnOp>>) {
        self.finished = true;
        self.mgr.release_txn(self.gauge_counted);
        (self.begin_ts, std::mem::take(&mut self.writes))
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.mgr.release_txn(self.gauge_counted);
            if !self.internal && xst_obs::enabled() {
                txn_aborts_total().inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_schema() -> Schema {
        Schema::new(["k", "v"])
    }

    fn row(k: i64, v: i64) -> Record {
        Record::new([Value::Int(k), Value::Int(v)])
    }

    fn fresh() -> (Storage, Wal, TxnManager) {
        let storage = Storage::new();
        let wal = Wal::new();
        let mgr = TxnManager::new(&storage, wal.clone());
        mgr.create_table("t", kv_schema()).unwrap();
        (storage, wal, mgr)
    }

    #[test]
    fn autocommit_and_latest_identity() {
        let (_s, _w, mgr) = fresh();
        let ts = mgr
            .autocommit_insert("t", &[row(1, 10), row(2, 20)])
            .unwrap();
        assert_eq!(ts, 1);
        assert_eq!(mgr.latest_identity("t").unwrap().card(), 2);
        assert_eq!(mgr.last_commit_ts(), 1);
        assert_eq!(mgr.version_count("t").unwrap(), 2, "pre-history + 1 commit");
    }

    #[test]
    fn snapshot_reads_are_stable_across_concurrent_commits() {
        let (_s, _w, mgr) = fresh();
        mgr.autocommit_insert("t", &[row(1, 10)]).unwrap();
        let mut reader = mgr.begin();
        assert_eq!(reader.scan("t").unwrap(), vec![row(1, 10)]);
        // A later commit lands while the reader is open...
        mgr.autocommit_insert("t", &[row(2, 20)]).unwrap();
        // ...and the reader's view does not move.
        assert_eq!(reader.scan("t").unwrap(), vec![row(1, 10)]);
        assert_eq!(reader.commit().unwrap(), 2, "read-only commit, no ts bump");
        // A fresh transaction sees everything.
        let mut after = mgr.begin();
        assert_eq!(after.scan("t").unwrap(), vec![row(1, 10), row(2, 20)]);
    }

    #[test]
    fn read_your_own_writes() {
        let (_s, _w, mgr) = fresh();
        mgr.autocommit_insert("t", &[row(1, 10)]).unwrap();
        let mut txn = mgr.begin();
        txn.insert("t", row(2, 20)).unwrap();
        txn.delete("t", row(1, 10)).unwrap();
        assert_eq!(txn.scan("t").unwrap(), vec![row(2, 20)]);
        // Nothing is visible outside until commit.
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![row(1, 10)]);
        txn.commit().unwrap();
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![row(2, 20)]);
    }

    #[test]
    fn first_committer_wins() {
        let (_s, _w, mgr) = fresh();
        mgr.autocommit_insert("t", &[row(1, 10)]).unwrap();
        let mut t1 = mgr.begin();
        let mut t2 = mgr.begin();
        // Both rewrite the same row from the same snapshot.
        for t in [&mut t1, &mut t2] {
            t.delete("t", row(1, 10)).unwrap();
            t.insert("t", row(1, 11)).unwrap();
        }
        assert!(t1.commit().is_ok(), "first committer wins");
        match t2.commit() {
            Err(StorageError::TxnConflict { table, .. }) => assert_eq!(table, "t"),
            other => panic!("second committer must conflict, got {other:?}"),
        }
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![row(1, 11)]);
    }

    #[test]
    fn disjoint_writes_do_not_conflict() {
        let (_s, _w, mgr) = fresh();
        let mut t1 = mgr.begin();
        let mut t2 = mgr.begin();
        t1.insert("t", row(1, 10)).unwrap();
        t2.insert("t", row(2, 20)).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![row(1, 10), row(2, 20)]);
    }

    #[test]
    fn broken_conflict_detection_loses_updates() {
        let (_s, _w, mgr) = fresh();
        let mgr = mgr.with_broken_conflict_detection();
        mgr.autocommit_insert("t", &[row(1, 0)]).unwrap();
        let mut t1 = mgr.begin();
        let mut t2 = mgr.begin();
        for t in [&mut t1, &mut t2] {
            t.delete("t", row(1, 0)).unwrap();
            t.insert("t", row(1, 1)).unwrap();
        }
        t1.commit().unwrap();
        t2.commit().unwrap(); // the lost update: both "increments" applied blindly
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![row(1, 1)]);
    }

    #[test]
    fn engine_snapshot_is_queryable_and_shared() {
        let (_s, _w, mgr) = fresh();
        mgr.autocommit_insert("t", &[row(1, 10), row(2, 20), row(3, 10)])
            .unwrap();
        let mut txn = mgr.begin();
        let engine = txn.engine("t").unwrap();
        let hits = engine.select("v", &Value::Int(10)).unwrap();
        assert_eq!(hits.card(), 2);
        // Zero-copy: the engine's identity IS the committed version.
        let latest = mgr.latest_identity("t").unwrap();
        assert_eq!(engine.identity(), &*latest);
    }

    #[test]
    fn committed_txns_recover_after_crash() {
        let (storage, wal, mgr) = fresh();
        mgr.create_table("u", kv_schema()).unwrap();
        mgr.autocommit_insert("t", &[row(1, 10)]).unwrap();
        // One multi-table transaction.
        let mut txn = mgr.begin();
        txn.insert("t", row(2, 20)).unwrap();
        txn.insert("u", row(7, 70)).unwrap();
        txn.delete("t", row(1, 10)).unwrap();
        txn.commit().unwrap();
        // An in-flight transaction dies with the process.
        let mut doomed = mgr.begin();
        doomed.insert("t", row(9, 90)).unwrap();
        drop(doomed);
        drop(mgr); // crash
        let recovered = TxnManager::recover(
            &storage,
            wal,
            Wal::new(),
            &[("t", kv_schema()), ("u", kv_schema())],
        )
        .unwrap();
        assert_eq!(recovered.begin().scan("t").unwrap(), vec![row(2, 20)]);
        assert_eq!(recovered.begin().scan("u").unwrap(), vec![row(7, 70)]);
        // And the recovered manager accepts new commits.
        recovered.autocommit_insert("t", &[row(5, 50)]).unwrap();
        assert_eq!(
            recovered.begin().scan("t").unwrap(),
            vec![row(2, 20), row(5, 50)]
        );
    }

    #[test]
    fn unknown_tables_and_schema_violations_are_rejected() {
        let (_s, _w, mgr) = fresh();
        let mut txn = mgr.begin();
        assert!(txn.insert("nope", row(1, 1)).is_err());
        assert!(txn.scan("nope").is_err());
        assert!(txn.insert("t", Record::new([Value::Int(1)])).is_err());
        assert!(mgr.create_table("t", kv_schema()).is_err(), "duplicate");
    }

    #[test]
    fn prepared_writes_are_invisible_until_commit_prepared() {
        let (_s, _w, mgr) = fresh();
        let mut txn = mgr.begin_internal();
        txn.insert("t", row(1, 10)).unwrap();
        txn.insert("t", row(2, 20)).unwrap();
        let (begin_ts, writes) = txn.into_writes();
        mgr.prepare(7, begin_ts, writes).unwrap();
        assert_eq!(mgr.prepared_txns(), 1);
        // Phase one made nothing visible.
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![]);
        let ts = mgr.commit_prepared(7).unwrap();
        assert_eq!(ts, 1);
        assert_eq!(mgr.prepared_txns(), 0);
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![row(1, 10), row(2, 20)]);
        // Unknown gtxn is an invariant violation.
        assert!(mgr.commit_prepared(99).is_err());
    }

    #[test]
    fn abort_prepared_discards_in_memory_and_on_recovery() {
        let (storage, wal, mgr) = fresh();
        let mut txn = mgr.begin_internal();
        txn.insert("t", row(1, 10)).unwrap();
        let (begin_ts, writes) = txn.into_writes();
        mgr.prepare(3, begin_ts, writes).unwrap();
        mgr.abort_prepared(3);
        assert_eq!(mgr.prepared_txns(), 0);
        assert_eq!(mgr.begin().scan("t").unwrap(), vec![]);
        // The prepared batch is still physically in the log, but replay
        // without a decision for gtxn 3 discards it.
        drop(mgr);
        let r = TxnManager::recover_with_decisions(
            &storage,
            wal,
            Wal::new(),
            &[("t", kv_schema())],
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(r.mgr.begin().scan("t").unwrap(), vec![]);
        assert_eq!(r.in_doubt_aborted, 1);
        assert_eq!(r.in_doubt_committed, 0);
        assert_eq!(r.max_gtxn, 3);
    }

    #[test]
    fn in_doubt_prepares_resolve_from_the_coordinator_decision_set() {
        let (storage, wal, mgr) = fresh();
        mgr.autocommit_insert("t", &[row(1, 10)]).unwrap();
        let mut txn = mgr.begin_internal();
        txn.insert("t", row(2, 20)).unwrap();
        let (begin_ts, writes) = txn.into_writes();
        mgr.prepare(11, begin_ts, writes).unwrap();
        drop(mgr); // crash between prepare and the local decision marker
        let committed: BTreeSet<u64> = [11].into_iter().collect();
        let r = TxnManager::recover_with_decisions(
            &storage,
            wal,
            Wal::new(),
            &[("t", kv_schema())],
            &committed,
        )
        .unwrap();
        assert_eq!(
            r.mgr.begin().scan("t").unwrap(),
            vec![row(1, 10), row(2, 20)],
            "coordinator said COMMIT: the in-doubt prepare applies"
        );
        assert_eq!(r.in_doubt_committed, 1);
        assert_eq!(r.max_gtxn, 11);
    }

    #[test]
    fn locally_committed_prepares_recover_without_decisions() {
        let (storage, wal, mgr) = fresh();
        let mut txn = mgr.begin_internal();
        txn.insert("t", row(5, 50)).unwrap();
        let (begin_ts, writes) = txn.into_writes();
        mgr.prepare(2, begin_ts, writes).unwrap();
        mgr.commit_prepared(2).unwrap();
        drop(mgr); // crash after the local COMMIT marker
        let recovered =
            TxnManager::recover(&storage, wal, Wal::new(), &[("t", kv_schema())]).unwrap();
        assert_eq!(recovered.begin().scan("t").unwrap(), vec![row(5, 50)]);
    }

    #[test]
    fn prepare_validates_first_committer_wins() {
        let (_s, _w, mgr) = fresh();
        mgr.autocommit_insert("t", &[row(1, 10)]).unwrap();
        let mut txn = mgr.begin_internal();
        txn.delete("t", row(1, 10)).unwrap();
        let (begin_ts, writes) = txn.into_writes();
        // A conflicting single-flush commit lands first.
        let mut rival = mgr.begin();
        rival.delete("t", row(1, 10)).unwrap();
        rival.insert("t", row(1, 11)).unwrap();
        rival.commit().unwrap();
        match mgr.prepare(4, begin_ts, writes) {
            Err(StorageError::TxnConflict { table, .. }) => assert_eq!(table, "t"),
            other => panic!("prepare must validate, got {other:?}"),
        }
        assert_eq!(mgr.prepared_txns(), 0, "failed prepare retains nothing");
    }

    #[test]
    fn tagged_op_and_control_codec_roundtrip() {
        let op = TxnOp::Delete(row(8, 80));
        match decode_entry(&encode_op_prepared("u", &op, 42)).unwrap() {
            LogEntry::Op(name, back, Some(42)) => {
                assert_eq!(name, "u");
                assert_eq!(back, op);
            }
            _ => panic!("tagged op did not round-trip"),
        }
        match decode_entry(&encode_ctrl(CTRL_PREPARE, 7)).unwrap() {
            LogEntry::Prepare(7) => {}
            _ => panic!("prepare ctrl did not round-trip"),
        }
        match decode_entry(&encode_ctrl(CTRL_COMMIT, 9)).unwrap() {
            LogEntry::Commit(9) => {}
            _ => panic!("commit ctrl did not round-trip"),
        }
        // Garbage gtxn suffixes and unknown control tags are corruption.
        let bad = Record::new([
            Value::str("t"),
            Value::sym("ixy"),
            Value::Set(row(1, 1).to_tuple()),
        ]);
        assert!(decode_entry(&bad).is_err());
        let bad = Record::new([Value::str(CTRL_TABLE), Value::sym("z"), Value::Int(1)]);
        assert!(decode_entry(&bad).is_err());
    }

    #[test]
    fn op_codec_roundtrip_and_corrupt_ops_are_errors() {
        let op = TxnOp::Insert(row(3, 33));
        let (name, back) = decode_op(&encode_op("t", &op)).unwrap();
        assert_eq!(name, "t");
        assert_eq!(back, op);
        let bad = Record::new([
            Value::str("t"),
            Value::sym("x"),
            Value::Set(row(1, 1).to_tuple()),
        ]);
        assert!(decode_op(&bad).is_err(), "unknown tag");
        let bad = Record::new([Value::Int(1)]);
        assert!(decode_op(&bad).is_err(), "wrong arity");
    }
}
