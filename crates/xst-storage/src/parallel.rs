//! Parallel set loading — building a table's canonical identity with one
//! thread per page range.
//!
//! Canonicalization commutes with union, so a heap file's identity can be
//! built as `⋃ chunks` where each chunk is canonicalized independently.
//! Threads read disjoint page ranges straight from the disk (no shared
//! pool, no false sharing), decode locally, and the main thread merges the
//! sorted chunk results — a cheaper merge than one global sort.

use crate::error::{StorageError, StorageResult};
use crate::file::HeapFile;
use crate::record::Record;
use xst_core::ops::union_all;
use xst_core::{ExtendedSet, SetBuilder, Value};

/// Build the file's set identity (classical set of positional-tuple
/// records) using up to `threads` worker threads.
///
/// Agrees exactly with the sequential `SetEngine::load` identity; the
/// unflushed tail page is decoded on the calling thread.
pub fn load_identity_parallel(file: &HeapFile, threads: usize) -> StorageResult<ExtendedSet> {
    let pages = file.flushed_page_count()?;
    let threads = threads.max(1).min(pages.max(1));
    let chunk = pages.div_ceil(threads);

    let mut chunks: Vec<StorageResult<ExtendedSet>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(pages);
            if lo >= hi {
                continue;
            }
            handles.push(scope.spawn(move |_| -> StorageResult<ExtendedSet> {
                // One lock acquisition per sub-range keeps the shared disk
                // mutex cold while decode (the expensive part) runs
                // lock-free. Sub-ranges bound peak memory per thread.
                const STRIDE: usize = 64;
                let mut b = SetBuilder::new();
                let mut at = lo;
                while at < hi {
                    let end = (at + STRIDE).min(hi);
                    for page in file.read_page_range_direct(at, end)? {
                        for payload in page.iter() {
                            let record = Record::decode(payload)?;
                            b.classical_elem(Value::Set(record.to_tuple()));
                        }
                    }
                    at = end;
                }
                Ok(b.build())
            }));
        }
        for h in handles {
            chunks.push(h.join().unwrap_or_else(|_| {
                Err(StorageError::Corrupt {
                    reason: "parallel loader thread panicked".into(),
                })
            }));
        }
    })
    .map_err(|_| StorageError::Corrupt {
        reason: "parallel loader thread panicked".into(),
    })?;

    let mut sets = Vec::with_capacity(chunks.len() + 1);
    for c in chunks {
        sets.push(c?);
    }
    // Tail records decoded on this thread.
    let mut tail = SetBuilder::new();
    for r in file.tail_records()? {
        tail.classical_elem(Value::Set(r.to_tuple()));
    }
    sets.push(tail.build());
    Ok(union_all(sets.iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::{BufferPool, Storage};
    use crate::engine::{SetEngine, Table};
    use crate::record::Schema;

    fn table(n: i64, sync: bool) -> (Storage, Table) {
        let storage = Storage::new();
        let mut t = Table::create(&storage, Schema::new(["id", "name"]));
        let rows: Vec<Record> = (0..n)
            .map(|i| Record::new([Value::Int(i), Value::str(format!("row-{i}"))]))
            .collect();
        // Load without the automatic sync to exercise the tail path.
        for r in &rows {
            t.file.append(r).unwrap();
        }
        if sync {
            t.file.sync().unwrap();
        }
        (storage, t)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (storage, t) = table(5_000, true);
        let pool = BufferPool::new(storage, 8);
        let sequential = SetEngine::load(&t, &pool).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel = load_identity_parallel(&t.file, threads).unwrap();
            assert_eq!(&parallel, sequential.identity(), "threads = {threads}");
        }
    }

    #[test]
    fn unflushed_tail_is_included() {
        let (storage, t) = table(1_003, false);
        let pool = BufferPool::new(storage, 8);
        let sequential = SetEngine::load(&t, &pool).unwrap();
        let parallel = load_identity_parallel(&t.file, 4).unwrap();
        assert_eq!(&parallel, sequential.identity());
        assert_eq!(parallel.card(), 1_003);
    }

    #[test]
    fn empty_file() {
        let (_, t) = table(0, true);
        let identity = load_identity_parallel(&t.file, 4).unwrap();
        assert!(identity.is_empty());
    }

    #[test]
    fn more_threads_than_pages_is_fine() {
        let (_, t) = table(10, true);
        let identity = load_identity_parallel(&t.file, 64).unwrap();
        assert_eq!(identity.card(), 10);
    }
}
