//! Records and files with *mathematical identity*.
//!
//! The 1977 program's key move: a stored record is not an ad-hoc byte
//! layout but an extended set — an n-tuple `{v1^1, ..., vn^n}` (positional
//! identity) or a field-scoped set `{v^name, ...}` (named identity). A file
//! is then a classical set of record sets, and data management operations
//! are *set* operations with provable algebraic behavior.

use crate::codec::{decode_exact, encode_to_vec};
use crate::error::{StorageError, StorageResult};
use xst_core::{ExtendedSet, SetBuilder, Value};

/// An ordered, named record layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<String>,
}

impl Schema {
    /// Build a schema from field names.
    pub fn new<S: Into<String>>(fields: impl IntoIterator<Item = S>) -> Schema {
        Schema {
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field names in order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Position of `name`, if present.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Position of `name` or a schema error.
    pub fn require(&self, name: &str) -> StorageResult<usize> {
        self.position(name)
            .ok_or_else(|| StorageError::SchemaMismatch {
                reason: format!("no field named {name}"),
            })
    }
}

/// One record: values aligned with a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Record {
        Record {
            values: values.into_iter().collect(),
        }
    }

    /// The record's values in field order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at `position`.
    pub fn get(&self, position: usize) -> Option<&Value> {
        self.values.get(position)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Check the record against a schema.
    pub fn conforms(&self, schema: &Schema) -> StorageResult<()> {
        if self.arity() == schema.arity() {
            Ok(())
        } else {
            Err(StorageError::SchemaMismatch {
                reason: format!(
                    "record arity {} vs schema arity {}",
                    self.arity(),
                    schema.arity()
                ),
            })
        }
    }

    /// Positional identity: the n-tuple `{v1^1, ..., vn^n}` (Definition 9.1).
    pub fn to_tuple(&self) -> ExtendedSet {
        ExtendedSet::tuple(self.values.iter().cloned())
    }

    /// Recover a record from its positional identity.
    pub fn from_tuple(set: &ExtendedSet) -> StorageResult<Record> {
        set.as_tuple()
            .map(Record::new)
            .ok_or_else(|| StorageError::SchemaMismatch {
                reason: format!("{set} is not an n-tuple"),
            })
    }

    /// Named identity: `{v1^f1, ..., vn^fn}` under `schema`'s field names.
    pub fn to_named(&self, schema: &Schema) -> StorageResult<ExtendedSet> {
        self.conforms(schema)?;
        let mut b = SetBuilder::with_capacity(self.arity());
        for (v, name) in self.values.iter().zip(schema.fields()) {
            b.scoped(v.clone(), Value::sym(name));
        }
        Ok(b.build())
    }

    /// Recover a record from its named identity.
    ///
    /// Duplicate members under one field scope are a schema violation;
    /// missing fields likewise.
    pub fn from_named(set: &ExtendedSet, schema: &Schema) -> StorageResult<Record> {
        let mut values: Vec<Option<Value>> = vec![None; schema.arity()];
        for (elem, scope) in set.iter() {
            let Value::Sym(name) = scope else {
                return Err(StorageError::SchemaMismatch {
                    reason: format!("scope {scope} is not a field name"),
                });
            };
            let pos = schema.require(name)?;
            if values[pos].replace(elem.clone()).is_some() {
                return Err(StorageError::SchemaMismatch {
                    reason: format!("field {name} bound twice"),
                });
            }
        }
        values
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| StorageError::SchemaMismatch {
                    reason: format!("field {} missing", schema.fields()[i]),
                })
            })
            .collect::<StorageResult<Vec<_>>>()
            .map(Record::new)
    }

    /// Encode via the positional identity.
    pub fn encode(&self) -> Vec<u8> {
        encode_to_vec(&Value::Set(self.to_tuple()))
    }

    /// Decode from bytes produced by [`Record::encode`].
    pub fn decode(bytes: &[u8]) -> StorageResult<Record> {
        let v = decode_exact(bytes)?;
        let Value::Set(s) = v else {
            return Err(StorageError::Corrupt {
                reason: "record bytes decoded to an atom".into(),
            });
        };
        Record::from_tuple(&s)
    }
}

/// The file-level identity: a classical set whose elements are the records'
/// positional identities.
pub fn file_identity<'a>(records: impl IntoIterator<Item = &'a Record>) -> ExtendedSet {
    ExtendedSet::classical(records.into_iter().map(|r| Value::Set(r.to_tuple())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::xset;

    fn schema() -> Schema {
        Schema::new(["id", "name", "qty"])
    }

    fn rec() -> Record {
        Record::new([Value::Int(7), Value::str("bolt"), Value::Int(40)])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("name"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert!(s.require("qty").is_ok());
        assert!(s.require("nope").is_err());
    }

    #[test]
    fn positional_identity_roundtrip() {
        let r = rec();
        let t = r.to_tuple();
        assert_eq!(t.tuple_len(), Some(3));
        assert_eq!(Record::from_tuple(&t).unwrap(), r);
    }

    #[test]
    fn named_identity_roundtrip() {
        let r = rec();
        let s = schema();
        let named = r.to_named(&s).unwrap();
        assert!(named.contains(&Value::str("bolt"), &Value::sym("name")));
        assert_eq!(Record::from_named(&named, &s).unwrap(), r);
    }

    #[test]
    fn named_identity_is_order_free() {
        // The whole point: the named identity does not depend on field
        // order, so two layouts of the same record are the same set.
        let s1 = Schema::new(["a", "b"]);
        let s2 = Schema::new(["b", "a"]);
        let r1 = Record::new([Value::Int(1), Value::Int(2)]);
        let r2 = Record::new([Value::Int(2), Value::Int(1)]);
        assert_eq!(r1.to_named(&s1).unwrap(), r2.to_named(&s2).unwrap());
    }

    #[test]
    fn from_named_detects_violations() {
        let s = schema();
        let missing = xset![Value::Int(7) => "id"];
        assert!(Record::from_named(&missing, &s).is_err());
        let unknown = xset![Value::Int(7) => "bogus"];
        assert!(Record::from_named(&unknown, &s).is_err());
        let doubled = xset![Value::Int(7) => "id", Value::Int(8) => "id",
            Value::str("x") => "name", Value::Int(1) => "qty"];
        assert!(Record::from_named(&doubled, &s).is_err());
        let bad_scope = xset![Value::Int(7) => 3];
        assert!(Record::from_named(&bad_scope, &s).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = rec();
        assert_eq!(Record::decode(&r.encode()).unwrap(), r);
        assert!(Record::decode(b"garbage").is_err());
    }

    #[test]
    fn conforms_checks_arity() {
        assert!(rec().conforms(&schema()).is_ok());
        assert!(rec().conforms(&Schema::new(["one"])).is_err());
    }

    #[test]
    fn file_identity_dedups_equal_records() {
        let a = rec();
        let b = rec();
        let c = Record::new([Value::Int(8), Value::str("nut"), Value::Int(2)]);
        let f = file_identity([&a, &b, &c]);
        assert_eq!(f.card(), 2, "a and b are the same set");
    }

    #[test]
    fn atom_record_bytes_rejected() {
        let atom_bytes = crate::codec::encode_to_vec(&Value::Int(3));
        assert!(Record::decode(&atom_bytes).is_err());
    }
}
