//! Binary codec for [`Value`]s — the stored representation of extended sets.
//!
//! The central claim of the VLDB-1977 program is that *stored* data has a
//! mathematical identity. This codec is the bridge: any [`Value`] (atom or
//! arbitrarily nested extended set) serializes to a compact tagged byte
//! string and back, bit-exactly, so a page of bytes *is* a set of values.
//!
//! Layout (little-endian):
//!
//! ```text
//! value  := tag:u8 payload
//! tag 0  bool      payload = u8 (0/1)
//! tag 1  int       payload = i64
//! tag 2  float     payload = f64 bits
//! tag 3  sym       payload = len:u32, utf-8 bytes
//! tag 4  str       payload = len:u32, utf-8 bytes
//! tag 5  bytes     payload = len:u32, raw bytes
//! tag 6  set       payload = count:u32, count × (value value)   -- (elem, scope)
//! ```

use crate::error::{StorageError, StorageResult};
use bytes::{Buf, BufMut, BytesMut};
use xst_core::{ExtendedSet, Member, Value};

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_SYM: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_SET: u8 = 6;

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut BytesMut) {
    match v {
        Value::Bool(b) => {
            out.put_u8(TAG_BOOL);
            out.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i64_le(*i);
        }
        Value::Float(f) => {
            out.put_u8(TAG_FLOAT);
            out.put_u64_le(f.0.to_bits());
        }
        Value::Sym(s) => {
            out.put_u8(TAG_SYM);
            put_bytes(out, s.as_bytes());
        }
        Value::Str(s) => {
            out.put_u8(TAG_STR);
            put_bytes(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.put_u8(TAG_BYTES);
            put_bytes(out, b);
        }
        Value::Set(s) => {
            out.put_u8(TAG_SET);
            out.put_u32_le(s.card() as u32);
            for m in s.members() {
                encode_value(&m.element, out);
                encode_value(&m.scope, out);
            }
        }
    }
}

fn put_bytes(out: &mut BytesMut, b: &[u8]) {
    out.put_u32_le(b.len() as u32);
    out.put_slice(b);
}

/// Encode a value into a fresh buffer.
pub fn encode_to_vec(v: &Value) -> Vec<u8> {
    let mut out = BytesMut::new();
    encode_value(v, &mut out);
    out.to_vec()
}

/// Decode one value from the front of `buf`, advancing it.
pub fn decode_value(buf: &mut &[u8]) -> StorageResult<Value> {
    if buf.is_empty() {
        return Err(corrupt("unexpected end of input"));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::float(f64::from_bits(buf.get_u64_le())))
        }
        TAG_SYM => Ok(Value::sym(get_str(buf)?)),
        TAG_STR => Ok(Value::str(get_str(buf)?)),
        TAG_BYTES => {
            let b = get_bytes(buf)?;
            Ok(Value::bytes(b))
        }
        TAG_SET => {
            need(buf, 4)?;
            let count = buf.get_u32_le() as usize;
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                let element = decode_value(buf)?;
                let scope = decode_value(buf)?;
                members.push(Member::new(element, scope));
            }
            Ok(Value::Set(ExtendedSet::from_members(members)))
        }
        other => Err(corrupt(format!("unknown tag {other}"))),
    }
}

/// Decode a value that must consume the whole buffer.
pub fn decode_exact(mut buf: &[u8]) -> StorageResult<Value> {
    let v = decode_value(&mut buf)?;
    if !buf.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", buf.len())));
    }
    Ok(v)
}

fn need(buf: &&[u8], n: usize) -> StorageResult<()> {
    if buf.len() < n {
        Err(corrupt(format!("need {n} bytes, have {}", buf.len())))
    } else {
        Ok(())
    }
}

fn get_bytes(buf: &mut &[u8]) -> StorageResult<Vec<u8>> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    let b = get_bytes(buf)?;
    String::from_utf8(b).map_err(|e| corrupt(format!("invalid utf-8: {e}")))
}

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::{xset, xtuple};

    fn roundtrip(v: &Value) {
        let bytes = encode_to_vec(v);
        let back = decode_exact(&bytes).unwrap();
        assert_eq!(&back, v, "roundtrip of {v}");
    }

    #[test]
    fn atoms_roundtrip() {
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Int(0));
        roundtrip(&Value::Int(i64::MIN));
        roundtrip(&Value::Int(i64::MAX));
        roundtrip(&Value::float(2.5));
        roundtrip(&Value::float(-0.0));
        roundtrip(&Value::sym("hello"));
        roundtrip(&Value::str("data ✓ unicode"));
        roundtrip(&Value::bytes([0u8, 255, 7]));
    }

    #[test]
    fn nan_roundtrips_bit_exactly() {
        let v = Value::float(f64::NAN);
        let back = decode_exact(&encode_to_vec(&v)).unwrap();
        assert_eq!(back, v, "total_cmp equality treats same-bits NaN as equal");
    }

    #[test]
    fn sets_roundtrip() {
        roundtrip(&Value::empty_set());
        roundtrip(&xset!["a" => 1, "b"].into_value());
        roundtrip(&xtuple!["a", "b", "c"].into_value());
        let nested = xset![
            xtuple!["a", "x"].into_value() => xtuple!["A", "Z"].into_value(),
            xset![xset!["deep" => 9].into_value()].into_value()
        ];
        roundtrip(&nested.into_value());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_exact(&[]).is_err());
        assert!(decode_exact(&[99]).is_err(), "unknown tag");
        assert!(decode_exact(&[TAG_INT, 1, 2]).is_err(), "short int");
        assert!(
            decode_exact(&[TAG_SYM, 10, 0, 0, 0, b'a']).is_err(),
            "short body"
        );
        // trailing garbage after a valid value
        let mut bytes = encode_to_vec(&Value::Int(1));
        bytes.push(0);
        assert!(decode_exact(&bytes).is_err());
        // invalid utf-8 in a symbol
        assert!(decode_exact(&[TAG_SYM, 1, 0, 0, 0, 0xFF]).is_err());
    }

    #[test]
    fn encoding_is_deterministic_for_equal_sets() {
        // Canonical member order makes the encoding canonical too.
        let a = xset!["b" => 2, "a" => 1].into_value();
        let b = xset!["a" => 1, "b" => 2].into_value();
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
    }
}
