//! Bounded retry with deterministic exponential backoff.
//!
//! Transient I/O failures ([`StorageError::Transient`]) are worth retrying;
//! everything else — corruption, torn writes, contract violations — is
//! permanent and surfaces immediately. [`RetryPolicy`] bounds the attempts
//! and computes an exponential backoff delay per attempt; the delay is
//! *simulated* (recorded in the `xst_storage_retry_backoff_ns` histogram,
//! never slept), so retried runs stay deterministic and fast while the
//! observable backoff curve is exactly what a wall-clock implementation
//! would produce.
//!
//! [`StorageError::Transient`]: crate::error::StorageError::Transient

use crate::error::StorageResult;
use std::sync::{Arc, OnceLock};
use xst_obs::{registry, Counter, Histogram};

fn retries_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_RETRIES_TOTAL,
            "Transient storage failures that were retried.",
        )
    })
}

fn give_ups_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_RETRY_GIVE_UPS_TOTAL,
            "Operations abandoned after exhausting their retry budget.",
        )
    })
}

fn backoff_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::STORAGE_RETRY_BACKOFF_NS,
            "Simulated exponential-backoff delay before each retry.",
        )
    })
}

/// Bounded-attempt retry with exponential backoff. `Copy` and tiny: thread
/// it by value through pools, files, and engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay_ns: u64,
    max_delay_ns: u64,
}

impl RetryPolicy {
    /// A policy allowing up to `max_attempts` total attempts (so
    /// `max_attempts - 1` retries), backing off from `base_delay_ns`
    /// doubling per retry, capped at `max_delay_ns`.
    pub fn new(max_attempts: u32, base_delay_ns: u64, max_delay_ns: u64) -> RetryPolicy {
        assert!(
            max_attempts >= 1,
            "a policy must allow at least one attempt"
        );
        RetryPolicy {
            max_attempts,
            base_delay_ns,
            max_delay_ns,
        }
    }

    /// No retries: the first failure is final. Crash harnesses use this so
    /// an injected fault surfaces instead of being absorbed.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new(1, 0, 0)
    }

    /// Total attempts allowed (first try included).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The simulated backoff before retry number `retry` (1-based):
    /// `base * 2^(retry-1)`, capped.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(63);
        let shifted = self.base_delay_ns.saturating_mul(1u64 << exp);
        shifted.min(self.max_delay_ns)
    }
}

impl Default for RetryPolicy {
    /// Four attempts, 50 µs base, 10 ms cap — absorbs isolated transient
    /// hiccups without masking persistent failure.
    fn default() -> RetryPolicy {
        RetryPolicy::new(4, 50_000, 10_000_000)
    }
}

/// Run `f` under `policy`: retry transient failures up to the attempt
/// bound, recording each retry (counter) and its simulated backoff delay
/// (histogram); surface permanent errors immediately and count a give-up
/// when the budget is exhausted while still failing transiently.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    mut f: impl FnMut() -> StorageResult<T>,
) -> StorageResult<T> {
    let mut attempt = 1u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < policy.max_attempts() => {
                retries_total().inc();
                backoff_hist().observe(policy.backoff_ns(attempt));
                xst_obs::cost::add_retry();
                attempt += 1;
            }
            Err(e) => {
                if e.is_transient() {
                    give_ups_total().inc();
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;

    fn transient() -> StorageError {
        StorageError::Transient { op: "test".into() }
    }

    #[test]
    fn first_success_needs_no_retry() {
        let mut calls = 0;
        let r: StorageResult<i32> = with_retry(&RetryPolicy::default(), || {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_failures_are_retried_up_to_the_bound() {
        let mut calls = 0;
        let r = with_retry(&RetryPolicy::new(3, 10, 1000), || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 3);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_transient_error() {
        let mut calls = 0;
        let r: StorageResult<()> = with_retry(&RetryPolicy::new(3, 10, 1000), || {
            calls += 1;
            Err(transient())
        });
        assert!(matches!(r, Err(StorageError::Transient { .. })));
        assert_eq!(calls, 3, "exactly max_attempts calls");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let mut calls = 0;
        let r: StorageResult<()> = with_retry(&RetryPolicy::new(5, 10, 1000), || {
            calls += 1;
            Err(StorageError::Corrupt {
                reason: "hard".into(),
            })
        });
        assert!(matches!(r, Err(StorageError::Corrupt { .. })));
        assert_eq!(calls, 1);
    }

    #[test]
    fn none_policy_means_one_attempt() {
        let mut calls = 0;
        let r: StorageResult<()> = with_retry(&RetryPolicy::none(), || {
            calls += 1;
            Err(transient())
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new(10, 100, 550);
        assert_eq!(p.backoff_ns(1), 100);
        assert_eq!(p.backoff_ns(2), 200);
        assert_eq!(p.backoff_ns(3), 400);
        assert_eq!(p.backoff_ns(4), 550, "capped");
        assert_eq!(p.backoff_ns(63), 550, "no overflow at large retries");
        assert_eq!(p.backoff_ns(200), 550, "shift overflow saturates");
    }
}
