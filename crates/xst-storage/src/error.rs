//! Error types for the storage substrate.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record did not fit in a page.
    RecordTooLarge {
        /// Encoded size of the record.
        size: usize,
        /// Maximum payload a fresh page can hold.
        max: usize,
    },
    /// A page id was out of range for the file.
    PageOutOfRange {
        /// The requested page id.
        page: usize,
        /// Number of pages in the file.
        pages: usize,
    },
    /// A slot id was out of range for the page.
    SlotOutOfRange {
        /// The requested slot.
        slot: usize,
        /// Number of slots on the page.
        slots: usize,
    },
    /// Stored bytes failed to decode as a value.
    Corrupt {
        /// Human-readable explanation.
        reason: String,
    },
    /// A record's shape did not match the schema it was used with.
    SchemaMismatch {
        /// Human-readable explanation.
        reason: String,
    },
    /// A transient I/O failure: the device hiccuped but retrying the same
    /// operation may succeed. The only variant [`StorageError::is_transient`]
    /// reports, and therefore the only one a [`crate::retry::RetryPolicy`]
    /// will retry.
    Transient {
        /// The operation that failed (e.g. `"append_page"`).
        op: String,
    },
    /// A permanent I/O failure: a failed or torn write, or a failed
    /// fsync-equivalent. Retrying will not help; recovery might.
    Io {
        /// The operation that failed.
        op: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// In-memory state no longer mirrors durable state (e.g. a record was
    /// acknowledged in the WAL but could not be applied to its heap file).
    /// The handle is wedged; run [`crate::wal::LoggedTable::recover`].
    NeedsRecovery {
        /// Human-readable explanation.
        reason: String,
    },
    /// A snapshot-isolated transaction lost the first-committer-wins race:
    /// another transaction committed an overlapping write set after this
    /// one took its snapshot. The transaction is aborted; re-running it
    /// against a fresh snapshot may succeed, but the *same* commit attempt
    /// must not be retried blindly — hence not
    /// [`StorageError::is_transient`].
    TxnConflict {
        /// The table on which the write sets collided.
        table: String,
        /// Human-readable explanation (which records overlapped).
        reason: String,
    },
    /// Propagated error from the XST algebra.
    Xst(xst_core::XstError),
}

impl StorageError {
    /// True iff retrying the failed operation may succeed. Everything but
    /// [`StorageError::Transient`] is permanent: corruption, contract
    /// violations, and hard I/O failures don't heal on retry.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Transient { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page payload {max}")
            }
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages})")
            }
            StorageError::SlotOutOfRange { slot, slots } => {
                write!(f, "slot {slot} out of range (page has {slots})")
            }
            StorageError::Corrupt { reason } => write!(f, "corrupt page data: {reason}"),
            StorageError::SchemaMismatch { reason } => write!(f, "schema mismatch: {reason}"),
            StorageError::Transient { op } => {
                write!(f, "transient i/o failure during {op} (retry may succeed)")
            }
            StorageError::Io { op, reason } => write!(f, "i/o failure during {op}: {reason}"),
            StorageError::NeedsRecovery { reason } => {
                write!(f, "storage needs recovery: {reason}")
            }
            StorageError::TxnConflict { table, reason } => {
                write!(
                    f,
                    "write-write conflict on table '{table}' (first committer wins): {reason}"
                )
            }
            StorageError::Xst(e) => write!(f, "xst error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<xst_core::XstError> for StorageError {
    fn from(e: xst_core::XstError) -> Self {
        StorageError::Xst(e)
    }
}

/// Result alias for the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = StorageError::RecordTooLarge {
            size: 9000,
            max: 4080,
        };
        assert!(e.to_string().contains("9000"));
        let e = StorageError::PageOutOfRange { page: 9, pages: 3 };
        assert!(e.to_string().contains("page 9"));
        let e = StorageError::Corrupt {
            reason: "bad tag".into(),
        };
        assert!(e.to_string().contains("bad tag"));
    }

    #[test]
    fn transient_classification_is_exact() {
        let t = StorageError::Transient {
            op: "read_page".into(),
        };
        assert!(t.is_transient());
        assert!(t.to_string().contains("read_page"));
        for permanent in [
            StorageError::Io {
                op: "append_page".into(),
                reason: "torn write".into(),
            },
            StorageError::NeedsRecovery {
                reason: "acknowledged record not applied".into(),
            },
            StorageError::Corrupt {
                reason: "bad frame".into(),
            },
            StorageError::PageOutOfRange { page: 1, pages: 0 },
            StorageError::TxnConflict {
                table: "t".into(),
                reason: "overlapping write sets".into(),
            },
        ] {
            assert!(!permanent.is_transient(), "{permanent} must be permanent");
        }
    }

    #[test]
    fn converts_from_xst_error() {
        let x = xst_core::XstError::NoUniqueValue { candidates: 0 };
        let s: StorageError = x.clone().into();
        assert_eq!(s, StorageError::Xst(x));
    }
}
