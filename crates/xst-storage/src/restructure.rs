//! Dynamic data restructuring (experiment E6).
//!
//! The XST line argues that because a stored file *is* a set, changing its
//! layout — permuting columns, renaming fields, projecting columns away —
//! is a **re-scope** of the identity, not a byte-level rewrite of every
//! record. This module provides both disciplines over the same table:
//!
//! * [`restructure_records`] — the record-processing way: scan, decode,
//!   rebuild each record in the new layout, write a whole new file
//!   (paying one disk write per page of output, on top of the read pass);
//! * [`restructure_set`] — the set-processing way: one σ-domain over the
//!   canonical identity with the permutation spec `{old^new, ...}`
//!   (Definition 7.4), no storage traffic at all until/unless the result is
//!   persisted.

use crate::bufpool::{BufferPool, Storage};
use crate::engine::Table;
use crate::error::{StorageError, StorageResult};
use crate::record::{Record, Schema};
use xst_core::ops::sigma_domain;
use xst_core::{ExtendedSet, Value};

/// A column permutation/projection: for each *output* position, the input
/// field it draws from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restructuring {
    /// `source[j]` is the input position feeding output position `j`.
    pub source: Vec<usize>,
    /// Field names of the output layout.
    pub names: Vec<String>,
}

impl Restructuring {
    /// Build from `(output_name, input_field)` pairs against a schema.
    pub fn new<S: Into<String>>(
        schema: &Schema,
        columns: impl IntoIterator<Item = (S, &'static str)>,
    ) -> StorageResult<Restructuring> {
        let mut source = Vec::new();
        let mut names = Vec::new();
        for (out_name, in_field) in columns {
            source.push(schema.require(in_field)?);
            names.push(out_name.into());
        }
        if source.is_empty() {
            return Err(StorageError::SchemaMismatch {
                reason: "restructuring must keep at least one column".into(),
            });
        }
        Ok(Restructuring { source, names })
    }

    /// The output schema.
    pub fn output_schema(&self) -> Schema {
        Schema::new(self.names.clone())
    }

    /// The σ-domain spec realizing this restructuring on positional
    /// identities: `{(src+1)^(out+1), ...}` (re-scope by scope,
    /// Definition 7.3 inside Definition 7.4).
    pub fn sigma(&self) -> ExtendedSet {
        ExtendedSet::from_pairs(
            self.source
                .iter()
                .enumerate()
                .map(|(out, &src)| (Value::Int(src as i64 + 1), Value::Int(out as i64 + 1))),
        )
    }
}

/// Record-processing restructure: rewrite every record into a new table.
pub fn restructure_records(
    table: &Table,
    pool: &BufferPool,
    storage: &Storage,
    spec: &Restructuring,
) -> StorageResult<Table> {
    let mut out = Table::create(storage, spec.output_schema());
    let mut batch: Vec<Record> = Vec::new();
    table.file.scan(pool, |_, r| {
        let values: Vec<Value> = spec
            .source
            .iter()
            .map(|&p| {
                r.get(p)
                    .cloned()
                    .ok_or_else(|| StorageError::SchemaMismatch {
                        reason: format!("record lacks position {p}"),
                    })
            })
            .collect::<StorageResult<_>>()?;
        batch.push(Record::new(values));
        Ok(())
    })?;
    out.load(&batch)?;
    Ok(out)
}

/// Set-processing restructure: one σ-domain over the canonical identity.
pub fn restructure_set(identity: &ExtendedSet, spec: &Restructuring) -> ExtendedSet {
    sigma_domain(identity, &spec.sigma())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SetEngine;

    fn setup() -> (Storage, BufferPool, Table) {
        let storage = Storage::new();
        let mut t = Table::create(&storage, Schema::new(["id", "name", "qty"]));
        t.load(&[
            Record::new([Value::Int(1), Value::str("bolt"), Value::Int(100)]),
            Record::new([Value::Int(2), Value::str("nut"), Value::Int(50)]),
        ])
        .unwrap();
        let pool = BufferPool::new(storage.clone(), 8);
        (storage, pool, t)
    }

    #[test]
    fn both_disciplines_agree() {
        let (storage, pool, t) = setup();
        let spec = Restructuring::new(&t.schema, [("qty", "qty"), ("id", "id")]).unwrap();
        // Record way.
        let new_table = restructure_records(&t, &pool, &storage, &spec).unwrap();
        let rec_result = new_table.file.read_all(&pool).unwrap();
        // Set way.
        let engine = SetEngine::load(&t, &pool).unwrap();
        let set_result = SetEngine::to_records(&restructure_set(engine.identity(), &spec)).unwrap();
        let mut rec_sorted = rec_result;
        rec_sorted.sort();
        assert_eq!(rec_sorted, set_result);
        // Sorted order: ⟨50,2⟩ precedes ⟨100,1⟩.
        assert_eq!(set_result[0].values(), &[Value::Int(50), Value::Int(2)]);
        assert_eq!(set_result[1].values(), &[Value::Int(100), Value::Int(1)]);
    }

    #[test]
    fn projection_drops_columns() {
        let (_, pool, t) = setup();
        let spec = Restructuring::new(&t.schema, [("name", "name")]).unwrap();
        let engine = SetEngine::load(&t, &pool).unwrap();
        let result = restructure_set(engine.identity(), &spec);
        assert_eq!(result.card(), 2);
        for (e, _) in result.iter() {
            assert_eq!(e.as_set().unwrap().tuple_len(), Some(1));
        }
    }

    #[test]
    fn record_restructure_writes_new_pages() {
        let (storage, pool, t) = setup();
        let spec = Restructuring::new(&t.schema, [("id", "id")]).unwrap();
        storage.reset_stats();
        let _ = restructure_records(&t, &pool, &storage, &spec).unwrap();
        assert!(storage.stats().disk_writes > 0, "record way pays writes");
    }

    #[test]
    fn set_restructure_is_pure() {
        let (storage, pool, t) = setup();
        let engine = SetEngine::load(&t, &pool).unwrap();
        let spec = Restructuring::new(&t.schema, [("id", "id")]).unwrap();
        storage.reset_stats();
        let _ = restructure_set(engine.identity(), &spec);
        assert_eq!(storage.stats().disk_writes, 0, "set way is storage-free");
        assert_eq!(storage.stats().disk_reads, 0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let (_, _, t) = setup();
        assert!(Restructuring::new(&t.schema, [("x", "bogus")]).is_err());
        let empty: Vec<(&str, &'static str)> = vec![];
        assert!(Restructuring::new(&t.schema, empty).is_err());
    }

    #[test]
    fn duplicate_source_column_is_allowed() {
        // Re-scope fan-out: one input column feeding two outputs.
        let (_, pool, t) = setup();
        let spec = Restructuring::new(&t.schema, [("a", "id"), ("b", "id")]).unwrap();
        let engine = SetEngine::load(&t, &pool).unwrap();
        let result = restructure_set(engine.identity(), &spec);
        let recs = SetEngine::to_records(&result).unwrap();
        assert_eq!(recs[0].values(), &[Value::Int(1), Value::Int(1)]);
    }
}
