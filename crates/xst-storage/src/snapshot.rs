//! Whole-disk snapshots: serialize the simulated disk to a checksummed
//! byte image and restore it — the "backend information system" backup
//! path, and the persistence story for experiments that need to replay a
//! workload on identical storage.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "XSTSNAP1" | file_count:u32 | { page_count:u32, pages… } per file
//! | crc:u32 over everything before it
//! ```

use crate::bufpool::Storage;
use crate::error::{StorageError, StorageResult};
use crate::page::PAGE_SIZE;
use bytes::{Buf, BufMut, BytesMut};

const MAGIC: &[u8; 8] = b"XSTSNAP1";

/// CRC-32 (IEEE), bitwise implementation — small, dependency-free, fast
/// enough for snapshot-sized inputs.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize the whole disk.
pub fn snapshot(storage: &Storage) -> Vec<u8> {
    let files = storage.export_all();
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u32_le(files.len() as u32);
    for file in &files {
        out.put_u32_le(file.len() as u32);
        for page in file {
            out.put_slice(&page[..]);
        }
    }
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out.to_vec()
}

/// Restore a disk from a snapshot image, verifying magic and checksum.
pub fn restore(image: &[u8]) -> StorageResult<Storage> {
    if image.len() < MAGIC.len() + 8 {
        return Err(corrupt("image too short"));
    }
    let (body, crc_bytes) = image.split_at(image.len() - 4);
    let crc_arr: [u8; 4] = match crc_bytes.try_into() {
        Ok(arr) => arr,
        Err(_) => return Err(corrupt("truncated checksum")),
    };
    let stored_crc = u32::from_le_bytes(crc_arr);
    if crc32(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let file_count = buf.get_u32_le() as usize;
    let mut files = Vec::with_capacity(file_count);
    for _ in 0..file_count {
        if buf.len() < 4 {
            return Err(corrupt("truncated file header"));
        }
        let page_count = buf.get_u32_le() as usize;
        if buf.len() < page_count * PAGE_SIZE {
            return Err(corrupt("truncated page data"));
        }
        let mut pages = Vec::with_capacity(page_count);
        for _ in 0..page_count {
            let mut frame = Box::new([0u8; PAGE_SIZE]);
            frame.copy_from_slice(&buf[..PAGE_SIZE]);
            buf.advance(PAGE_SIZE);
            pages.push(frame);
        }
        files.push(pages);
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after files"));
    }
    Ok(Storage::import_all(files))
}

fn corrupt(reason: &str) -> StorageError {
    StorageError::Corrupt {
        reason: format!("snapshot: {reason}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::{BufferPool, PageId};
    use crate::engine::Table;
    use crate::record::{Record, Schema};
    use xst_core::Value;

    fn populated() -> (Storage, usize) {
        let storage = Storage::new();
        let mut t = Table::create(&storage, Schema::new(["id", "name"]));
        let rows: Vec<Record> = (0..500)
            .map(|i| Record::new([Value::Int(i), Value::str(format!("row-{i}"))]))
            .collect();
        t.load(&rows).unwrap();
        let pages = storage.page_count(t.file.file_id()).unwrap();
        (storage, pages)
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (storage, pages) = populated();
        let image = snapshot(&storage);
        let restored = restore(&image).unwrap();
        assert_eq!(restored.file_count(), storage.file_count());
        // Every page byte-identical.
        for page in 0..pages {
            let id = PageId {
                file: crate::bufpool::FileId(0),
                page,
            };
            assert_eq!(
                storage.read_page(id).unwrap().as_bytes(),
                restored.read_page(id).unwrap().as_bytes()
            );
        }
        // Restored stats start clean.
        assert_eq!(restored.stats().disk_writes, 0);
    }

    #[test]
    fn restored_disk_serves_queries() {
        let (storage, _) = populated();
        let image = snapshot(&storage);
        let restored = restore(&image).unwrap();
        let pool = BufferPool::new(restored, 8);
        // Re-open the heap file shape: file 0, scan pages manually.
        let mut seen = 0;
        let pages = pool
            .storage()
            .page_count(crate::bufpool::FileId(0))
            .unwrap();
        for page in 0..pages {
            let p = pool
                .get(PageId {
                    file: crate::bufpool::FileId(0),
                    page,
                })
                .unwrap();
            seen += p.slot_count();
        }
        assert_eq!(seen, 500);
    }

    #[test]
    fn empty_disk_snapshots() {
        let storage = Storage::new();
        let restored = restore(&snapshot(&storage)).unwrap();
        assert_eq!(restored.file_count(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let (storage, _) = populated();
        let image = snapshot(&storage);
        // Flip a data byte.
        let mut bad = image.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(matches!(restore(&bad), Err(StorageError::Corrupt { .. })));
        // Truncate.
        assert!(restore(&image[..image.len() - 10]).is_err());
        // Wrong magic with fixed-up checksum.
        let mut wrong = image.clone();
        wrong[0] = b'Y';
        let body_len = wrong.len() - 4;
        let crc = crc32(&wrong[..body_len]).to_le_bytes();
        wrong[body_len..].copy_from_slice(&crc);
        assert!(restore(&wrong).is_err());
        // Tiny input.
        assert!(restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
