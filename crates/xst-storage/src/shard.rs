//! In-process sharding: hash-partitioned engines under one atomic
//! commit protocol.
//!
//! The 1977 program's "very large data base" premise is that no single
//! device — or in our reproduction, no single engine — holds the whole
//! extension of a set. A [`ShardedEngine`] partitions every table's
//! members by a deterministic hash of the member's whole identity across
//! N independent [`TxnManager`]s, each with its own storage, WAL, and
//! group-commit op log. Reads scatter to all shards and gather by
//! ordered union (set union IS the merge — fragments are disjoint by
//! construction, so `⋃ᵢ fragᵢ` is exact, not approximate); writes route
//! to the owning shard.
//!
//! **Atomicity across shards is two-phase commit** built from the group
//! commit primitive the single engine already has:
//!
//! 1. **Prepare.** Each written shard validates first-committer-wins and
//!    flushes its write set — gtxn-tagged and sealed with a PREPARE
//!    control record — as ONE marker-sealed batch
//!    ([`TxnManager::prepare`]). Nothing is published.
//! 2. **Decide.** The coordinator appends the global transaction id to
//!    its own decision log ([`LoggedTable::append_batch`]). *This flush
//!    is the acknowledgement*: before it, no decision exists and every
//!    prepare defaults to abort; after it, the transaction is committed
//!    on every shard no matter what else fails.
//! 3. **Commit.** Each shard writes a best-effort local COMMIT marker
//!    and publishes its versions ([`TxnManager::commit_prepared`]). A
//!    crash anywhere here leaves the shard *in doubt*, and
//!    [`ShardedEngine::recover`] resolves it from the decision log.
//!
//! Transactions touching a **single** shard skip the protocol entirely
//! and use the ordinary one-flush commit — a sharded deployment with one
//! shard pays one extra in-memory hash per write, not an extra fsync
//! (experiment E18 holds this to ≤1.05× the unsharded engine).

use crate::bufpool::{BufferPool, Storage};
use crate::engine::SetEngine;
use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultKind, FaultPlan, FaultSchedule};
use crate::record::{Record, Schema};
use crate::retry::RetryPolicy;
use crate::txn::{self, CommitTs, Txn, TxnId, TxnManager};
use crate::wal::{LoggedTable, Wal};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use xst_core::ops::union_all;
use xst_core::{ExtendedSet, Value};
use xst_obs::{registry, Counter, Gauge};

fn shard_count_gauge() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        registry().gauge(
            xst_obs::names::SHARD_COUNT,
            "Shards in the serving engine's hash partition.",
        )
    })
}

fn shard_txn_begins_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_TXN_BEGINS_TOTAL,
            "Distributed transactions begun on the sharded engine.",
        )
    })
}

fn shard_single_commits_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_SINGLE_COMMITS_TOTAL,
            "Distributed commits that touched one shard and took the one-flush fast path.",
        )
    })
}

fn shard_2pc_commits_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_2PC_COMMITS_TOTAL,
            "Multi-shard commits acknowledged by a durable coordinator decision.",
        )
    })
}

fn shard_2pc_aborts_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_2PC_ABORTS_TOTAL,
            "Multi-shard commits aborted before a decision was recorded.",
        )
    })
}

fn shard_2pc_prepares_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_2PC_PREPARES_TOTAL,
            "Per-shard prepare flushes performed by the 2PC coordinator.",
        )
    })
}

fn shard_2pc_in_doubt_resolved_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_2PC_IN_DOUBT_RESOLVED_TOTAL,
            "In-doubt prepares resolved from the coordinator decision log at recovery.",
        )
    })
}

fn shard_gather_merges_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::SHARD_GATHER_MERGES_TOTAL,
            "Gather steps that merged per-shard fragments by ordered union.",
        )
    })
}

/// The schema of the coordinator's decision log: one committed global
/// transaction id per record. Presence == COMMIT; absence == ABORT
/// (presumed abort needs no abort records). Shared with the wire
/// coordinator in `xst-client`, whose decision log is the same table
/// shape on its own device.
pub fn decision_schema() -> Schema {
    Schema::new(["gtxn"])
}

/// Route a record to its owning shard: FNV-1a over the record's
/// bit-exact codec bytes, reduced mod the shard count. The hash covers
/// the member's **whole identity** (every field), so routing is a pure
/// function of set membership — the same member lands on the same shard
/// in any engine with the same shard count, and rebalancing is re-scoping
/// (re-hash and re-insert), never interpretation.
pub fn shard_of(record: &Record, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let bytes = crate::codec::encode_to_vec(&Value::Set(record.to_tuple()));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// One shard: an independent storage device, WAL, and transaction
/// manager. Shards share nothing but the coordinator.
struct Shard {
    storage: Storage,
    wal: Wal,
    mgr: TxnManager,
}

struct EngineInner {
    shards: Vec<Shard>,
    /// The coordinator's own durable device and decision log, separate
    /// from every shard (a real deployment's coordinator node).
    coord_storage: Storage,
    coord_wal: Wal,
    decisions: Mutex<LoggedTable>,
    /// Serializes every commit round (prepare → decide → commit) and
    /// every begin, so a begin can never observe a distributed commit
    /// published on some shards but not others.
    commit_lock: Mutex<()>,
    next_gtxn: AtomicU64,
    /// Registered tables (the in-memory catalog, mirrored on every
    /// shard), kept so recovery can rebuild each shard's manager.
    catalog: Mutex<BTreeMap<String, Schema>>,
    faults: Mutex<Option<FaultPlan>>,
}

/// A hash-partitioned database over N independent engines with
/// all-or-nothing cross-shard commits. Cloning shares the same database.
#[derive(Clone)]
pub struct ShardedEngine {
    inner: Arc<EngineInner>,
}

impl ShardedEngine {
    /// A fresh sharded database over `shards` independent engines
    /// (clamped to at least 1).
    pub fn with_shards(shards: usize) -> ShardedEngine {
        let shards = shards.max(1);
        let built: Vec<Shard> = (0..shards)
            .map(|_| {
                let storage = Storage::new();
                let wal = Wal::new();
                let mgr = TxnManager::new(&storage, wal.clone());
                Shard { storage, wal, mgr }
            })
            .collect();
        let coord_storage = Storage::new();
        let coord_wal = Wal::new();
        let decisions = LoggedTable::create(&coord_storage, decision_schema(), coord_wal.clone());
        if xst_obs::enabled() {
            shard_count_gauge().set(shards as f64);
        }
        ShardedEngine {
            inner: Arc::new(EngineInner {
                shards: built,
                coord_storage,
                coord_wal,
                decisions: Mutex::new(decisions),
                commit_lock: Mutex::new(()),
                next_gtxn: AtomicU64::new(1),
                catalog: Mutex::new(BTreeMap::new()),
                faults: Mutex::new(None),
            }),
        }
    }

    /// Replace the retry policy governing commit-path flushes on every
    /// shard's manager and on the coordinator's decision log. Crash
    /// harnesses pass [`RetryPolicy::none`] so an injected fault
    /// surfaces instead of being absorbed by a retried flush.
    pub fn with_retry_policy(self, retry: RetryPolicy) -> ShardedEngine {
        for shard in &self.inner.shards {
            let _ = shard.mgr.clone().with_retry_policy(retry);
        }
        {
            let mut decisions = self.inner.decisions.lock();
            let taken = std::mem::replace(
                &mut *decisions,
                LoggedTable::create(&Storage::new(), decision_schema(), Wal::new()),
            );
            *decisions = taken.with_retry_policy(retry);
        }
        self
    }

    /// Number of shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The transaction manager of shard `i` (shard 0 is the compat
    /// surface for single-engine callers). Panics are forbidden in this
    /// crate, so out-of-range returns shard 0's manager.
    pub fn shard_mgr(&self, i: usize) -> &TxnManager {
        let i = i.min(self.inner.shards.len() - 1);
        &self.inner.shards[i].mgr
    }

    /// The storage device of shard `i` (clamped like [`Self::shard_mgr`]).
    pub fn shard_storage(&self, i: usize) -> &Storage {
        let i = i.min(self.inner.shards.len() - 1);
        &self.inner.shards[i].storage
    }

    /// The WAL of shard `i` (clamped like [`Self::shard_mgr`]).
    pub fn shard_wal(&self, i: usize) -> &Wal {
        let i = i.min(self.inner.shards.len() - 1);
        &self.inner.shards[i].wal
    }

    /// The coordinator's decision-log WAL.
    pub fn coordinator_wal(&self) -> &Wal {
        &self.inner.coord_wal
    }

    /// Register a table on every shard and in the catalog.
    pub fn create_table(&self, name: &str, schema: Schema) -> StorageResult<()> {
        let mut catalog = self.inner.catalog.lock();
        if catalog.contains_key(name) {
            return Err(StorageError::SchemaMismatch {
                reason: format!("table '{name}' already exists"),
            });
        }
        for shard in &self.inner.shards {
            shard.mgr.create_table(name, schema.clone())?;
        }
        catalog.insert(name.to_string(), schema);
        Ok(())
    }

    /// The registered tables, in name order.
    pub fn tables(&self) -> Vec<(String, Schema)> {
        self.inner
            .catalog
            .lock()
            .iter()
            .map(|(n, s)| (n.clone(), s.clone()))
            .collect()
    }

    /// Begin a distributed transaction: one internal sub-transaction per
    /// shard, all opened under the commit lock so the cross-shard
    /// snapshot is consistent (no shard's view includes a distributed
    /// commit another shard's view lacks).
    pub fn begin(&self) -> ShardedTxn {
        let _commit = self.inner.commit_lock.lock();
        let subs: Vec<Txn> = self
            .inner
            .shards
            .iter()
            .map(|s| s.mgr.begin_internal())
            .collect();
        let gauge_counted = xst_obs::enabled();
        if gauge_counted {
            txn::txn_begins_total().inc();
            txn::txn_active_gauge().add(1.0);
            shard_txn_begins_total().inc();
        }
        ShardedTxn {
            engine: self.clone(),
            subs: subs.into_iter().map(Some).collect(),
            finished: false,
            gauge_counted,
        }
    }

    /// The latest commit timestamp across shards (per-shard clocks are
    /// independent; the max is a readable "how far along" figure).
    pub fn last_commit_ts(&self) -> CommitTs {
        self.inner
            .shards
            .iter()
            .map(|s| s.mgr.last_commit_ts())
            .max()
            .unwrap_or(0)
    }

    /// Distributed transactions currently open. Every open transaction
    /// holds one sub-transaction on every shard, so any shard's active
    /// count IS the distributed count.
    pub fn active_txns(&self) -> u64 {
        self.inner.shards[0].mgr.active_txns()
    }

    /// The latest committed identity of `table`: per-shard latest
    /// identities gathered by ordered union (no transaction needed).
    pub fn latest_identity(&self, name: &str) -> StorageResult<ExtendedSet> {
        let frags = self.latest_fragments(name)?;
        if xst_obs::enabled() {
            shard_gather_merges_total().inc();
        }
        Ok(union_all(frags.iter()))
    }

    /// The latest committed per-shard fragments of `table`. Fragment `i`
    /// holds exactly the members owned by shard `i` — disjoint, and
    /// their union is the table's identity.
    pub fn latest_fragments(&self, name: &str) -> StorageResult<Vec<ExtendedSet>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.mgr.latest_identity(name).map(|arc| (*arc).clone()))
            .collect()
    }

    /// Autocommit convenience mirroring [`TxnManager::autocommit_insert`].
    pub fn autocommit_insert(&self, table: &str, records: &[Record]) -> StorageResult<CommitTs> {
        let mut txn = self.begin();
        for r in records {
            txn.insert(table, r.clone())?;
        }
        txn.commit()
    }

    /// Arm one deterministic fault plan across the WHOLE deployment:
    /// every shard's storage and WAL plus the coordinator's, all sharing
    /// one site counter. Site k can therefore land inside any phase of
    /// 2PC — a shard's prepare flush, the coordinator's decision flush,
    /// any shard's local commit marker, or a post-commit heap apply —
    /// which is exactly the enumeration the crash sweep walks.
    pub fn arm_faults(&self, schedule: FaultSchedule, kind: FaultKind) {
        let plan = FaultPlan::new(schedule, kind);
        self.install_faults(&plan);
        *self.inner.faults.lock() = Some(plan);
    }

    /// Install an existing plan (shared site counter) everywhere.
    pub fn install_faults(&self, plan: &FaultPlan) {
        for shard in &self.inner.shards {
            shard.storage.install_faults(plan);
            shard.wal.install_faults(plan);
        }
        self.inner.coord_storage.install_faults(plan);
        self.inner.coord_wal.install_faults(plan);
    }

    /// Disarm and drop any armed plan, everywhere.
    pub fn clear_faults(&self) {
        for shard in &self.inner.shards {
            shard.storage.clear_faults();
            shard.wal.clear_faults();
        }
        self.inner.coord_storage.clear_faults();
        self.inner.coord_wal.clear_faults();
        *self.inner.faults.lock() = None;
    }

    /// Is a fault plan currently armed?
    pub fn faults_armed(&self) -> bool {
        self.inner.faults.lock().is_some()
    }

    /// Faults injected by the armed plan so far, if any.
    pub fn faults_injected(&self) -> u64 {
        self.inner
            .faults
            .lock()
            .as_ref()
            .map(|p| p.injected_count())
            .unwrap_or(0)
    }

    /// **Participant side of an external (wire) coordinator's 2PC.**
    /// Consume `txn` and stage its buffered writes as a durable
    /// `gtxn`-tagged prepare on every shard it wrote
    /// ([`TxnManager::prepare`] per written shard). Nothing is
    /// published; the writes wait for [`ShardedEngine::commit_external`]
    /// or [`ShardedEngine::abort_external`]. Returns how many local
    /// shards prepared (0 for a read-only transaction — nothing to
    /// decide). On `Err` every shard is clean: already-prepared shards
    /// are rolled back and unvalidated writes discarded.
    pub fn prepare_external(&self, txn: ShardedTxn, gtxn: u64) -> StorageResult<usize> {
        // lint: lock-across-io: the commit lock serializes whole 2PC rounds — overlapping prepares on one participant would both pass validation (see TxnManager::prepare)
        let _commit = self.inner.commit_lock.lock();
        let mut txn = txn;
        txn.finished = true;
        let subs: Vec<Txn> = txn.subs.iter_mut().filter_map(Option::take).collect();
        txn.release_metrics();
        let mut prepared: Vec<usize> = Vec::new();
        let mut prepare_err: Option<StorageError> = None;
        for (i, sub) in subs.into_iter().enumerate() {
            if prepare_err.is_some() || sub.is_read_only() {
                sub.abort();
                continue;
            }
            let (begin_ts, writes) = sub.into_writes();
            match self.inner.shards[i].mgr.prepare(gtxn, begin_ts, writes) {
                Ok(()) => {
                    if xst_obs::enabled() {
                        shard_2pc_prepares_total().inc();
                    }
                    prepared.push(i);
                }
                Err(e) => prepare_err = Some(e),
            }
        }
        if let Some(e) = prepare_err {
            for i in prepared {
                self.inner.shards[i].mgr.abort_prepared(gtxn);
            }
            return Err(e);
        }
        Ok(prepared.len())
    }

    /// **Decision delivery, commit.** Publish `gtxn`'s prepared writes on
    /// every shard holding them. The external coordinator's decision is
    /// already durable, so this cannot veto; it errors only if `gtxn` is
    /// prepared nowhere (a protocol violation worth surfacing).
    pub fn commit_external(&self, gtxn: u64) -> StorageResult<CommitTs> {
        // lint: lock-across-io: decision delivery runs under the round lock so publishes on every shard land before the next round's prepares validate
        let _commit = self.inner.commit_lock.lock();
        let mut ts = None;
        for shard in &self.inner.shards {
            if shard.mgr.has_prepared(gtxn) {
                ts = Some(ts.unwrap_or(0).max(shard.mgr.commit_prepared(gtxn)?));
            }
        }
        match ts {
            Some(ts) => {
                if xst_obs::enabled() {
                    shard_2pc_commits_total().inc();
                    txn::txn_commits_total().inc();
                }
                Ok(ts)
            }
            None => Err(StorageError::Corrupt {
                reason: format!("commit_external({gtxn}): no such prepared transaction"),
            }),
        }
    }

    /// **Decision delivery, abort.** Drop `gtxn`'s prepared writes
    /// everywhere. Infallible and idempotent, like
    /// [`TxnManager::abort_prepared`].
    pub fn abort_external(&self, gtxn: u64) {
        let _commit = self.inner.commit_lock.lock();
        let mut dropped = false;
        for shard in &self.inner.shards {
            dropped |= shard.mgr.has_prepared(gtxn);
            shard.mgr.abort_prepared(gtxn);
        }
        if dropped && xst_obs::enabled() {
            shard_2pc_aborts_total().inc();
            txn::txn_aborts_total().inc();
        }
    }

    /// Resolve every transaction still prepared on this participant
    /// against an external coordinator's committed set: named gtxns
    /// publish, everything else aborts (presumed abort). Returns
    /// `(committed, aborted)` counts. This is how a reconnecting wire
    /// coordinator clears in-doubt state left by lost decision messages.
    pub fn resolve_external(&self, committed: &BTreeSet<u64>) -> StorageResult<(u64, u64)> {
        let pending = self.prepared_external();
        let mut done = (0u64, 0u64);
        for gtxn in pending {
            if committed.contains(&gtxn) {
                self.commit_external(gtxn)?;
                done.0 += 1;
            } else {
                self.abort_external(gtxn);
                done.1 += 1;
            }
        }
        if xst_obs::enabled() {
            shard_2pc_in_doubt_resolved_total().add(done.0 + done.1);
        }
        Ok(done)
    }

    /// Global transaction ids prepared on any shard and awaiting an
    /// external decision, in id order without duplicates.
    pub fn prepared_external(&self) -> Vec<u64> {
        let mut ids = BTreeSet::new();
        for shard in &self.inner.shards {
            ids.extend(shard.mgr.prepared_gtxns());
        }
        ids.into_iter().collect()
    }

    /// Crash-recover the whole deployment from durable state alone:
    /// clear faults, drop every unacknowledged staged batch (the crash),
    /// replay the coordinator's decision log, then recover each shard
    /// with those decisions resolving its in-doubt prepares. Returns a
    /// fresh engine over the same devices; the gtxn counter restarts
    /// above everything any shard ever logged.
    pub fn recover(&self) -> StorageResult<ShardedEngine> {
        self.recover_with_decisions(&BTreeSet::new())
    }

    /// Like [`ShardedEngine::recover`], but resolving in-doubt prepares
    /// against the union of the local decision log and `extra` — the
    /// committed set an **external** wire coordinator replayed from its
    /// own decision log. A shard process restarting under a remote
    /// coordinator must not presume-abort prepares the coordinator
    /// durably decided; the coordinator ships its decisions and recovery
    /// honors them exactly as it honors local ones.
    pub fn recover_with_decisions(&self, extra: &BTreeSet<u64>) -> StorageResult<ShardedEngine> {
        for shard in &self.inner.shards {
            shard.storage.clear_faults();
            shard.wal.clear_faults();
            shard.wal.drop_staged();
        }
        self.inner.coord_storage.clear_faults();
        self.inner.coord_wal.clear_faults();
        self.inner.coord_wal.drop_staged();
        // The coordinator first: its surviving records ARE the set of
        // committed global transactions.
        let coord_fresh = Wal::new();
        let decisions_log = LoggedTable::recover_onto(
            &self.inner.coord_storage,
            decision_schema(),
            self.inner.coord_wal.clone(),
            coord_fresh.clone(),
        )?;
        let pool = BufferPool::new(self.inner.coord_storage.clone(), 8);
        let mut committed: BTreeSet<u64> = BTreeSet::new();
        let mut max_gtxn = 0u64;
        for rec in decisions_log.table.file.read_all(&pool)? {
            let [Value::Int(g)] = rec.values() else {
                return Err(StorageError::Corrupt {
                    reason: "decision log record is not a single gtxn".to_string(),
                });
            };
            let g = u64::try_from(*g).map_err(|_| StorageError::Corrupt {
                reason: "negative gtxn in decision log".to_string(),
            })?;
            committed.insert(g);
            max_gtxn = max_gtxn.max(g);
        }
        for &g in extra {
            committed.insert(g);
            max_gtxn = max_gtxn.max(g);
        }
        let catalog = self.inner.catalog.lock().clone();
        let catalog_refs: Vec<(&str, Schema)> = catalog
            .iter()
            .map(|(n, s)| (n.as_str(), s.clone()))
            .collect();
        let mut shards = Vec::with_capacity(self.inner.shards.len());
        let mut resolved = 0u64;
        for shard in &self.inner.shards {
            let recovered = TxnManager::recover_with_decisions(
                &shard.storage,
                shard.wal.clone(),
                Wal::new(),
                &catalog_refs,
                &committed,
            )?;
            resolved += recovered.in_doubt_committed + recovered.in_doubt_aborted;
            max_gtxn = max_gtxn.max(recovered.max_gtxn);
            shards.push(Shard {
                storage: shard.storage.clone(),
                wal: shard.wal.clone(),
                mgr: recovered.mgr,
            });
        }
        if xst_obs::enabled() {
            shard_2pc_in_doubt_resolved_total().add(resolved);
            shard_count_gauge().set(shards.len() as f64);
        }
        Ok(ShardedEngine {
            inner: Arc::new(EngineInner {
                shards,
                coord_storage: self.inner.coord_storage.clone(),
                coord_wal: coord_fresh,
                decisions: Mutex::new(decisions_log),
                commit_lock: Mutex::new(()),
                next_gtxn: AtomicU64::new(max_gtxn + 1),
                catalog: Mutex::new(catalog),
                faults: Mutex::new(None),
            }),
        })
    }
}

/// A distributed transaction: one snapshot-isolated sub-transaction per
/// shard, routed writes, and an atomic cross-shard commit. Dropping it
/// uncommitted aborts every sub-transaction.
pub struct ShardedTxn {
    engine: ShardedEngine,
    /// One slot per shard; `None` after the slot is consumed at commit.
    subs: Vec<Option<Txn>>,
    finished: bool,
    gauge_counted: bool,
}

impl ShardedTxn {
    fn shards(&self) -> usize {
        self.subs.len()
    }

    /// A diagnostic id for this distributed transaction: the shard-0
    /// sub-transaction's id (every open distributed txn holds one sub on
    /// every shard, so shard-0 ids are unique among open txns).
    pub fn id(&self) -> TxnId {
        self.subs
            .first()
            .and_then(Option::as_ref)
            .map(Txn::id)
            .unwrap_or(0)
    }

    /// The snapshot timestamp this transaction reads at, as seen by
    /// shard 0 (all shards snapshot under one commit-lock hold, so any
    /// shard's begin timestamp names the same consistent cut).
    pub fn begin_ts(&self) -> CommitTs {
        self.subs
            .first()
            .and_then(Option::as_ref)
            .map(Txn::begin_ts)
            .unwrap_or(0)
    }

    fn sub(&mut self, i: usize) -> StorageResult<&mut Txn> {
        self.subs
            .get_mut(i)
            .and_then(Option::as_mut)
            .ok_or_else(|| StorageError::Corrupt {
                reason: format!("sharded txn lost its shard-{i} sub-transaction"),
            })
    }

    /// Buffer an insert on the owning shard.
    pub fn insert(&mut self, table: &str, record: Record) -> StorageResult<()> {
        let i = shard_of(&record, self.shards());
        self.sub(i)?.insert(table, record)
    }

    /// Buffer a delete on the owning shard.
    pub fn delete(&mut self, table: &str, record: Record) -> StorageResult<()> {
        let i = shard_of(&record, self.shards());
        self.sub(i)?.delete(table, record)
    }

    /// This transaction's per-shard fragments of `table` — the scatter
    /// half of scatter-gather. Fragment `i` is exactly the members owned
    /// by shard `i` (snapshot plus this transaction's own writes), so
    /// the fragments are pairwise disjoint and their union is the table.
    pub fn read_fragments(&mut self, table: &str) -> StorageResult<Vec<ExtendedSet>> {
        (0..self.shards())
            .map(|i| self.sub(i)?.read_identity(table))
            .collect()
    }

    /// This transaction's view of `table`: gather the fragments by
    /// ordered union.
    pub fn read_identity(&mut self, table: &str) -> StorageResult<ExtendedSet> {
        let frags = self.read_fragments(table)?;
        if xst_obs::enabled() {
            shard_gather_merges_total().inc();
        }
        Ok(union_all(frags.iter()))
    }

    /// A [`SetEngine`] over the gathered view of `table`.
    pub fn engine(&mut self, table: &str) -> StorageResult<SetEngine> {
        let schema = {
            let catalog = self.engine.inner.catalog.lock();
            catalog
                .get(table)
                .cloned()
                .ok_or_else(|| StorageError::SchemaMismatch {
                    reason: format!("no table named '{table}'"),
                })?
        };
        Ok(SetEngine::from_identity(self.read_identity(table)?, schema))
    }

    /// The gathered view of `table` as sorted records.
    pub fn scan(&mut self, table: &str) -> StorageResult<Vec<Record>> {
        SetEngine::to_records(&self.read_identity(table)?)
    }

    /// True iff no shard has buffered writes.
    pub fn is_read_only(&self) -> bool {
        self.subs
            .iter()
            .all(|s| s.as_ref().is_none_or(Txn::is_read_only))
    }

    /// Commit atomically across shards. One written shard takes the
    /// ordinary one-flush fast path; two or more run full 2PC. On `Ok`
    /// the transaction is durable on every shard it touched
    /// (acknowledged ⇒ recoverable); on `Err` it is atomically absent
    /// everywhere (a prepare that survived on some shard defaults to
    /// abort at recovery because no decision was recorded).
    pub fn commit(mut self) -> StorageResult<CommitTs> {
        let timer = xst_obs::enabled().then(std::time::Instant::now);
        self.finished = true;
        let engine = self.engine.clone();
        // lint: lock-across-io: the commit lock spans prepare, decision flush, and publish — the whole 2PC round must be one critical section for first-committer-wins
        let _commit = engine.inner.commit_lock.lock();
        let subs: Vec<Txn> = self.subs.iter_mut().filter_map(Option::take).collect();
        self.release_metrics();
        let result = commit_subs(&engine, subs);
        if xst_obs::enabled() {
            match &result {
                Ok(_) => {
                    txn::txn_commits_total().inc();
                    if let Some(t) = timer {
                        txn::txn_commit_hist().observe_since(t);
                    }
                }
                Err(_) => txn::txn_aborts_total().inc(),
            }
        }
        result
    }

    /// Abort: discard every shard's buffered writes.
    pub fn abort(mut self) {
        self.finished = true;
        for sub in self.subs.iter_mut().filter_map(Option::take) {
            sub.abort();
        }
        self.release_metrics();
        if xst_obs::enabled() {
            txn::txn_aborts_total().inc();
        }
    }

    fn release_metrics(&mut self) {
        if self.gauge_counted {
            self.gauge_counted = false;
            txn::txn_active_gauge().force_add(-1.0);
        }
    }
}

impl Drop for ShardedTxn {
    fn drop(&mut self) {
        if !self.finished {
            // Sub-transactions abort via their own Drop (metric-silent).
            self.subs.clear();
            self.release_metrics();
            if xst_obs::enabled() {
                txn::txn_aborts_total().inc();
            }
        } else {
            self.release_metrics();
        }
    }
}

/// The commit protocol proper, under the engine's commit lock.
fn commit_subs(engine: &ShardedEngine, subs: Vec<Txn>) -> StorageResult<CommitTs> {
    let inner = &engine.inner;
    let mut writers: Vec<(usize, Txn)> = Vec::new();
    for (i, sub) in subs.into_iter().enumerate() {
        if sub.is_read_only() {
            sub.abort(); // nothing buffered: just release the slot
        } else {
            writers.push((i, sub));
        }
    }
    match writers.len() {
        // Read-only everywhere: nothing to decide, nothing to flush.
        0 => Ok(engine.last_commit_ts()),
        // One shard wrote: the ordinary single-flush commit IS atomic,
        // no coordinator round needed. This is why a 1-shard deployment
        // keeps single-engine commit costs.
        1 => {
            let (_, sub) = writers.swap_remove(0);
            let ts = sub.commit()?;
            if xst_obs::enabled() {
                shard_single_commits_total().inc();
            }
            Ok(ts)
        }
        // Two or more shards wrote: two-phase commit.
        _ => {
            let gtxn = inner.next_gtxn.fetch_add(1, Ordering::Relaxed);
            let mut prepared: Vec<usize> = Vec::with_capacity(writers.len());
            let mut participants: Vec<usize> = Vec::with_capacity(writers.len());
            let mut prepare_err: Option<StorageError> = None;
            for (i, sub) in writers {
                if prepare_err.is_some() {
                    sub.abort();
                    continue;
                }
                let (begin_ts, writes) = sub.into_writes();
                match inner.shards[i].mgr.prepare(gtxn, begin_ts, writes) {
                    Ok(()) => {
                        if xst_obs::enabled() {
                            shard_2pc_prepares_total().inc();
                        }
                        prepared.push(i);
                    }
                    Err(e) => prepare_err = Some(e),
                }
                participants.push(i);
            }
            if prepare_err.is_none() {
                // The decision flush: THE acknowledgement of the whole
                // distributed transaction.
                let decision = Record::new([Value::Int(gtxn as i64)]);
                // lint: lock-across-io: the decisions table is only ever touched here, already under the round-wide commit lock; the temp guard spans exactly the flush
                if let Err(e) = inner.decisions.lock().append_batch(&[decision]) {
                    prepare_err = Some(e);
                }
            }
            if let Some(e) = prepare_err {
                // No decision was recorded: roll every prepared shard
                // back (in-memory; recovery default-aborts the durable
                // prepares because the decision log does not name them).
                for i in prepared {
                    inner.shards[i].mgr.abort_prepared(gtxn);
                }
                if xst_obs::enabled() {
                    shard_2pc_aborts_total().inc();
                }
                return Err(e);
            }
            // Decided: commit every participant. Past this point the
            // outcome is fixed — commit_prepared absorbs local marker
            // I/O failures and only errors on invariant corruption.
            let mut ts = 0;
            for i in prepared {
                ts = ts.max(inner.shards[i].mgr.commit_prepared(gtxn)?);
            }
            if xst_obs::enabled() {
                shard_2pc_commits_total().inc();
            }
            Ok(ts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_schema() -> Schema {
        Schema::new(["k", "v"])
    }

    fn row(k: i64, v: i64) -> Record {
        Record::new([Value::Int(k), Value::Int(v)])
    }

    /// Rows guaranteed to land on at least two different shards of a
    /// 3-shard engine (found by hashing, asserted in the test).
    fn spread_rows(n: usize) -> Vec<Record> {
        (0..n as i64).map(|k| row(k, k * 10)).collect()
    }

    fn fresh(shards: usize) -> ShardedEngine {
        let engine = ShardedEngine::with_shards(shards);
        engine.create_table("t", kv_schema()).unwrap();
        engine
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let rows = spread_rows(64);
        let mut seen = BTreeSet::new();
        for r in &rows {
            let s = shard_of(r, 3);
            assert!(s < 3);
            assert_eq!(s, shard_of(r, 3), "stable");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 3, "64 rows cover all 3 shards");
        assert_eq!(shard_of(&rows[0], 1), 0, "single shard routes to 0");
    }

    #[test]
    fn multi_shard_commit_is_atomic_and_readable() {
        let engine = fresh(3);
        let rows = spread_rows(12);
        engine.autocommit_insert("t", &rows).unwrap();
        let mut txn = engine.begin();
        assert_eq!(txn.scan("t").unwrap(), rows, "gather = ordered union");
        // Fragments are disjoint and total.
        let frags = txn.read_fragments("t").unwrap();
        assert_eq!(frags.len(), 3);
        let total: usize = frags.iter().map(|f| f.card()).sum();
        assert_eq!(total, rows.len());
        txn.abort();
    }

    #[test]
    fn single_shard_writes_take_the_fast_path() {
        let engine = fresh(3);
        // All writes to one record — exactly one shard participates, so
        // no decision record is appended to the coordinator log.
        engine.autocommit_insert("t", &[row(1, 10)]).unwrap();
        let decided = engine
            .inner
            .decisions
            .lock()
            .wal()
            .records()
            .map(|r| r.len());
        assert_eq!(decided.unwrap_or(0), 0, "no 2PC round for one shard");
    }

    #[test]
    fn snapshot_isolation_holds_across_shards() {
        let engine = fresh(3);
        let rows = spread_rows(8);
        engine.autocommit_insert("t", &rows).unwrap();
        let mut reader = engine.begin();
        assert_eq!(reader.scan("t").unwrap().len(), 8);
        engine.autocommit_insert("t", &[row(100, 1000)]).unwrap();
        assert_eq!(
            reader.scan("t").unwrap().len(),
            8,
            "cross-shard snapshot does not move"
        );
        drop(reader);
        let mut after = engine.begin();
        assert_eq!(after.scan("t").unwrap().len(), 9);
        after.abort();
    }

    #[test]
    fn first_committer_wins_across_shards() {
        let engine = fresh(3);
        let rows = spread_rows(8);
        engine.autocommit_insert("t", &rows).unwrap();
        let mut t1 = engine.begin();
        let mut t2 = engine.begin();
        for t in [&mut t1, &mut t2] {
            for r in &rows {
                t.delete("t", r.clone()).unwrap();
            }
        }
        assert!(t1.commit().is_ok());
        assert!(
            matches!(t2.commit(), Err(StorageError::TxnConflict { .. })),
            "second committer conflicts on every shard it shares"
        );
        let mut check = engine.begin();
        assert_eq!(check.scan("t").unwrap(), vec![]);
        check.abort();
    }

    #[test]
    fn failed_prepare_rolls_back_every_shard() {
        let engine = fresh(3);
        let rows = spread_rows(8);
        // A rival commits first; the victim's multi-shard commit must
        // fail prepare on some shard and leave NOTHING anywhere.
        let mut victim = engine.begin();
        for r in &rows {
            victim.insert("t", r.clone()).unwrap();
        }
        engine.autocommit_insert("t", &[rows[0].clone()]).unwrap();
        assert!(victim.commit().is_err());
        for i in 0..3 {
            assert_eq!(engine.shard_mgr(i).prepared_txns(), 0, "shard {i} clean");
        }
        let mut check = engine.begin();
        assert_eq!(check.scan("t").unwrap(), vec![rows[0].clone()]);
        check.abort();
    }

    #[test]
    fn committed_distributed_txns_recover_all_or_nothing() {
        let engine = fresh(3);
        let rows = spread_rows(12);
        engine.autocommit_insert("t", &rows).unwrap();
        // An in-flight transaction dies with the process.
        let mut doomed = engine.begin();
        doomed.insert("t", row(500, 5000)).unwrap();
        std::mem::forget(doomed);
        let recovered = engine.recover().unwrap();
        let mut check = recovered.begin();
        assert_eq!(check.scan("t").unwrap(), rows);
        check.abort();
        // The recovered engine accepts new distributed commits.
        recovered.autocommit_insert("t", &spread_rows(20)).unwrap();
        let mut check = recovered.begin();
        assert_eq!(check.scan("t").unwrap().len(), 20);
        check.abort();
    }

    #[test]
    fn active_txns_counts_distributed_transactions_once() {
        let engine = fresh(3);
        assert_eq!(engine.active_txns(), 0);
        let txn = engine.begin();
        assert_eq!(engine.active_txns(), 1, "one dtxn == one, not three");
        drop(txn);
        assert_eq!(engine.active_txns(), 0);
    }
}
