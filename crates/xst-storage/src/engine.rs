//! Set processing vs record processing — the two engines of experiment E1.
//!
//! Both engines answer the same queries over the same stored [`HeapFile`]s:
//!
//! * [`RecordEngine`] is the tuple-at-a-time baseline: scan, decode, test,
//!   emit, one record at a time, re-sorting whenever a distinct result is
//!   needed. This is the "record processing" discipline the XST literature
//!   argues against.
//! * [`SetEngine`] loads a table *once* into its canonical set identity and
//!   then answers every query with whole-set operations from `xst_core` —
//!   selection is σ-restriction, projection is σ-domain, join is the
//!   relative product, and union/intersection/difference are linear merges
//!   over canonical forms.
//!
//! Both must agree on every query (tested below and in the integration
//! suite); the benchmark harness measures where each wins.

use crate::bufpool::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::file::HeapFile;
use crate::record::{Record, Schema};
use xst_core::ops::{
    difference, par_image, par_intersection, par_relative_product, par_union, sigma_domain,
    Parallelism, Scope,
};
use xst_core::{ExtendedSet, SetBuilder, Value};

/// A stored table: schema + heap file.
pub struct Table {
    /// Field layout.
    pub schema: Schema,
    /// Record storage.
    pub file: HeapFile,
}

impl Table {
    /// Create an empty table.
    pub fn create(storage: &crate::bufpool::Storage, schema: Schema) -> Table {
        Table {
            schema,
            file: HeapFile::create(storage),
        }
    }

    /// Append records, validating arity.
    pub fn load<'a>(&mut self, records: impl IntoIterator<Item = &'a Record>) -> StorageResult<()> {
        for r in records {
            r.conforms(&self.schema)?;
            self.file.append(r)?;
        }
        self.file.sync()
    }
}

/// Tuple-at-a-time query processing (the baseline).
pub struct RecordEngine<'a> {
    pool: &'a BufferPool,
}

impl<'a> RecordEngine<'a> {
    /// An engine reading through `pool`.
    pub fn new(pool: &'a BufferPool) -> Self {
        RecordEngine { pool }
    }

    /// `SELECT * WHERE field = value`.
    pub fn select(&self, table: &Table, field: &str, value: &Value) -> StorageResult<Vec<Record>> {
        let pos = table.schema.require(field)?;
        let mut out = Vec::new();
        table.file.scan(self.pool, |_, r| {
            if r.get(pos) == Some(value) {
                out.push(r);
            }
            Ok(())
        })?;
        // Set semantics: results are ordered and duplicate-free, matching
        // the set engine's canonical output.
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// `SELECT DISTINCT fields` — per-record projection, sort + dedup at
    /// the end (the record-processing way of getting set semantics back).
    pub fn project(&self, table: &Table, fields: &[&str]) -> StorageResult<Vec<Record>> {
        let positions: Vec<usize> = fields
            .iter()
            .map(|f| table.schema.require(f))
            .collect::<StorageResult<_>>()?;
        let mut out = Vec::new();
        table.file.scan(self.pool, |_, r| {
            let projected: Vec<Value> = positions
                .iter()
                .map(|&p| {
                    r.get(p).cloned().ok_or_else(|| StorageError::Corrupt {
                        reason: format!("record narrower than schema position {p}"),
                    })
                })
                .collect::<StorageResult<_>>()?;
            out.push(Record::new(projected));
            Ok(())
        })?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Equijoin via build + probe, emitting concatenated records.
    pub fn join(
        &self,
        left: &Table,
        right: &Table,
        left_field: &str,
        right_field: &str,
    ) -> StorageResult<Vec<Record>> {
        let lp = left.schema.require(left_field)?;
        let rp = right.schema.require(right_field)?;
        // Build side: hash the right table by key, record at a time.
        let mut build: std::collections::HashMap<Value, Vec<Record>> =
            std::collections::HashMap::new();
        right.file.scan(self.pool, |_, r| {
            if let Some(k) = r.get(rp) {
                build.entry(k.clone()).or_default().push(r);
            }
            Ok(())
        })?;
        let mut out = Vec::new();
        left.file.scan(self.pool, |_, l| {
            if let Some(k) = l.get(lp) {
                if let Some(matches) = build.get(k) {
                    for r in matches {
                        let mut vals = l.values().to_vec();
                        vals.extend(r.values().iter().cloned());
                        out.push(Record::new(vals));
                    }
                }
            }
            Ok(())
        })?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Set-semantics union of two same-schema tables, record style:
    /// concatenate then sort + dedup.
    pub fn union(&self, a: &Table, b: &Table) -> StorageResult<Vec<Record>> {
        check_same_arity(a, b)?;
        let mut out = a.file.read_all(self.pool)?;
        out.extend(b.file.read_all(self.pool)?);
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Set-semantics intersection, record style: sort one side, binary
    /// search per record of the other.
    pub fn intersect(&self, a: &Table, b: &Table) -> StorageResult<Vec<Record>> {
        check_same_arity(a, b)?;
        let mut bs = b.file.read_all(self.pool)?;
        bs.sort();
        let mut out = Vec::new();
        a.file.scan(self.pool, |_, r| {
            if bs.binary_search(&r).is_ok() {
                out.push(r);
            }
            Ok(())
        })?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Set-semantics difference `a ~ b`, record style.
    pub fn difference(&self, a: &Table, b: &Table) -> StorageResult<Vec<Record>> {
        check_same_arity(a, b)?;
        let mut bs = b.file.read_all(self.pool)?;
        bs.sort();
        let mut out = Vec::new();
        a.file.scan(self.pool, |_, r| {
            if bs.binary_search(&r).is_err() {
                out.push(r);
            }
            Ok(())
        })?;
        out.sort();
        out.dedup();
        Ok(out)
    }
}

fn check_same_arity(a: &Table, b: &Table) -> StorageResult<()> {
    if a.schema.arity() == b.schema.arity() {
        Ok(())
    } else {
        Err(StorageError::SchemaMismatch {
            reason: format!(
                "union-compatible tables required: arity {} vs {}",
                a.schema.arity(),
                b.schema.arity()
            ),
        })
    }
}

/// Whole-set query processing over the table's canonical set identity.
///
/// The identity is held behind an [`Arc`](std::sync::Arc) so that
/// snapshot readers — the transaction layer hands out one engine per
/// [`crate::txn::Txn`] read — share one materialized set instead of
/// copying it per reader.
pub struct SetEngine {
    identity: std::sync::Arc<ExtendedSet>,
    schema: Schema,
    par: Parallelism,
}

impl SetEngine {
    /// Load `table` once into its set identity (the only scan this engine
    /// ever performs). The scan runs under the pool's retry policy: a
    /// transient failure mid-scan restarts the load from a fresh builder,
    /// so a retried load never double-counts records.
    pub fn load(table: &Table, pool: &BufferPool) -> StorageResult<SetEngine> {
        let policy = pool.retry_policy();
        let identity = crate::retry::with_retry(&policy, || {
            let mut b = SetBuilder::with_capacity(table.file.record_count());
            table.file.scan(pool, |_, r| {
                b.classical_elem(Value::Set(r.to_tuple()));
                Ok(())
            })?;
            Ok(b.build())
        })?;
        Ok(SetEngine {
            identity: std::sync::Arc::new(identity),
            schema: table.schema.clone(),
            par: Parallelism::default(),
        })
    }

    /// Wrap an already-materialized set identity (e.g. an operation result).
    pub fn from_identity(identity: ExtendedSet, schema: Schema) -> SetEngine {
        SetEngine::from_shared(std::sync::Arc::new(identity), schema)
    }

    /// Wrap a shared identity without copying it — the zero-copy path for
    /// MVCC snapshot readers, which all view the same committed version.
    pub fn from_shared(identity: std::sync::Arc<ExtendedSet>, schema: Schema) -> SetEngine {
        SetEngine {
            identity,
            schema,
            par: Parallelism::default(),
        }
    }

    /// Route this engine's operators through the parallel kernels under
    /// `par`'s thread count and cardinality threshold. Results are
    /// identical to the sequential kernels on every input (the kernels are
    /// differential-tested); only wall-clock changes.
    pub fn with_parallelism(mut self, par: Parallelism) -> SetEngine {
        self.par = par;
        self
    }

    /// The active degree-of-parallelism policy.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The canonical set identity of the table.
    pub fn identity(&self) -> &ExtendedSet {
        &self.identity
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Selection as σ-restriction: witnesses pin the field position.
    pub fn select(&self, field: &str, value: &Value) -> StorageResult<ExtendedSet> {
        let pos = self.schema.require(field)? as i64;
        let sigma1 = ExtendedSet::tuple([Value::Int(pos + 1)]);
        let arity = self.schema.arity() as i64;
        // Keep whole records: σ2 is the identity re-scope on all positions.
        let sigma2 = identity_spec(arity);
        let witness = ExtendedSet::classical([Value::Set(ExtendedSet::tuple([value.clone()]))]);
        Ok(par_image(
            &self.identity,
            &witness,
            &Scope::new(sigma1, sigma2),
            &self.par,
        ))
    }

    /// Projection as σ-domain over the requested positions.
    pub fn project(&self, fields: &[&str]) -> StorageResult<ExtendedSet> {
        let spec = ExtendedSet::tuple(
            fields
                .iter()
                .map(|f| self.schema.require(f).map(|p| Value::Int(p as i64 + 1)))
                .collect::<StorageResult<Vec<_>>>()?,
        );
        Ok(sigma_domain(&self.identity, &spec))
    }

    /// Equijoin as a relative product: match `left_field` against
    /// `right_field`, keep the left tuple in place and shift the right
    /// tuple past it (the Definition 9.2 concatenation shape).
    pub fn join(
        &self,
        right: &SetEngine,
        left_field: &str,
        right_field: &str,
    ) -> StorageResult<ExtendedSet> {
        let lp = self.schema.require(left_field)? as i64;
        let rp = right.schema.require(right_field)? as i64;
        let ln = self.schema.arity() as i64;
        let rn = right.schema.arity() as i64;
        let sigma = Scope::new(
            identity_spec(ln),
            ExtendedSet::from_pairs([(Value::Int(lp + 1), Value::Int(1))]),
        );
        let omega = Scope::new(
            ExtendedSet::from_pairs([(Value::Int(rp + 1), Value::Int(1))]),
            // Shift right positions past the left tuple.
            ExtendedSet::from_pairs((1..=rn).map(|j| (Value::Int(j), Value::Int(ln + j)))),
        );
        Ok(par_relative_product(
            &self.identity,
            &sigma,
            &right.identity,
            &omega,
            &self.par,
        ))
    }

    /// Union of canonical identities — a linear merge (range-parallel
    /// above the parallelism threshold).
    pub fn union(&self, other: &SetEngine) -> ExtendedSet {
        par_union(&self.identity, &other.identity, &self.par)
    }

    /// Intersection of canonical identities.
    pub fn intersect(&self, other: &SetEngine) -> ExtendedSet {
        par_intersection(&self.identity, &other.identity, &self.par)
    }

    /// Difference of canonical identities.
    pub fn difference(&self, other: &SetEngine) -> ExtendedSet {
        difference(&self.identity, &other.identity)
    }

    /// Convert a result identity back into records (for comparison with the
    /// record engine).
    pub fn to_records(result: &ExtendedSet) -> StorageResult<Vec<Record>> {
        let mut out: Vec<Record> = result
            .iter()
            .map(|(e, _)| {
                e.as_set()
                    .ok_or_else(|| StorageError::SchemaMismatch {
                        reason: format!("{e} is not a record set"),
                    })
                    .and_then(Record::from_tuple)
            })
            .collect::<StorageResult<_>>()?;
        out.sort();
        Ok(out)
    }
}

/// The identity re-scope spec on positions `1..=n`: `{1^1, ..., n^n}`.
fn identity_spec(n: i64) -> ExtendedSet {
    ExtendedSet::from_pairs((1..=n).map(|i| (Value::Int(i), Value::Int(i))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::Storage;

    fn parts_schema() -> Schema {
        Schema::new(["pid", "name", "color"])
    }

    fn supplies_schema() -> Schema {
        Schema::new(["sid", "pid", "qty"])
    }

    fn setup() -> (BufferPool, Table, Table) {
        let storage = Storage::new();
        let mut parts = Table::create(&storage, parts_schema());
        parts
            .load(&[
                Record::new([Value::Int(1), Value::str("bolt"), Value::sym("red")]),
                Record::new([Value::Int(2), Value::str("nut"), Value::sym("green")]),
                Record::new([Value::Int(3), Value::str("cam"), Value::sym("red")]),
            ])
            .unwrap();
        let mut supplies = Table::create(&storage, supplies_schema());
        supplies
            .load(&[
                Record::new([Value::Int(10), Value::Int(1), Value::Int(100)]),
                Record::new([Value::Int(10), Value::Int(3), Value::Int(50)]),
                Record::new([Value::Int(20), Value::Int(2), Value::Int(5)]),
                Record::new([Value::Int(20), Value::Int(9), Value::Int(7)]),
            ])
            .unwrap();
        (BufferPool::new(storage, 16), parts, supplies)
    }

    #[test]
    fn engines_agree_on_select() {
        let (pool, parts, _) = setup();
        let rec = RecordEngine::new(&pool);
        let via_records = rec.select(&parts, "color", &Value::sym("red")).unwrap();
        assert_eq!(via_records.len(), 2);
        let set = SetEngine::load(&parts, &pool).unwrap();
        let via_sets =
            SetEngine::to_records(&set.select("color", &Value::sym("red")).unwrap()).unwrap();
        assert_eq!(via_records, via_sets);
    }

    #[test]
    fn engines_agree_on_project() {
        let (pool, parts, _) = setup();
        let rec = RecordEngine::new(&pool);
        let via_records = rec.project(&parts, &["color"]).unwrap();
        assert_eq!(via_records.len(), 2, "distinct colors");
        let set = SetEngine::load(&parts, &pool).unwrap();
        let via_sets = SetEngine::to_records(&set.project(&["color"]).unwrap()).unwrap();
        assert_eq!(via_records, via_sets);
    }

    #[test]
    fn engines_agree_on_join() {
        let (pool, parts, supplies) = setup();
        let rec = RecordEngine::new(&pool);
        let via_records = rec.join(&supplies, &parts, "pid", "pid").unwrap();
        assert_eq!(via_records.len(), 3, "supply rows with matching parts");
        let sl = SetEngine::load(&supplies, &pool).unwrap();
        let sr = SetEngine::load(&parts, &pool).unwrap();
        let via_sets = SetEngine::to_records(&sl.join(&sr, "pid", "pid").unwrap()).unwrap();
        assert_eq!(via_records, via_sets);
    }

    #[test]
    fn join_records_are_concatenations() {
        let (pool, parts, supplies) = setup();
        let sl = SetEngine::load(&supplies, &pool).unwrap();
        let sr = SetEngine::load(&parts, &pool).unwrap();
        let result = sl.join(&sr, "pid", "pid").unwrap();
        for (e, _) in result.iter() {
            let t = e.as_set().unwrap();
            assert_eq!(t.tuple_len(), Some(6), "3 + 3 fields");
        }
    }

    #[test]
    fn engines_agree_on_boolean_ops() {
        let storage = Storage::new();
        let schema = Schema::new(["v"]);
        let mut a = Table::create(&storage, schema.clone());
        a.load(&[
            Record::new([Value::Int(1)]),
            Record::new([Value::Int(2)]),
            Record::new([Value::Int(3)]),
        ])
        .unwrap();
        let mut b = Table::create(&storage, schema);
        b.load(&[Record::new([Value::Int(2)]), Record::new([Value::Int(4)])])
            .unwrap();
        let pool = BufferPool::new(storage, 16);
        let rec = RecordEngine::new(&pool);
        let sa = SetEngine::load(&a, &pool).unwrap();
        let sb = SetEngine::load(&b, &pool).unwrap();
        assert_eq!(
            rec.union(&a, &b).unwrap(),
            SetEngine::to_records(&sa.union(&sb)).unwrap()
        );
        assert_eq!(
            rec.intersect(&a, &b).unwrap(),
            SetEngine::to_records(&sa.intersect(&sb)).unwrap()
        );
        assert_eq!(
            rec.difference(&a, &b).unwrap(),
            SetEngine::to_records(&sa.difference(&sb)).unwrap()
        );
    }

    #[test]
    fn parallel_engine_agrees_with_sequential_engine() {
        let (pool, parts, supplies) = setup();
        let seq_s = SetEngine::load(&supplies, &pool).unwrap();
        let seq_p = SetEngine::load(&parts, &pool).unwrap();
        // Threshold 1 forces the parallel kernels even on tiny tables.
        let par = Parallelism::new(4).with_threshold(1);
        let par_s = SetEngine::load(&supplies, &pool)
            .unwrap()
            .with_parallelism(par);
        let par_p = SetEngine::load(&parts, &pool)
            .unwrap()
            .with_parallelism(par);
        assert_eq!(par_s.parallelism(), par);
        assert_eq!(
            seq_p.select("color", &Value::sym("red")).unwrap(),
            par_p.select("color", &Value::sym("red")).unwrap()
        );
        assert_eq!(
            seq_s.join(&seq_p, "pid", "pid").unwrap(),
            par_s.join(&par_p, "pid", "pid").unwrap()
        );
        assert_eq!(seq_s.union(&seq_s), par_s.union(&par_s));
        assert_eq!(seq_s.intersect(&seq_s), par_s.intersect(&par_s));
    }

    #[test]
    fn select_on_unknown_field_fails() {
        let (pool, parts, _) = setup();
        let rec = RecordEngine::new(&pool);
        assert!(rec.select(&parts, "bogus", &Value::Int(0)).is_err());
        let set = SetEngine::load(&parts, &pool).unwrap();
        assert!(set.select("bogus", &Value::Int(0)).is_err());
    }

    #[test]
    fn union_requires_compatible_arity() {
        let (pool, parts, supplies) = setup();
        let rec = RecordEngine::new(&pool);
        // Same arity (3), so this succeeds even across "types"...
        assert!(rec.union(&parts, &supplies).is_ok());
        // ...but a genuinely different arity fails.
        let storage = Storage::new();
        let narrow = Table::create(&storage, Schema::new(["x"]));
        assert!(rec.union(&parts, &narrow).is_err());
    }

    #[test]
    fn set_engine_identity_is_canonical() {
        let (pool, parts, _) = setup();
        let set = SetEngine::load(&parts, &pool).unwrap();
        assert_eq!(set.identity().card(), 3);
        // Loading twice yields the identical set (identity is canonical).
        let again = SetEngine::load(&parts, &pool).unwrap();
        assert_eq!(set.identity(), again.identity());
    }

    #[test]
    fn empty_select_results() {
        let (pool, parts, _) = setup();
        let rec = RecordEngine::new(&pool);
        assert!(rec
            .select(&parts, "color", &Value::sym("puce"))
            .unwrap()
            .is_empty());
        let set = SetEngine::load(&parts, &pool).unwrap();
        assert!(set.select("color", &Value::sym("puce")).unwrap().is_empty());
    }
}
