//! Deterministic fault injection for the simulated I/O substrate.
//!
//! A [`FaultPlan`] is installed on a [`Storage`](crate::bufpool::Storage)
//! disk and/or a [`Wal`](crate::wal::Wal): every I/O operation the handles
//! perform becomes a numbered *fault site*, counted in execution order by
//! one shared atomic. The plan's [`FaultSchedule`] decides which sites
//! fire — exactly site `#k`, or every `k`-th site — and its [`FaultKind`]
//! decides what goes wrong there: a failed or torn page write, a short
//! read, a failed fsync-equivalent, or a transient error that a
//! [`RetryPolicy`](crate::retry::RetryPolicy) may absorb.
//!
//! Determinism is the point. There is no wall-clock randomness anywhere:
//! the same workload under the same plan injects the same faults at the
//! same sites on every run, which is what lets the crash-recovery harness
//! in `xst-testkit` *enumerate* sites and crash at each one instead of
//! sampling a few.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use xst_obs::{registry, Counter};

fn faults_injected_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_FAULTS_INJECTED_TOTAL,
            "Faults injected into the storage substrate by an installed FaultPlan.",
        )
    })
}

/// What goes wrong at a firing fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A page write fails outright; nothing is persisted.
    WriteFail,
    /// A page write tears: only the first `n` bytes are persisted, the
    /// rest of the frame is zero — the classic partial-write power cut.
    TornWrite(usize),
    /// A read returns only the first `n` bytes of the page.
    ShortRead(usize),
    /// An fsync-equivalent (WAL flush, checkpoint mark) fails.
    SyncFail,
    /// A transient failure: the operation errors with
    /// [`StorageError::Transient`](crate::error::StorageError::Transient)
    /// and retrying it may succeed.
    Transient,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WriteFail => write!(f, "write-fail"),
            FaultKind::TornWrite(n) => write!(f, "torn-write({n})"),
            FaultKind::ShortRead(n) => write!(f, "short-read({n})"),
            FaultKind::SyncFail => write!(f, "sync-fail"),
            FaultKind::Transient => write!(f, "transient"),
        }
    }
}

/// Which sites fire. Sites are numbered from 0 in execution order across
/// every handle sharing the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Fire exactly at site `#k`, once.
    AtSite(u64),
    /// Fire at every `k`-th site (sites `k-1`, `2k-1`, …). `EveryNth(1)`
    /// fires at every site.
    EveryNth(u64),
}

/// The class of I/O an instrumented operation belongs to; it shapes how a
/// [`FaultKind`] manifests (a torn *write* cannot happen on a read path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// A page or range read.
    Read,
    /// A page append or overwrite.
    Write,
    /// An fsync-equivalent: WAL flush, checkpoint mark.
    Sync,
}

/// What an instrumented operation must actually do when its site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Fail permanently; persist nothing.
    Fail,
    /// Persist only the first `n` bytes, then fail.
    Torn(usize),
    /// Return only the first `n` bytes, then fail.
    Short(usize),
    /// Fail with a transient error.
    Transient,
}

struct PlanInner {
    schedule: FaultSchedule,
    kind: FaultKind,
    /// Next site number; shared by every handle the plan is installed on.
    site: AtomicU64,
    injected: AtomicU64,
    armed: AtomicBool,
}

/// A deterministic fault-injection plan, cheaply cloneable; clones share
/// one site counter, so installing the same plan on a `Storage` and a
/// `Wal` numbers their operations in one global execution order.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// A plan firing `kind` on `schedule`.
    pub fn new(schedule: FaultSchedule, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanInner {
                schedule,
                kind,
                site: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                armed: AtomicBool::new(true),
            }),
        }
    }

    /// A plan that counts sites but never fires — run a workload under it
    /// to learn how many injectable sites the workload has, then sweep
    /// [`FaultSchedule::AtSite`] over `0..sites_seen()`.
    pub fn counting() -> FaultPlan {
        let plan = FaultPlan::new(FaultSchedule::AtSite(u64::MAX), FaultKind::Transient);
        plan.disarm();
        plan
    }

    /// The fault this plan injects.
    pub fn kind(&self) -> FaultKind {
        self.inner.kind
    }

    /// Number of fault sites passed so far (fired or not).
    pub fn sites_seen(&self) -> u64 {
        self.inner.site.load(Ordering::SeqCst)
    }

    /// Number of faults actually injected.
    pub fn injected_count(&self) -> u64 {
        self.inner.injected.load(Ordering::SeqCst)
    }

    /// Stop firing (sites keep counting).
    pub fn disarm(&self) {
        self.inner.armed.store(false, Ordering::SeqCst);
    }

    /// Resume firing.
    pub fn arm(&self) {
        self.inner.armed.store(true, Ordering::SeqCst);
    }

    /// Called by instrumented operations: claim the next site number and
    /// report what, if anything, to inject there. Kinds degrade to
    /// [`Injection::Fail`] on site classes where they make no sense (a
    /// torn write on a read path is just a failed read).
    pub fn check(&self, class: SiteClass) -> Option<Injection> {
        let n = self.inner.site.fetch_add(1, Ordering::SeqCst);
        if !self.inner.armed.load(Ordering::SeqCst) {
            return None;
        }
        let fires = match self.inner.schedule {
            FaultSchedule::AtSite(k) => n == k,
            FaultSchedule::EveryNth(k) => k > 0 && (n + 1).is_multiple_of(k),
        };
        if !fires {
            return None;
        }
        self.inner.injected.fetch_add(1, Ordering::SeqCst);
        faults_injected_total().inc();
        Some(match (self.inner.kind, class) {
            (FaultKind::Transient, _) => Injection::Transient,
            (FaultKind::TornWrite(n), SiteClass::Write | SiteClass::Sync) => Injection::Torn(n),
            (FaultKind::ShortRead(n), SiteClass::Read) => Injection::Short(n),
            _ => Injection::Fail,
        })
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("schedule", &self.inner.schedule)
            .field("kind", &self.inner.kind)
            .field("sites_seen", &self.sites_seen())
            .field("injected", &self.injected_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_site_fires_exactly_once() {
        let plan = FaultPlan::new(FaultSchedule::AtSite(2), FaultKind::WriteFail);
        assert_eq!(plan.check(SiteClass::Write), None);
        assert_eq!(plan.check(SiteClass::Write), None);
        assert_eq!(plan.check(SiteClass::Write), Some(Injection::Fail));
        assert_eq!(plan.check(SiteClass::Write), None);
        assert_eq!(plan.sites_seen(), 4);
        assert_eq!(plan.injected_count(), 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let plan = FaultPlan::new(FaultSchedule::EveryNth(3), FaultKind::Transient);
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.check(SiteClass::Sync).is_some())
            .collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn kinds_degrade_by_site_class() {
        let torn = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::TornWrite(7));
        assert_eq!(torn.check(SiteClass::Write), Some(Injection::Torn(7)));
        assert_eq!(torn.check(SiteClass::Sync), Some(Injection::Torn(7)));
        assert_eq!(torn.check(SiteClass::Read), Some(Injection::Fail));
        let short = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::ShortRead(9));
        assert_eq!(short.check(SiteClass::Read), Some(Injection::Short(9)));
        assert_eq!(short.check(SiteClass::Write), Some(Injection::Fail));
        let sync = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::SyncFail);
        assert_eq!(sync.check(SiteClass::Sync), Some(Injection::Fail));
    }

    #[test]
    fn counting_plan_never_fires_and_clones_share_the_counter() {
        let plan = FaultPlan::counting();
        let clone = plan.clone();
        for _ in 0..5 {
            assert_eq!(plan.check(SiteClass::Write), None);
            assert_eq!(clone.check(SiteClass::Read), None);
        }
        assert_eq!(plan.sites_seen(), 10, "clones share one site counter");
        assert_eq!(plan.injected_count(), 0);
    }

    #[test]
    fn disarm_stops_firing_but_keeps_counting() {
        let plan = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::WriteFail);
        assert!(plan.check(SiteClass::Write).is_some());
        plan.disarm();
        assert!(plan.check(SiteClass::Write).is_none());
        plan.arm();
        assert!(plan.check(SiteClass::Write).is_some());
        assert_eq!(plan.sites_seen(), 3);
    }
}
