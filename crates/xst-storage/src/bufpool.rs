//! Simulated disk and buffer pool with I/O accounting.
//!
//! We obviously do not have the paper era's disk hardware; what the
//! experiments need is the *access-cost shape* — how many page transfers a
//! strategy causes. [`Storage`] is an in-memory "disk" that counts every
//! page read and write; [`BufferPool`] caches frames with LRU eviction and
//! counts hits and misses. Experiment E3 (restriction pushdown) reads its
//! numbers from [`IoStats`].

use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultPlan, Injection, SiteClass};
use crate::page::{Page, PAGE_SIZE};
use crate::retry::{with_retry, RetryPolicy};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use xst_obs::{registry, Counter, Histogram};

/// Registry prefix for every metric this module emits; reset routing
/// ([`Storage::reset_stats`], [`BufferPool::reset_stats`]) keys off it.
pub const STORAGE_METRIC_PREFIX: &str = xst_obs::names::STORAGE_PREFIX;

fn page_read_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::STORAGE_PAGE_READ_NS,
            "Latency of one page read from the simulated disk.",
        )
    })
}

fn page_write_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::STORAGE_PAGE_WRITE_NS,
            "Latency of one page write (append or overwrite) to the simulated disk.",
        )
    })
}

/// Identifier of a file on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A page address: file + page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: usize,
}

/// Cumulative I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages transferred from the simulated disk.
    pub disk_reads: u64,
    /// Pages transferred to the simulated disk.
    pub disk_writes: u64,
    /// Buffer-pool lookups satisfied from memory.
    pub pool_hits: u64,
    /// Buffer-pool lookups that had to go to disk.
    pub pool_misses: u64,
    /// Frames pushed out of the pool by LRU pressure.
    pub pool_evictions: u64,
}

impl IoStats {
    /// Total page transfers (the 1977 cost metric).
    pub fn transfers(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }

    /// Hit ratio of the pool, if any lookups happened.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.pool_hits + self.pool_misses;
        (total > 0).then(|| self.pool_hits as f64 / total as f64)
    }
}

#[derive(Default)]
struct StorageInner {
    files: Vec<Vec<Box<[u8; PAGE_SIZE]>>>,
    stats: IoStats,
    faults: Option<FaultPlan>,
}

impl StorageInner {
    /// Claim the next fault site for an operation of `class`, if a plan is
    /// installed. Called with the disk lock held, so the site numbering is
    /// exactly the serialized execution order of disk operations.
    fn check_fault(&self, class: SiteClass) -> Option<Injection> {
        self.faults.as_ref().and_then(|p| p.check(class))
    }
}

/// The simulated disk: page-addressed, I/O-counting, cheaply cloneable
/// (clones share the same disk).
#[derive(Clone, Default)]
pub struct Storage {
    inner: Arc<Mutex<StorageInner>>,
}

impl Storage {
    /// Fresh empty disk.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Allocate a new empty file.
    // lint: unnumbered-io: file creation is catalog metadata, not page I/O — the crash sweeps fault the page writes and flushes that follow it
    pub fn create_file(&self) -> FileId {
        let mut inner = self.inner.lock();
        inner.files.push(Vec::new());
        FileId(inner.files.len() as u32 - 1)
    }

    /// Append a page to `file`, returning its page number. Counts one disk
    /// write.
    pub fn append_page(&self, file: FileId, page: &Page) -> StorageResult<usize> {
        self.write_page_at_inner(file, None, page, "append_page")
    }

    /// Write `page` at `page_no`, appending when `page_no` equals the file
    /// length and overwriting when it is below. The write-target form heap
    /// files use: after a torn append left garbage at an index, retrying
    /// the same target *overwrites* the garbage instead of appending a
    /// duplicate. Counts one disk write.
    pub fn write_page_at(&self, file: FileId, page_no: usize, page: &Page) -> StorageResult<usize> {
        self.write_page_at_inner(file, Some(page_no), page, "write_page_at")
    }

    /// Overwrite an existing page. Counts one disk write.
    pub fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        // Address validation happens before the fault site is claimed, so
        // caller bugs are not confused with injected failures.
        let pages = self.page_count(id.file)?;
        if id.page >= pages {
            return Err(StorageError::PageOutOfRange {
                page: id.page,
                pages,
            });
        }
        self.write_page_at_inner(id.file, Some(id.page), page, "write_page")
            .map(|_| ())
    }

    fn write_page_at_inner(
        &self,
        file: FileId,
        page_no: Option<usize>,
        page: &Page,
        op: &'static str,
    ) -> StorageResult<usize> {
        let timer = xst_obs::enabled().then(Instant::now);
        let mut inner = self.inner.lock();
        let len = file_ref(&inner.files, file)?.len();
        let target = page_no.unwrap_or(len);
        if target > len {
            return Err(StorageError::PageOutOfRange {
                page: target,
                pages: len,
            });
        }
        // One numbered fault site per physical page write.
        let written = match inner.check_fault(SiteClass::Write) {
            Some(Injection::Transient) => {
                return Err(StorageError::Transient { op: op.into() });
            }
            Some(Injection::Torn(n)) => {
                // The power-cut shape: a prefix of the frame reaches the
                // platter, the transfer still reports failure. An appended
                // torn frame is zero beyond the prefix; an overwritten one
                // keeps its old suffix (only the first sectors were hit).
                let keep = n.min(PAGE_SIZE);
                let f = file_mut(&mut inner.files, file)?;
                if target == f.len() {
                    f.push(Box::new([0u8; PAGE_SIZE]));
                }
                f[target][..keep].copy_from_slice(&page.as_bytes()[..keep]);
                inner.stats.disk_writes += 1;
                return Err(StorageError::Io {
                    op: op.into(),
                    reason: format!("torn write: {keep} of {PAGE_SIZE} bytes persisted"),
                });
            }
            Some(_) => {
                return Err(StorageError::Io {
                    op: op.into(),
                    reason: "write failed".into(),
                });
            }
            None => {
                let f = file_mut(&mut inner.files, file)?;
                if target == f.len() {
                    f.push(Box::new([0u8; PAGE_SIZE]));
                }
                f[target].copy_from_slice(page.as_bytes());
                inner.stats.disk_writes += 1;
                target
            }
        };
        drop(inner);
        if let Some(t) = timer {
            page_write_hist().observe_since(t);
        }
        Ok(written)
    }

    /// Read a page from disk. Counts one disk read.
    pub fn read_page(&self, id: PageId) -> StorageResult<Page> {
        let timer = xst_obs::enabled().then(Instant::now);
        let mut inner = self.inner.lock();
        {
            let f = file_ref(&inner.files, id.file)?;
            if id.page >= f.len() {
                return Err(StorageError::PageOutOfRange {
                    page: id.page,
                    pages: f.len(),
                });
            }
        }
        match inner.check_fault(SiteClass::Read) {
            Some(Injection::Transient) => {
                return Err(StorageError::Transient {
                    op: "read_page".into(),
                })
            }
            Some(Injection::Short(n)) => {
                return Err(StorageError::Io {
                    op: "read_page".into(),
                    reason: format!("short read: {} of {PAGE_SIZE} bytes", n.min(PAGE_SIZE)),
                })
            }
            Some(_) => {
                return Err(StorageError::Io {
                    op: "read_page".into(),
                    reason: "read failed".into(),
                })
            }
            None => {}
        }
        let frame = &file_ref(&inner.files, id.file)?[id.page];
        let page = Page::from_bytes(&frame[..])?;
        inner.stats.disk_reads += 1;
        drop(inner);
        if let Some(t) = timer {
            page_read_hist().observe_since(t);
        }
        Ok(page)
    }

    /// Read a contiguous page range `[lo, hi)` under a single lock
    /// acquisition — the bulk path for scans and parallel loaders, avoiding
    /// per-page lock contention. Counts `hi - lo` disk reads.
    pub fn read_page_range(&self, file: FileId, lo: usize, hi: usize) -> StorageResult<Vec<Page>> {
        let timer = xst_obs::enabled().then(Instant::now);
        let mut inner = self.inner.lock();
        {
            let f = file_ref(&inner.files, file)?;
            if hi > f.len() || lo > hi {
                return Err(StorageError::PageOutOfRange {
                    page: hi,
                    pages: f.len(),
                });
            }
        }
        // One fault site per bulk call (it is a single I/O submission).
        match inner.check_fault(SiteClass::Read) {
            Some(Injection::Transient) => {
                return Err(StorageError::Transient {
                    op: "read_page_range".into(),
                })
            }
            Some(Injection::Short(n)) => {
                return Err(StorageError::Io {
                    op: "read_page_range".into(),
                    reason: format!("short read: {n} bytes of a {}-page range", hi - lo),
                })
            }
            Some(_) => {
                return Err(StorageError::Io {
                    op: "read_page_range".into(),
                    reason: "read failed".into(),
                })
            }
            None => {}
        }
        let f = file_ref(&inner.files, file)?;
        let pages: StorageResult<Vec<Page>> = f[lo..hi]
            .iter()
            .map(|frame| Page::from_bytes(&frame[..]))
            .collect();
        inner.stats.disk_reads += (hi - lo) as u64;
        drop(inner);
        if let Some(t) = timer {
            // One observation for the bulk transfer: the histogram tracks
            // I/O call latency, and a range read is a single call.
            page_read_hist().observe_since(t);
        }
        pages
    }

    /// Number of pages in `file`.
    // lint: unnumbered-io: length metadata lookup — reads no page bytes, so no fault site can tear or lose anything
    pub fn page_count(&self, file: FileId) -> StorageResult<usize> {
        let inner = self.inner.lock();
        Ok(file_ref(&inner.files, file)?.len())
    }

    /// Snapshot the counters.
    // lint: unnumbered-io: observability counter snapshot, not device I/O
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Number of files on the disk.
    // lint: unnumbered-io: catalog metadata lookup — reads no page bytes
    pub fn file_count(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// Clone every page frame of every file (for [`crate::snapshot`]).
    /// Does not count as I/O: snapshots model offline backup.
    // lint: unnumbered-io: snapshots model offline backup of a quiesced disk; the crash sweeps never run across one
    pub(crate) fn export_all(&self) -> Vec<Vec<Box<[u8; PAGE_SIZE]>>> {
        self.inner.lock().files.clone()
    }

    /// Rebuild a disk from exported frames (for [`crate::snapshot`]).
    pub(crate) fn import_all(files: Vec<Vec<Box<[u8; PAGE_SIZE]>>>) -> Storage {
        Storage {
            inner: Arc::new(Mutex::new(StorageInner {
                files,
                stats: IoStats::default(),
                faults: None,
            })),
        }
    }

    /// Install a fault-injection plan: every subsequent disk operation
    /// claims a numbered site from it. Clones of this disk share the plan.
    pub fn install_faults(&self, plan: &FaultPlan) {
        self.inner.lock().faults = Some(plan.clone());
    }

    /// Remove the installed fault plan, if any (recovery runs fault-free).
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Zero the counters (pool hit/miss counters live in the pool) and the
    /// page-I/O series this module registered — local `IoStats` and the
    /// global registry stay consistent.
    // lint: unnumbered-io: zeroes observability counters only; page frames are untouched
    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats::default();
        registry().reset_prefix(xst_obs::names::STORAGE_PAGE_PREFIX);
    }
}

fn file_ref(
    files: &[Vec<Box<[u8; PAGE_SIZE]>>],
    id: FileId,
) -> StorageResult<&Vec<Box<[u8; PAGE_SIZE]>>> {
    files
        .get(id.0 as usize)
        .ok_or(StorageError::PageOutOfRange {
            page: 0,
            pages: files.len(),
        })
}

fn file_mut(
    files: &mut Vec<Vec<Box<[u8; PAGE_SIZE]>>>,
    id: FileId,
) -> StorageResult<&mut Vec<Box<[u8; PAGE_SIZE]>>> {
    let pages = files.len();
    files
        .get_mut(id.0 as usize)
        .ok_or(StorageError::PageOutOfRange { page: 0, pages })
}

/// Default shard count for [`BufferPool::new`]. Sharding bounds lock
/// contention when parallel kernels fault pages concurrently; small pools
/// collapse to fewer shards so capacity is never wasted on empty shards.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Frame map of one shard; the LRU clock (`tick`) is shard-local, which is
/// exactly per-shard LRU.
struct ShardFrames {
    frames: HashMap<PageId, (Arc<Page>, u64)>,
    tick: u64,
}

/// One pool shard: its frame map behind a dedicated lock, plus lock-free
/// hit/miss/eviction counters so `stats()` never has to stop the world.
/// Each shard also holds its registry series (`…{shard="i"}`) so the hot
/// path records without a registry lookup — the counters gate themselves
/// on the global collector switch.
struct Shard {
    frames: Mutex<ShardFrames>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hits_metric: Arc<Counter>,
    misses_metric: Arc<Counter>,
    evictions_metric: Arc<Counter>,
}

impl Shard {
    fn new(index: usize) -> Shard {
        let shard = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard)];
        Shard {
            frames: Mutex::new(ShardFrames {
                frames: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits_metric: registry().counter_with(
                xst_obs::names::STORAGE_POOL_HITS_TOTAL,
                "Buffer-pool lookups served from memory, per shard.",
                labels,
            ),
            misses_metric: registry().counter_with(
                xst_obs::names::STORAGE_POOL_MISSES_TOTAL,
                "Buffer-pool lookups that went to disk, per shard.",
                labels,
            ),
            evictions_metric: registry().counter_with(
                xst_obs::names::STORAGE_POOL_EVICTIONS_TOTAL,
                "Frames evicted by LRU pressure, per shard.",
                labels,
            ),
        }
    }
}

/// Per-shard counter snapshot (see [`BufferPool::shard_io_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups served from this shard's frames.
    pub hits: u64,
    /// Lookups this shard sent to disk.
    pub misses: u64,
    /// Frames this shard evicted.
    pub evictions: u64,
}

/// Sharded LRU buffer pool in front of a [`Storage`] disk.
///
/// Pages hash to one of N independent shards by `PageId`; each shard runs
/// its own LRU over `capacity / N` frames behind its own lock. Concurrent
/// readers touching different shards never contend. With one shard this is
/// exactly the classic single-lock global-LRU pool (several unit tests pin
/// that configuration).
pub struct BufferPool {
    storage: Storage,
    shard_capacity: usize,
    shards: Vec<Shard>,
    retry: RetryPolicy,
}

impl BufferPool {
    /// A pool holding up to `capacity` frames across
    /// [`DEFAULT_POOL_SHARDS`] shards (fewer when `capacity` is smaller).
    pub fn new(storage: Storage, capacity: usize) -> BufferPool {
        BufferPool::with_shards(storage, capacity, DEFAULT_POOL_SHARDS.min(capacity.max(1)))
    }

    /// A pool holding up to `capacity` frames across exactly `shards`
    /// shards. `shards = 1` reproduces global LRU.
    pub fn with_shards(storage: Storage, capacity: usize, shards: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        assert!(
            shards <= capacity,
            "more shards than frames leaves empty shards"
        );
        BufferPool {
            storage,
            shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(Shard::new).collect(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replace the retry policy applied to disk reads on the miss path.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> BufferPool {
        self.retry = retry;
        self
    }

    /// The retry policy this pool applies to disk reads; engines loading
    /// through the pool reuse it for their own scans.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Number of shards (for experiment reporting).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index for a page.
    fn shard_of(&self, id: PageId) -> &Shard {
        let mut hasher = DefaultHasher::new();
        id.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Fetch a page through the pool.
    pub fn get(&self, id: PageId) -> StorageResult<Arc<Page>> {
        let shard = self.shard_of(id);
        {
            let mut inner = shard.frames.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((page, last)) = inner.frames.get_mut(&id) {
                *last = tick;
                let page = Arc::clone(page);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                shard.hits_metric.inc();
                xst_obs::cost::add_pool_hit();
                return Ok(page);
            }
        }
        // Miss path: read outside the shard lock is fine for a simulator —
        // worst case we read twice; correctness is unaffected because pages
        // are immutable once written through this API. Transient disk
        // failures are absorbed here, under the pool's retry policy.
        let page = Arc::new(with_retry(&self.retry, || self.storage.read_page(id))?);
        shard.misses.fetch_add(1, Ordering::Relaxed);
        shard.misses_metric.inc();
        xst_obs::cost::add_pool_miss();
        let mut inner = shard.frames.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.frames.len() >= self.shard_capacity {
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, (_, last))| *last) {
                inner.frames.remove(&victim);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                shard.evictions_metric.inc();
            }
        }
        inner.frames.insert(id, (Arc::clone(&page), tick));
        Ok(page)
    }

    /// Drop every cached frame (keeps counters).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.frames.lock().frames.clear();
        }
    }

    /// Snapshot combined disk + pool counters, aggregated over shards.
    pub fn stats(&self) -> IoStats {
        let disk = self.storage.stats();
        let (mut hits, mut misses, mut evictions) = (0, 0, 0);
        for shard in &self.shards {
            hits += shard.hits.load(Ordering::Relaxed);
            misses += shard.misses.load(Ordering::Relaxed);
            evictions += shard.evictions.load(Ordering::Relaxed);
        }
        IoStats {
            pool_hits: hits,
            pool_misses: misses,
            pool_evictions: evictions,
            ..disk
        }
    }

    /// Publish derived pool gauges to the global registry: the aggregate
    /// hit ratio (`xst_storage_pool_hit_ratio`) and the shard count.
    /// Ratios are not counters, so exporters call this right before
    /// rendering (the shell's `.metrics` does).
    pub fn publish_metrics(&self) {
        let stats = self.stats();
        // -1 is the "no traffic yet" sentinel: an idle pool must not read
        // as a 0% hit rate, which is what a *thrashing* pool reports.
        registry()
            .gauge(
                xst_obs::names::STORAGE_POOL_HIT_RATIO,
                "Aggregate buffer-pool hit ratio over all shards (0..1; -1 before any traffic).",
            )
            .set(stats.hit_ratio().unwrap_or(-1.0));
        registry()
            .gauge(
                xst_obs::names::STORAGE_POOL_SHARDS,
                "Number of shards in the most recently published pool.",
            )
            .set(self.shards.len() as f64);
    }

    /// Per-shard `(hits, misses)` counters, in shard order — the E10
    /// experiment reports hit rates per shard to show access spread.
    pub fn shard_stats(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                (
                    s.hits.load(Ordering::Relaxed),
                    s.misses.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Per-shard `(hits, misses, evictions)` snapshots, in shard order.
    pub fn shard_io_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Zero pool and disk counters in one call — every shard's local
    /// hit/miss/eviction counters, the disk's transfer counters, and the
    /// registry series this module owns (`xst_storage_pool_…` and, via
    /// [`Storage::reset_stats`], `xst_storage_page_…`), so a reset is
    /// consistent across all three surfaces.
    pub fn reset_stats(&self) {
        self.storage.reset_stats();
        for shard in &self.shards {
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
            shard.evictions.store(0, Ordering::Relaxed);
        }
        registry().reset_prefix(xst_obs::names::STORAGE_POOL_PREFIX);
    }

    /// The underlying disk.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(payload: &[u8]) -> Page {
        let mut p = Page::new();
        p.insert(payload).unwrap();
        p
    }

    #[test]
    fn disk_counts_reads_and_writes() {
        let disk = Storage::new();
        let f = disk.create_file();
        let n = disk.append_page(f, &page_with(b"x")).unwrap();
        assert_eq!(n, 0);
        assert_eq!(disk.stats().disk_writes, 1);
        let _ = disk.read_page(PageId { file: f, page: 0 }).unwrap();
        assert_eq!(disk.stats().disk_reads, 1);
        disk.reset_stats();
        assert_eq!(disk.stats(), IoStats::default());
    }

    #[test]
    fn disk_rejects_bad_addresses() {
        let disk = Storage::new();
        let f = disk.create_file();
        assert!(disk.read_page(PageId { file: f, page: 0 }).is_err());
        assert!(disk
            .read_page(PageId {
                file: FileId(9),
                page: 0
            })
            .is_err());
        assert!(disk
            .write_page(PageId { file: f, page: 3 }, &Page::new())
            .is_err());
    }

    #[test]
    fn write_page_overwrites() {
        let disk = Storage::new();
        let f = disk.create_file();
        disk.append_page(f, &page_with(b"old")).unwrap();
        let id = PageId { file: f, page: 0 };
        disk.write_page(id, &page_with(b"new")).unwrap();
        let p = disk.read_page(id).unwrap();
        assert_eq!(p.get(0).unwrap(), b"new");
    }

    #[test]
    fn pool_hits_after_first_access() {
        let disk = Storage::new();
        let f = disk.create_file();
        disk.append_page(f, &page_with(b"x")).unwrap();
        let pool = BufferPool::new(disk, 4);
        let id = PageId { file: f, page: 0 };
        let _ = pool.get(id).unwrap();
        let _ = pool.get(id).unwrap();
        let _ = pool.get(id).unwrap();
        let s = pool.stats();
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.pool_hits, 2);
        assert_eq!(s.disk_reads, 1, "only the miss touched disk");
        assert_eq!(s.hit_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let disk = Storage::new();
        let f = disk.create_file();
        for i in 0u8..3 {
            disk.append_page(f, &page_with(&[i])).unwrap();
        }
        // One shard: this test pins classic *global* LRU order.
        let pool = BufferPool::with_shards(disk, 2, 1);
        let id = |page| PageId { file: f, page };
        pool.get(id(0)).unwrap();
        pool.get(id(1)).unwrap();
        pool.get(id(0)).unwrap(); // 0 is now most recent
        pool.get(id(2)).unwrap(); // evicts 1
        pool.reset_stats();
        pool.get(id(0)).unwrap(); // hit
        pool.get(id(1)).unwrap(); // miss (was evicted)
        let s = pool.stats();
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.pool_misses, 1);
    }

    #[test]
    fn sequential_scan_larger_than_pool_misses_every_time() {
        // The classic shape: a scan over N pages with a pool of size < N
        // has zero reuse across repeated scans (LRU worst case).
        let disk = Storage::new();
        let f = disk.create_file();
        for i in 0u8..8 {
            disk.append_page(f, &page_with(&[i])).unwrap();
        }
        // One shard: sharding would spread the scan and break the classic
        // global-LRU worst case this test demonstrates.
        let pool = BufferPool::with_shards(disk, 4, 1);
        for _round in 0..2 {
            for page in 0..8 {
                pool.get(PageId { file: f, page }).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.pool_misses, 16, "every access misses");
        assert_eq!(s.pool_hits, 0);
    }

    #[test]
    fn sharded_pool_caches_when_capacity_suffices() {
        // Capacity ≥ working set: every page sticks whatever its shard, so
        // the second round is all hits and shard counters sum to the total.
        let disk = Storage::new();
        let f = disk.create_file();
        for i in 0u8..16 {
            disk.append_page(f, &page_with(&[i])).unwrap();
        }
        let pool = BufferPool::with_shards(disk, 32, 4);
        assert_eq!(pool.shard_count(), 4);
        for _round in 0..2 {
            for page in 0..16 {
                pool.get(PageId { file: f, page }).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.pool_misses, 16);
        assert_eq!(s.pool_hits, 16);
        let per_shard = pool.shard_stats();
        assert_eq!(per_shard.iter().map(|(h, _)| h).sum::<u64>(), 16);
        assert_eq!(per_shard.iter().map(|(_, m)| m).sum::<u64>(), 16);
    }

    #[test]
    fn sharded_pool_is_safe_under_concurrent_access() {
        let disk = Storage::new();
        let f = disk.create_file();
        for i in 0u8..32 {
            disk.append_page(f, &page_with(&[i])).unwrap();
        }
        let pool = BufferPool::with_shards(disk, 16, 8);
        crossbeam::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move |_| {
                    for round in 0..8 {
                        for page in 0..32 {
                            let p = pool
                                .get(PageId {
                                    file: f,
                                    page: (page + t * round) % 32,
                                })
                                .unwrap();
                            assert!(p.slot_count() > 0);
                        }
                    }
                });
            }
        })
        .unwrap();
        let s = pool.stats();
        assert_eq!(s.pool_hits + s.pool_misses, 4 * 8 * 32);
    }

    #[test]
    fn default_pool_collapses_shards_to_capacity() {
        let disk = Storage::new();
        let pool = BufferPool::new(disk, 2);
        assert_eq!(pool.shard_count(), 2, "capacity caps the shard count");
    }

    #[test]
    fn write_page_at_appends_then_overwrites() {
        let disk = Storage::new();
        let f = disk.create_file();
        assert_eq!(disk.write_page_at(f, 0, &page_with(b"first")).unwrap(), 0);
        assert_eq!(disk.write_page_at(f, 1, &page_with(b"second")).unwrap(), 1);
        disk.write_page_at(f, 0, &page_with(b"patched")).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 2);
        let p = disk.read_page(PageId { file: f, page: 0 }).unwrap();
        assert_eq!(p.get(0).unwrap(), b"patched");
        // A gap is an address error, not an implicit extension.
        assert!(matches!(
            disk.write_page_at(f, 5, &Page::new()),
            Err(StorageError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn torn_append_persists_a_partial_frame() {
        use crate::fault::{FaultKind, FaultSchedule};
        let disk = Storage::new();
        let f = disk.create_file();
        let plan = FaultPlan::new(FaultSchedule::AtSite(0), FaultKind::TornWrite(10));
        disk.install_faults(&plan);
        let err = disk.append_page(f, &page_with(b"doomed")).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        // The partial page IS on disk — damaged: depending on how much of
        // the slot directory survived it either fails to parse or parses
        // with a zeroed payload region, but never yields the record.
        assert_eq!(disk.page_count(f).unwrap(), 1);
        if let Ok(p) = disk.read_page(PageId { file: f, page: 0 }) {
            assert_ne!(p.get(0).ok(), Some(&b"doomed"[..]), "payload survived");
        }
        // Retrying the same target overwrites the garbage in place.
        disk.write_page_at(f, 0, &page_with(b"retried")).unwrap();
        let p = disk.read_page(PageId { file: f, page: 0 }).unwrap();
        assert_eq!(p.get(0).unwrap(), b"retried");
        assert_eq!(disk.page_count(f).unwrap(), 1, "no duplicate page");
        disk.clear_faults();
    }

    #[test]
    fn write_fail_persists_nothing() {
        use crate::fault::{FaultKind, FaultSchedule};
        let disk = Storage::new();
        let f = disk.create_file();
        let plan = FaultPlan::new(FaultSchedule::AtSite(0), FaultKind::WriteFail);
        disk.install_faults(&plan);
        assert!(disk.append_page(f, &page_with(b"x")).is_err());
        assert_eq!(disk.page_count(f).unwrap(), 0);
        disk.clear_faults();
        disk.append_page(f, &page_with(b"x")).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 1);
    }

    #[test]
    fn short_and_transient_reads_surface_as_typed_errors() {
        use crate::fault::{FaultKind, FaultSchedule};
        let disk = Storage::new();
        let f = disk.create_file();
        disk.append_page(f, &page_with(b"x")).unwrap();
        let id = PageId { file: f, page: 0 };
        let plan = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::ShortRead(100));
        disk.install_faults(&plan);
        assert!(matches!(disk.read_page(id), Err(StorageError::Io { .. })));
        let plan = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::Transient);
        disk.install_faults(&plan);
        assert!(disk.read_page(id).unwrap_err().is_transient());
        assert!(disk.read_page_range(f, 0, 1).unwrap_err().is_transient());
        disk.clear_faults();
        assert_eq!(disk.read_page(id).unwrap().get(0).unwrap(), b"x");
    }

    #[test]
    fn pool_retry_absorbs_transient_read_faults() {
        use crate::fault::{FaultKind, FaultSchedule};
        let disk = Storage::new();
        let f = disk.create_file();
        disk.append_page(f, &page_with(b"x")).unwrap();
        // The first read faults transiently; its retry lands on site 1,
        // which is clean.
        let plan = FaultPlan::new(FaultSchedule::AtSite(0), FaultKind::Transient);
        disk.install_faults(&plan);
        let pool = BufferPool::new(disk.clone(), 4).with_retry_policy(RetryPolicy::default());
        let p = pool.get(PageId { file: f, page: 0 }).unwrap();
        assert_eq!(p.get(0).unwrap(), b"x");
        assert_eq!(plan.injected_count(), 1);
        // With retries disabled the same fault surfaces.
        let bare = BufferPool::new(disk.clone(), 4).with_retry_policy(RetryPolicy::none());
        bare.clear();
        disk.install_faults(&FaultPlan::new(
            FaultSchedule::EveryNth(1),
            FaultKind::Transient,
        ));
        assert!(bare.get(PageId { file: f, page: 0 }).is_err());
        disk.clear_faults();
    }

    #[test]
    fn clear_empties_the_pool() {
        let disk = Storage::new();
        let f = disk.create_file();
        disk.append_page(f, &page_with(b"x")).unwrap();
        let pool = BufferPool::new(disk, 4);
        let id = PageId { file: f, page: 0 };
        pool.get(id).unwrap();
        pool.clear();
        pool.reset_stats();
        pool.get(id).unwrap();
        assert_eq!(pool.stats().pool_misses, 1);
    }
}
