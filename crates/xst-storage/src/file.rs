//! Heap files: sequences of slotted pages holding encoded records.
//!
//! A [`HeapFile`] owns a file on the simulated disk and tracks the page
//! currently being filled. Scans go through a [`BufferPool`] so experiments
//! can observe the page-transfer cost of each access strategy.

use crate::bufpool::{BufferPool, FileId, PageId, Storage};
use crate::error::StorageResult;
use crate::page::Page;
use crate::record::Record;
use crate::retry::{with_retry, RetryPolicy};

/// Address of a record inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page number within the file.
    pub page: usize,
    /// Slot within the page.
    pub slot: usize,
}

/// A heap file of records.
pub struct HeapFile {
    storage: Storage,
    file: FileId,
    /// Page being filled (not yet flushed).
    tail: Page,
    /// Pages flushed to disk so far, tracked locally: page numbering never
    /// takes the storage lock, and `RecordId`s stay stable across flushes
    /// by construction.
    flushed_pages: usize,
    records: usize,
    retry: RetryPolicy,
}

impl HeapFile {
    /// Create a fresh heap file on `storage`.
    pub fn create(storage: &Storage) -> HeapFile {
        HeapFile {
            storage: storage.clone(),
            file: storage.create_file(),
            tail: Page::new(),
            flushed_pages: 0,
            records: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// Replace the retry policy applied to tail-page flushes.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The disk file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Records appended so far.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Append one record, returning its address.
    pub fn append(&mut self, record: &Record) -> StorageResult<RecordId> {
        let payload = record.encode();
        if !self.tail.fits(&payload) {
            self.flush_tail()?;
        }
        let slot = self.tail.insert(&payload)?;
        self.records += 1;
        Ok(RecordId {
            page: self.flushed_pages,
            slot,
        })
    }

    /// Append many records.
    pub fn append_all<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a Record>,
    ) -> StorageResult<Vec<RecordId>> {
        records.into_iter().map(|r| self.append(r)).collect()
    }

    fn flush_tail(&mut self) -> StorageResult<()> {
        if self.tail.slot_count() > 0 {
            // Write *at* the target index rather than appending: if an
            // earlier attempt tore (partial frame persisted) the retry
            // overwrites the garbage in place instead of duplicating it.
            let (storage, file, target, tail) =
                (&self.storage, self.file, self.flushed_pages, &self.tail);
            with_retry(&self.retry, || storage.write_page_at(file, target, tail))?;
            self.flushed_pages += 1;
            self.tail = Page::new();
        }
        Ok(())
    }

    /// Flush the partially-filled tail page to disk.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.flush_tail()
    }

    /// Total pages, counting the unflushed tail if non-empty.
    pub fn page_count(&self) -> StorageResult<usize> {
        Ok(self.flushed_pages + usize::from(self.tail.slot_count() > 0))
    }

    /// Read one flushed page directly from the disk, bypassing any pool
    /// (counts a disk read). Used by the parallel loader, whose threads
    /// each own a disjoint page range.
    pub fn read_page_direct(&self, page: usize) -> StorageResult<Page> {
        self.storage.read_page(PageId {
            file: self.file,
            page,
        })
    }

    /// Read a contiguous flushed-page range `[lo, hi)` directly from the
    /// disk under one lock acquisition (counts `hi - lo` disk reads).
    pub fn read_page_range_direct(&self, lo: usize, hi: usize) -> StorageResult<Vec<Page>> {
        self.storage.read_page_range(self.file, lo, hi)
    }

    /// Number of *flushed* pages (excludes the in-memory tail).
    pub fn flushed_page_count(&self) -> StorageResult<usize> {
        Ok(self.flushed_pages)
    }

    /// Decode the records still sitting in the unflushed tail page.
    pub fn tail_records(&self) -> StorageResult<Vec<Record>> {
        self.tail.iter().map(Record::decode).collect()
    }

    /// Fetch one record by address through the pool.
    pub fn get(&self, pool: &BufferPool, rid: RecordId) -> StorageResult<Record> {
        let flushed = self.flushed_pages;
        if rid.page == flushed {
            return Record::decode(self.tail.get(rid.slot)?);
        }
        let page = pool.get(PageId {
            file: self.file,
            page: rid.page,
        })?;
        Record::decode(page.get(rid.slot)?)
    }

    /// Scan every record through the pool, calling `f(rid, record)`.
    pub fn scan(
        &self,
        pool: &BufferPool,
        mut f: impl FnMut(RecordId, Record) -> StorageResult<()>,
    ) -> StorageResult<()> {
        let flushed = self.flushed_pages;
        for page_no in 0..flushed {
            let page = pool.get(PageId {
                file: self.file,
                page: page_no,
            })?;
            for (slot, payload) in page.iter().enumerate() {
                f(
                    RecordId {
                        page: page_no,
                        slot,
                    },
                    Record::decode(payload)?,
                )?;
            }
        }
        for (slot, payload) in self.tail.iter().enumerate() {
            f(
                RecordId {
                    page: flushed,
                    slot,
                },
                Record::decode(payload)?,
            )?;
        }
        Ok(())
    }

    /// Scan a specific subset of pages (used by index-driven access).
    pub fn scan_pages(
        &self,
        pool: &BufferPool,
        pages: &[usize],
        mut f: impl FnMut(RecordId, Record) -> StorageResult<()>,
    ) -> StorageResult<()> {
        let flushed = self.flushed_pages;
        for &page_no in pages {
            if page_no == flushed {
                for (slot, payload) in self.tail.iter().enumerate() {
                    f(
                        RecordId {
                            page: flushed,
                            slot,
                        },
                        Record::decode(payload)?,
                    )?;
                }
                continue;
            }
            let page = pool.get(PageId {
                file: self.file,
                page: page_no,
            })?;
            for (slot, payload) in page.iter().enumerate() {
                f(
                    RecordId {
                        page: page_no,
                        slot,
                    },
                    Record::decode(payload)?,
                )?;
            }
        }
        Ok(())
    }

    /// Collect every record (convenience for tests and small files).
    pub fn read_all(&self, pool: &BufferPool) -> StorageResult<Vec<Record>> {
        let mut out = Vec::with_capacity(self.records);
        self.scan(pool, |_, r| {
            out.push(r);
            Ok(())
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xst_core::Value;

    fn record(i: i64) -> Record {
        Record::new([
            Value::Int(i),
            Value::str(format!("name-{i}")),
            Value::Int(i % 10),
        ])
    }

    fn setup(n: i64) -> (Storage, HeapFile) {
        let storage = Storage::new();
        let mut file = HeapFile::create(&storage);
        for i in 0..n {
            file.append(&record(i)).unwrap();
        }
        (storage, file)
    }

    #[test]
    fn append_and_get() {
        let (storage, mut file) = setup(0);
        let rid = file.append(&record(1)).unwrap();
        let pool = BufferPool::new(storage, 4);
        assert_eq!(file.get(&pool, rid).unwrap(), record(1));
    }

    #[test]
    fn records_spill_across_pages() {
        let (_, file) = setup(500);
        assert!(file.page_count().unwrap() > 1, "500 records need >1 page");
        assert_eq!(file.record_count(), 500);
    }

    #[test]
    fn scan_sees_everything_in_order() {
        let (storage, file) = setup(300);
        let pool = BufferPool::new(storage, 4);
        let all = file.read_all(&pool).unwrap();
        assert_eq!(all.len(), 300);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.get(0), Some(&Value::Int(i as i64)));
        }
    }

    #[test]
    fn scan_includes_unflushed_tail() {
        let (storage, file) = setup(3); // all three fit in the tail page
        assert_eq!(file.page_count().unwrap(), 1);
        let pool = BufferPool::new(storage.clone(), 4);
        assert_eq!(file.read_all(&pool).unwrap().len(), 3);
        // And no disk read happened: the tail never hit the disk.
        assert_eq!(storage.stats().disk_reads, 0);
    }

    #[test]
    fn sync_flushes_tail() {
        let (storage, mut file) = setup(3);
        file.sync().unwrap();
        assert_eq!(storage.page_count(file.file_id()).unwrap(), 1);
        let pool = BufferPool::new(storage, 4);
        assert_eq!(file.read_all(&pool).unwrap().len(), 3);
    }

    #[test]
    fn scan_io_cost_equals_page_count() {
        let (storage, mut file) = setup(1000);
        file.sync().unwrap();
        let pages = file.page_count().unwrap();
        let pool = BufferPool::new(storage, 2);
        pool.reset_stats();
        let _ = file.read_all(&pool).unwrap();
        assert_eq!(pool.stats().disk_reads as usize, pages);
    }

    #[test]
    fn scan_pages_reads_only_requested() {
        let (storage, mut file) = setup(1000);
        file.sync().unwrap();
        let pool = BufferPool::new(storage, 2);
        pool.reset_stats();
        let mut seen = 0;
        file.scan_pages(&pool, &[0], |_, _| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert!(seen > 0);
        assert_eq!(pool.stats().disk_reads, 1);
    }

    #[test]
    fn record_ids_stable_across_flushes() {
        // An address handed out at append time must still resolve to the
        // same record after any number of later flushes: page numbering is
        // tracked locally, never re-derived from the disk.
        let storage = Storage::new();
        let mut file = HeapFile::create(&storage);
        let mut rids = Vec::new();
        for i in 0..120 {
            rids.push((i, file.append(&record(i)).unwrap()));
            if i % 40 == 39 {
                file.sync().unwrap(); // force a flush mid-stream
            }
        }
        file.sync().unwrap();
        let pool = BufferPool::new(storage, 8);
        for (i, rid) in &rids {
            assert_eq!(file.get(&pool, *rid).unwrap(), record(*i), "rid {rid:?}");
        }
        // Interior pages got distinct numbers in flush order.
        assert!(rids.last().unwrap().1.page > rids[0].1.page);
    }

    #[test]
    fn torn_flush_is_repaired_by_retry() {
        use crate::fault::{FaultKind, FaultPlan, FaultSchedule};
        use crate::retry::RetryPolicy;
        let storage = Storage::new();
        let mut file = HeapFile::create(&storage);
        file.set_retry_policy(RetryPolicy::new(3, 10, 1000));
        for i in 0..3 {
            file.append(&record(i)).unwrap();
        }
        // First flush write is transient; the retry must land the page at
        // the SAME index, not append a duplicate.
        let plan = FaultPlan::new(FaultSchedule::AtSite(0), FaultKind::Transient);
        storage.install_faults(&plan);
        file.sync().unwrap();
        storage.clear_faults();
        assert_eq!(storage.page_count(file.file_id()).unwrap(), 1);
        let pool = BufferPool::new(storage, 4);
        assert_eq!(file.read_all(&pool).unwrap().len(), 3);
    }

    #[test]
    fn get_by_rid_roundtrips_for_all() {
        let storage = Storage::new();
        let mut file = HeapFile::create(&storage);
        let rids: Vec<RecordId> = (0..200).map(|i| file.append(&record(i)).unwrap()).collect();
        let pool = BufferPool::new(storage, 8);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(
                file.get(&pool, *rid).unwrap(),
                record(i as i64),
                "rid {rid:?}"
            );
        }
    }
}
