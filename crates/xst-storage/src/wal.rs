//! Write-ahead logging, group commit, and crash recovery.
//!
//! A [`HeapFile`](crate::file::HeapFile) keeps its tail page in memory until it fills; a crash
//! (process death, simulated here by dropping the handle) would lose those
//! records. [`LoggedTable`] stages every record into the log and
//! acknowledges an append only after the log *flushed* — one flush per
//! batch ([`LoggedTable::append_batch`]), the group-commit discipline. The
//! durability contract is exact:
//!
//! > **acknowledged ⇒ recoverable, unacknowledged ⇒ atomically absent.**
//!
//! [`LoggedTable::recover`] rebuilds a table from the surviving disk and
//! log, and the fault-injection harness (`xst-testkit`) checks the
//! contract at every enumerable crash site.
//!
//! Log frame layout (little-endian):
//!
//! ```text
//! len:u32 | crc32(len):u32 | payload (encoded record) | crc32(payload):u32
//! ```
//!
//! The length field carries its own checksum: a bit-flipped length can no
//! longer masquerade as a torn tail and silently swallow every later
//! record — garbage lengths are detected as corruption, while a genuinely
//! torn tail (incomplete final frame) still stops replay cleanly.
//!
//! Every successful flush seals its record frames with an 8-byte *commit
//! marker* (`len = u32::MAX | crc32(len)`, no payload). Replay buffers
//! frames and commits them only at a marker, so a torn flush that managed
//! to persist whole record frames — but not the trailing marker — leaves
//! the unacknowledged batch atomically absent instead of resurrecting it.
//!
//! The checkpoint position is a control record held *next to* the byte
//! stream (as a real system keeps it in a separately-fsynced control
//! file): [`Wal::checkpoint_mark`] atomically records how many heap pages
//! were durable at checkpoint time and truncates the log.

use crate::bufpool::{FileId, PageId, Storage};
use crate::engine::Table;
use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultPlan, Injection, SiteClass};
use crate::record::{Record, Schema};
use crate::retry::{with_retry, RetryPolicy};
use crate::snapshot::crc32;
use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use xst_obs::{registry, Counter, Histogram};

/// Bytes of framing around each payload: `len + crc32(len)` before,
/// `crc32(payload)` after.
const FRAME_OVERHEAD: usize = 12;

/// Sentinel length of a commit-marker frame. A real payload can never be
/// this long (the log itself would overflow first), so the value doubles
/// as the frame-type tag.
const MARKER_LEN: u32 = u32::MAX;

/// A commit marker is a bare header: sentinel length + its checksum.
const MARKER_SIZE: usize = 8;

fn wal_append_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::STORAGE_WAL_APPEND_NS,
            "Latency of staging one WAL frame (length + header crc + payload + crc).",
        )
    })
}

fn wal_fsync_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            xst_obs::names::STORAGE_WAL_FSYNC_NS,
            "Latency of one WAL flush (the fsync-equivalent commit point).",
        )
    })
}

fn wal_appends_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_WAL_APPENDS_TOTAL,
            "Records staged into the write-ahead log.",
        )
    })
}

fn wal_bytes_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_WAL_BYTES_TOTAL,
            "Payload bytes staged into the write-ahead log (framing excluded).",
        )
    })
}

fn group_commits_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_WAL_GROUP_COMMITS_TOTAL,
            "Batches acknowledged by a single WAL flush (group commit).",
        )
    })
}

fn group_commit_records_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            xst_obs::names::STORAGE_WAL_GROUP_COMMIT_RECORDS_TOTAL,
            "Records acknowledged through group commit.",
        )
    })
}

/// The checkpoint control record: how much of the heap file was durable
/// when the log was last truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// The heap file the checkpoint covers.
    pub file: FileId,
    /// Pages of that file that were flushed and fsynced at mark time.
    pub pages: usize,
}

#[derive(Default)]
struct WalInner {
    /// Bytes that survive a crash.
    durable: BytesMut,
    /// Frames appended but not yet flushed; process death loses them.
    staged: BytesMut,
    /// `durable.len()` as of the last successful flush — the tail beyond
    /// it is a torn in-flight flush, repaired before the next transfer.
    committed: usize,
    checkpoint: Option<Checkpoint>,
    faults: Option<FaultPlan>,
}

/// A shared, append-only log living outside the page store (as a real WAL
/// lives on a separate device).
#[derive(Clone, Default)]
pub struct Wal {
    inner: Arc<Mutex<WalInner>>,
}

impl Wal {
    /// Fresh empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Install a fault-injection plan: every flush and checkpoint mark
    /// becomes a numbered fault site. Share one plan between a `Wal` and a
    /// [`Storage`] to number all I/O in one global execution order.
    pub fn install_faults(&self, plan: &FaultPlan) {
        self.inner.lock().faults = Some(plan.clone());
    }

    /// Remove the installed fault plan, if any.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Stage one record payload without flushing. Staged frames are not
    /// durable — and not visible to [`Wal::records`] — until [`Wal::sync`]
    /// succeeds.
    // lint: unnumbered-io: staging fills a volatile buffer — bytes only hit the device in sync(), which claims the fault site
    pub fn append_staged(&self, payload: &[u8]) {
        let timer = xst_obs::enabled().then(Instant::now);
        let len = (payload.len() as u32).to_le_bytes();
        let mut inner = self.inner.lock();
        inner.staged.put_slice(&len);
        inner.staged.put_u32_le(crc32(&len));
        inner.staged.put_slice(payload);
        inner.staged.put_u32_le(crc32(payload));
        drop(inner);
        if let Some(t) = timer {
            wal_append_hist().observe_since(t);
            wal_appends_total().inc();
            wal_bytes_total().add(payload.len() as u64);
            xst_obs::cost::add_wal_append();
        }
    }

    /// Flush staged frames to durable storage — the fsync-equivalent
    /// commit point, and one fault site. On success everything staged is
    /// durable, sealed by one commit marker; on a torn flush a *strict
    /// prefix* of the flush persists (power-cut shape) but stays
    /// uncommitted — the marker never lands, so replay drops the partial
    /// batch and the next flush repairs the tail in place.
    pub fn sync(&self) -> StorageResult<()> {
        let timer = xst_obs::enabled().then(Instant::now);
        let mut inner = self.inner.lock();
        // Repair first: drop any torn tail a failed flush left behind.
        let committed = inner.committed;
        inner.durable.truncate(committed);
        let mut to_flush = inner.staged.to_vec();
        if !to_flush.is_empty() {
            let len_bytes = MARKER_LEN.to_le_bytes();
            to_flush.extend_from_slice(&len_bytes);
            to_flush.extend_from_slice(&crc32(&len_bytes).to_le_bytes());
        }
        match inner.faults.as_ref().and_then(|p| p.check(SiteClass::Sync)) {
            Some(Injection::Transient) => {
                return Err(StorageError::Transient {
                    op: "wal.sync".into(),
                })
            }
            Some(Injection::Torn(n)) => {
                // A torn flush by definition did not finish: at most
                // all-but-one byte persists, so the commit marker is
                // always incomplete and the batch stays unacknowledged.
                let keep = n.min(to_flush.len().saturating_sub(1));
                inner.durable.put_slice(&to_flush[..keep]);
                return Err(StorageError::Io {
                    op: "wal.sync".into(),
                    reason: format!("torn flush: {keep} bytes reached the log"),
                });
            }
            Some(_) => {
                return Err(StorageError::Io {
                    op: "wal.sync".into(),
                    reason: "flush failed".into(),
                })
            }
            None => {}
        }
        inner.staged.clear();
        inner.durable.put_slice(&to_flush);
        inner.committed = inner.durable.len();
        drop(inner);
        if let Some(t) = timer {
            wal_fsync_hist().observe_since(t);
            xst_obs::cost::add_wal_fsync();
        }
        Ok(())
    }

    /// Stage and flush one payload — the non-batched convenience path.
    pub fn append(&self, payload: &[u8]) -> StorageResult<()> {
        self.append_staged(payload);
        self.sync()
    }

    /// Discard staged-but-unflushed frames. This is what process death
    /// does to them, and what [`LoggedTable`] does after a failed flush so
    /// no later flush can resurrect an unacknowledged batch.
    // lint: unnumbered-io: clears the volatile staging buffer — models process death, which no fault site can interrupt
    pub fn drop_staged(&self) {
        self.inner.lock().staged.clear();
    }

    /// Bytes staged but not yet flushed.
    // lint: unnumbered-io: length accessor on the volatile staging buffer, no device bytes move
    pub fn staged_len(&self) -> usize {
        self.inner.lock().staged.len()
    }

    /// Total durable log bytes.
    // lint: unnumbered-io: length accessor — reads no log bytes, so a crash here loses nothing
    pub fn len(&self) -> usize {
        self.inner.lock().durable.len()
    }

    /// True iff nothing durable has been logged.
    // lint: unnumbered-io: emptiness accessor — reads no log bytes, so a crash here loses nothing
    pub fn is_empty(&self) -> bool {
        self.inner.lock().durable.is_empty()
    }

    /// Decode every durable *committed* record, verifying checksums.
    /// Frames are buffered and only released by the commit marker that
    /// sealed their flush, so a torn final flush — whether it cut a frame
    /// mid-payload or persisted whole frames without the marker — stops
    /// the replay at the last acknowledged batch, like a real recovery
    /// scan. A corrupt *middle* record — payload damage or a garbage
    /// length field — is an error, never a silent truncation.
    // lint: unnumbered-io: recovery replay runs fault-free by design — the sweeps crash the writes that produced these bytes, not the scan that reads them back
    pub fn records(&self) -> StorageResult<Vec<Record>> {
        let inner = self.inner.lock();
        let mut slice: &[u8] = &inner.durable;
        let mut out = Vec::new();
        let mut pending = Vec::new();
        while !slice.is_empty() {
            if slice.len() < MARKER_SIZE {
                break; // torn frame header
            }
            let len_bytes = [slice[0], slice[1], slice[2], slice[3]];
            let header_crc = (&slice[4..8]).get_u32_le();
            if crc32(&len_bytes) != header_crc {
                // Without this check a corrupted length that overruns the
                // buffer would read as "torn tail" and drop every record
                // after it — the contract violation this frame fixes.
                return Err(StorageError::Corrupt {
                    reason: "wal frame length checksum mismatch".into(),
                });
            }
            let len = u32::from_le_bytes(len_bytes);
            if len == MARKER_LEN {
                // Commit marker: everything buffered since the previous
                // marker was acknowledged by one flush.
                out.append(&mut pending);
                slice.advance(MARKER_SIZE);
                continue;
            }
            let len = len as usize;
            if slice.len() < FRAME_OVERHEAD + len {
                break; // torn payload: the final flush didn't finish
            }
            let payload = &slice[8..8 + len];
            let stored_crc = (&slice[8 + len..8 + len + 4]).get_u32_le();
            if crc32(payload) != stored_crc {
                return Err(StorageError::Corrupt {
                    reason: "wal record checksum mismatch".into(),
                });
            }
            pending.push(Record::decode(payload)?);
            slice.advance(FRAME_OVERHEAD + len);
        }
        // `pending` holds frames of a flush whose marker never landed: an
        // unacknowledged batch, deliberately dropped.
        Ok(out)
    }

    /// Simulate media corruption: XOR `mask` into the durable byte at
    /// `offset`. Unlike a torn tail this damages the *middle* of the log,
    /// which replay must report as corruption, never silently truncate.
    // lint: unnumbered-io: test-only media-corruption injector — it IS the fault, not an operation a fault could interrupt
    pub fn flip_byte(&self, offset: usize, mask: u8) {
        let mut inner = self.inner.lock();
        if let Some(b) = inner.durable.get_mut(offset) {
            *b ^= mask;
        }
    }

    /// Simulate a torn tail: drop the final `n` durable bytes.
    // lint: unnumbered-io: test-only torn-write injector — it IS the fault, not an operation a fault could interrupt
    pub fn tear(&self, n: usize) {
        let mut inner = self.inner.lock();
        let keep = inner.durable.len().saturating_sub(n);
        inner.durable.truncate(keep);
        inner.committed = inner.committed.min(keep);
    }

    /// Wipe the log completely (durable bytes, staged bytes, checkpoint).
    // lint: unnumbered-io: test-harness wipe that models a fresh disk; nothing durable exists afterwards for a fault to bite
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.durable.clear();
        inner.staged.clear();
        inner.committed = 0;
        inner.checkpoint = None;
    }

    /// Atomically record a checkpoint — `pages` pages of `file` are
    /// durable — and truncate the log. One fault site, all-or-nothing like
    /// the control-file rename it models: on failure the mark *and* the
    /// log bytes are unchanged.
    pub fn checkpoint_mark(&self, file: FileId, pages: usize) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        match inner.faults.as_ref().and_then(|p| p.check(SiteClass::Sync)) {
            Some(Injection::Transient) => {
                return Err(StorageError::Transient {
                    op: "wal.checkpoint_mark".into(),
                })
            }
            Some(_) => {
                return Err(StorageError::Io {
                    op: "wal.checkpoint_mark".into(),
                    reason: "checkpoint mark failed".into(),
                })
            }
            None => {}
        }
        inner.durable.clear();
        inner.staged.clear();
        inner.committed = 0;
        inner.checkpoint = Some(Checkpoint { file, pages });
        Ok(())
    }

    /// The last successfully recorded checkpoint, if any.
    // lint: unnumbered-io: checkpoint metadata accessor — the mark itself is written by checkpoint_mark under a numbered site
    pub fn checkpoint(&self) -> Option<Checkpoint> {
        self.inner.lock().checkpoint
    }
}

/// A table whose appends are write-ahead logged and group-committed.
pub struct LoggedTable {
    /// The underlying table.
    pub table: Table,
    wal: Wal,
    retry: RetryPolicy,
    wedged: bool,
}

impl LoggedTable {
    /// Create a logged table.
    pub fn create(storage: &Storage, schema: Schema, wal: Wal) -> LoggedTable {
        LoggedTable {
            table: Table::create(storage, schema),
            wal,
            retry: RetryPolicy::default(),
            wedged: false,
        }
    }

    /// Replace the retry policy for WAL flushes, checkpoint marks, and the
    /// heap flushes underneath.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> LoggedTable {
        self.retry = retry;
        self.table.file.set_retry_policy(retry);
        self
    }

    /// Append one record: a batch of one.
    pub fn append(&mut self, record: &Record) -> StorageResult<()> {
        self.append_batch(std::slice::from_ref(record)).map(|_| ())
    }

    /// Group commit: stage every record, acknowledge the whole batch with
    /// ONE log flush, then apply to the heap. The contract:
    ///
    /// * `Ok(n)` ⇒ all `n` records are durable in the log — a crash at any
    ///   later point recovers them;
    /// * `Err(_)` ⇒ *no* record of the batch is durable — the staged
    ///   frames are discarded, so they are atomically absent after any
    ///   crash or any later successful commit.
    ///
    /// A post-acknowledge heap failure cannot revoke the acknowledgment
    /// (the records are already durable); it wedges the handle instead,
    /// and every later call fails with
    /// [`StorageError::NeedsRecovery`] until [`LoggedTable::recover`].
    pub fn append_batch(&mut self, records: &[Record]) -> StorageResult<usize> {
        self.check_wedged()?;
        for r in records {
            r.conforms(&self.table.schema)?;
        }
        if records.is_empty() {
            return Ok(0);
        }
        for r in records {
            self.wal.append_staged(&r.encode());
        }
        // The commit point: one flush acknowledges the whole batch.
        if let Err(e) = with_retry(&self.retry, || self.wal.sync()) {
            self.wal.drop_staged();
            return Err(e);
        }
        group_commits_total().inc();
        group_commit_records_total().add(records.len() as u64);
        // Acknowledged: apply to the heap. Failure past the commit point
        // wedges the handle — the records stay recoverable from the log.
        for r in records {
            if self.table.file.append(r).is_err() {
                self.wedged = true;
                break;
            }
        }
        Ok(records.len())
    }

    /// Checkpoint: flush the heap's tail page, then atomically mark the
    /// covered page count and truncate the log. On failure the old
    /// checkpoint still stands and the log still covers everything after
    /// it — a failed checkpoint never loses acknowledged records.
    pub fn checkpoint(&mut self) -> StorageResult<()> {
        self.check_wedged()?;
        self.table.file.sync()?;
        let file = self.table.file.file_id();
        let pages = self.table.file.flushed_page_count()?;
        with_retry(&self.retry, || self.wal.checkpoint_mark(file, pages))
    }

    /// True iff a post-acknowledge heap failure wedged this handle; only
    /// [`LoggedTable::recover`] gets the data back into a usable table.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    fn check_wedged(&self) -> StorageResult<()> {
        if self.wedged {
            return Err(StorageError::NeedsRecovery {
                reason: "acknowledged records were not applied to the heap; \
                         recover from the write-ahead log"
                    .into(),
            });
        }
        Ok(())
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Recover after a crash: read the heap pages the last checkpoint
    /// vouches for (the mark is written only after those pages were
    /// durable, so they are never torn), then replay the log — which holds
    /// every record acknowledged since that checkpoint. Heap pages flushed
    /// *after* the mark duplicate log records and are deliberately
    /// ignored. Ends with a checkpoint of the rebuilt table, so the result
    /// is immediately durable.
    pub fn recover(storage: &Storage, schema: Schema, wal: Wal) -> StorageResult<LoggedTable> {
        LoggedTable::recover_onto(storage, schema, wal, Wal::new())
    }

    /// [`LoggedTable::recover`], but the rebuilt table continues logging
    /// into the caller-supplied `fresh` WAL instead of a private new one —
    /// so the caller can keep injecting faults into (or inspecting) the
    /// post-recovery log. The crashed `wal` is only read.
    pub fn recover_onto(
        storage: &Storage,
        schema: Schema,
        wal: Wal,
        fresh: Wal,
    ) -> StorageResult<LoggedTable> {
        let mark = wal.checkpoint();
        let logged = wal.records()?;
        let mut out = LoggedTable::create(storage, schema, fresh);
        if let Some(cp) = mark {
            for page_no in 0..cp.pages {
                let page = storage.read_page(PageId {
                    file: cp.file,
                    page: page_no,
                })?;
                for payload in page.iter() {
                    out.table.file.append(&Record::decode(payload)?)?;
                }
            }
        }
        for r in &logged {
            out.table.file.append(r)?;
        }
        out.checkpoint()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::BufferPool;
    use crate::fault::{FaultKind, FaultSchedule};
    use xst_core::Value;

    fn rec(i: i64) -> Record {
        Record::new([Value::Int(i), Value::str(format!("r{i}"))])
    }

    #[test]
    fn wal_roundtrip() {
        let wal = Wal::new();
        assert!(wal.is_empty());
        for i in 0..10 {
            wal.append(&rec(i).encode()).unwrap();
        }
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[3], rec(3));
        assert!(!wal.is_empty());
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let wal = Wal::new();
        wal.append(&rec(1).encode()).unwrap();
        wal.append(&rec(2).encode()).unwrap();
        wal.tear(3); // rip into the last record
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 1, "intact prefix only");
        assert_eq!(records[0], rec(1));
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let wal = Wal::new();
        wal.append(&rec(1).encode()).unwrap();
        wal.append(&rec(2).encode()).unwrap();
        // Flip a byte inside the FIRST record's payload.
        {
            let mut inner = wal.inner.lock();
            inner.durable[10] ^= 0xFF;
        }
        assert!(matches!(wal.records(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn corrupt_length_field_is_an_error_not_a_torn_tail() {
        // The satellite-bug regression: before the header CRC, flipping a
        // high bit of a mid-log length field made the frame "overrun the
        // buffer", which the replay scan treated as a torn tail — silently
        // dropping this record AND every one after it. It must be a
        // corruption error.
        let wal = Wal::new();
        for i in 0..4 {
            wal.append(&rec(i).encode()).unwrap();
        }
        let second_frame = {
            let inner = wal.inner.lock();
            let first_len = u32::from_le_bytes([
                inner.durable[0],
                inner.durable[1],
                inner.durable[2],
                inner.durable[3],
            ]) as usize;
            // Skip the first record frame AND the commit marker its flush
            // sealed it with.
            FRAME_OVERHEAD + first_len + MARKER_SIZE
        };
        {
            let mut inner = wal.inner.lock();
            // Most-significant length byte of the SECOND frame: the bogus
            // length now points far past the end of the log.
            inner.durable[second_frame + 3] ^= 0x80;
        }
        match wal.records() {
            Err(StorageError::Corrupt { reason }) => {
                assert!(reason.contains("length"), "{reason}")
            }
            other => panic!("bit-flipped length must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn staged_frames_are_invisible_until_sync() {
        let wal = Wal::new();
        wal.append_staged(&rec(1).encode());
        assert!(wal.is_empty(), "staged ≠ durable");
        assert_eq!(wal.records().unwrap().len(), 0);
        assert!(wal.staged_len() > 0);
        wal.sync().unwrap();
        assert_eq!(wal.records().unwrap().len(), 1);
        assert_eq!(wal.staged_len(), 0);
    }

    #[test]
    fn torn_sync_is_repaired_by_the_next_flush() {
        let wal = Wal::new();
        wal.append(&rec(1).encode()).unwrap();
        let plan = FaultPlan::new(FaultSchedule::AtSite(0), FaultKind::TornWrite(5));
        wal.install_faults(&plan);
        wal.append_staged(&rec(2).encode());
        assert!(wal.sync().is_err(), "torn flush fails");
        // A 5-byte prefix of the staged frame reached the log…
        assert_eq!(wal.records().unwrap().len(), 1, "torn tail tolerated");
        // …the unacknowledged batch is dropped, and the next flush repairs
        // the tail in place.
        wal.drop_staged();
        wal.append(&rec(3).encode()).unwrap();
        let records = wal.records().unwrap();
        assert_eq!(records, vec![rec(1), rec(3)]);
    }

    #[test]
    fn whole_frames_without_a_commit_marker_are_not_replayed() {
        let wal = Wal::new();
        wal.append(&rec(1).encode()).unwrap();
        // Tear the next flush as late as possible: every record frame of
        // the batch persists intact, only the trailing commit marker is
        // cut short. The batch was never acknowledged, so replay must
        // drop it — intact CRCs and all.
        let plan = FaultPlan::new(FaultSchedule::AtSite(0), FaultKind::TornWrite(usize::MAX));
        wal.install_faults(&plan);
        wal.append_staged(&rec(2).encode());
        wal.append_staged(&rec(3).encode());
        assert!(wal.sync().is_err(), "torn flush fails");
        wal.clear_faults();
        assert_eq!(wal.records().unwrap(), vec![rec(1)], "batch absent");
    }

    #[test]
    fn crash_before_sync_loses_nothing_with_wal() {
        let storage = Storage::new();
        let wal = Wal::new();
        let schema = Schema::new(["id", "name"]);
        let mut t = LoggedTable::create(&storage, schema.clone(), wal.clone());
        for i in 0..5 {
            t.append(&rec(i)).unwrap();
        }
        // Crash: drop the handle. Nothing was flushed (5 small records fit
        // in the in-memory tail), so the disk alone has zero pages.
        let file_id = t.table.file.file_id();
        drop(t);
        assert_eq!(storage.page_count(file_id).unwrap(), 0, "tail was lost");

        // Recovery replays the log.
        let recovered = LoggedTable::recover(&storage, schema, wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        let rows = recovered.table.file.read_all(&pool).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], rec(4));
    }

    #[test]
    fn checkpoint_flushes_and_truncates() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["id", "name"]), wal.clone());
        for i in 0..5 {
            t.append(&rec(i)).unwrap();
        }
        assert!(!wal.is_empty());
        t.checkpoint().unwrap();
        assert!(wal.is_empty());
        assert!(storage.page_count(t.table.file.file_id()).unwrap() > 0);
        assert!(wal.checkpoint().is_some(), "mark records the flushed pages");
        // Appends after the checkpoint land in the fresh log.
        t.append(&rec(99)).unwrap();
        assert_eq!(wal.records().unwrap().len(), 1);
    }

    #[test]
    fn recovery_after_checkpoint_restores_everything() {
        let storage = Storage::new();
        let wal = Wal::new();
        let schema = Schema::new(["id", "name"]);
        let mut t = LoggedTable::create(&storage, schema.clone(), wal.clone());
        for i in 0..5 {
            t.append(&rec(i)).unwrap();
        }
        t.checkpoint().unwrap();
        for i in 5..8 {
            t.append(&rec(i)).unwrap();
        }
        drop(t); // crash: post-checkpoint records exist only in the log
        let recovered = LoggedTable::recover(&storage, schema, wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        let rows = recovered.table.file.read_all(&pool).unwrap();
        assert_eq!(rows, (0..8).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn group_commit_acks_the_whole_batch_with_one_flush() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["id", "name"]), wal.clone());
        let batch: Vec<Record> = (0..10).map(rec).collect();
        assert_eq!(t.append_batch(&batch).unwrap(), 10);
        assert_eq!(wal.records().unwrap().len(), 10);
        assert_eq!(t.append_batch(&[]).unwrap(), 0, "empty batch is a no-op");
    }

    #[test]
    fn failed_flush_leaves_the_batch_atomically_absent() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["id", "name"]), wal.clone())
            .with_retry_policy(RetryPolicy::none());
        t.append(&rec(0)).unwrap();
        let plan = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::SyncFail);
        wal.install_faults(&plan);
        let batch: Vec<Record> = (1..5).map(rec).collect();
        assert!(t.append_batch(&batch).is_err());
        wal.clear_faults();
        assert_eq!(wal.staged_len(), 0, "staged frames discarded");
        assert_eq!(wal.records().unwrap(), vec![rec(0)], "batch absent");
        // The handle is NOT wedged — the failure happened before the
        // commit point, so nothing was acknowledged and lost.
        assert!(!t.is_wedged());
        t.append(&rec(9)).unwrap();
        assert_eq!(wal.records().unwrap(), vec![rec(0), rec(9)]);
    }

    #[test]
    fn post_commit_heap_failure_wedges_but_keeps_the_ack() {
        let storage = Storage::new();
        let wal = Wal::new();
        let schema = Schema::new(["id", "name"]);
        let mut t = LoggedTable::create(&storage, schema.clone(), wal.clone())
            .with_retry_policy(RetryPolicy::none());
        // Fill past one page so the batch's heap apply must flush — and
        // that flush (a Write site) fails while the WAL flush (Sync site)
        // succeeded.
        let big: Vec<Record> = (0..200).map(rec).collect();
        t.append_batch(&big).unwrap();
        let plan = FaultPlan::new(FaultSchedule::EveryNth(1), FaultKind::WriteFail);
        storage.install_faults(&plan);
        let batch: Vec<Record> = (200..400).map(rec).collect();
        let acked = t.append_batch(&batch);
        storage.clear_faults();
        assert_eq!(acked.unwrap(), 200, "the flush committed: batch is acked");
        assert!(t.is_wedged());
        assert!(matches!(
            t.append(&rec(999)),
            Err(StorageError::NeedsRecovery { .. })
        ));
        assert!(matches!(
            t.checkpoint(),
            Err(StorageError::NeedsRecovery { .. })
        ));
        // Recovery gets every acknowledged record back.
        drop(t);
        let recovered = LoggedTable::recover(&storage, schema, wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        assert_eq!(recovered.table.file.read_all(&pool).unwrap().len(), 400);
    }

    #[test]
    fn failed_checkpoint_mark_keeps_the_log_intact() {
        let storage = Storage::new();
        let wal = Wal::new();
        let schema = Schema::new(["id", "name"]);
        let mut t = LoggedTable::create(&storage, schema.clone(), wal.clone())
            .with_retry_policy(RetryPolicy::none());
        for i in 0..5 {
            t.append(&rec(i)).unwrap();
        }
        // Fail the mark (Sync site) but let the tail flush (Write site)
        // through: WriteFail degrades to Fail on Sync sites, so schedule
        // the fault at the mark's site — tail flush first (site 0), then
        // the mark (site 1). Storage and WAL share the plan.
        let plan = FaultPlan::new(FaultSchedule::AtSite(1), FaultKind::SyncFail);
        storage.install_faults(&plan);
        wal.install_faults(&plan);
        assert!(t.checkpoint().is_err());
        storage.clear_faults();
        wal.clear_faults();
        assert_eq!(wal.records().unwrap().len(), 5, "log untruncated");
        assert!(wal.checkpoint().is_none(), "no mark recorded");
        drop(t);
        let recovered = LoggedTable::recover(&storage, schema, wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        assert_eq!(recovered.table.file.read_all(&pool).unwrap().len(), 5);
    }

    #[test]
    fn transient_sync_faults_are_absorbed_by_retry() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["id", "name"]), wal.clone());
        let plan = FaultPlan::new(FaultSchedule::EveryNth(2), FaultKind::Transient);
        wal.install_faults(&plan);
        for i in 0..6 {
            t.append(&rec(i)).unwrap();
        }
        wal.clear_faults();
        assert!(plan.injected_count() >= 1, "faults actually fired");
        assert_eq!(wal.records().unwrap().len(), 6, "every append acked");
    }

    #[test]
    fn schema_violations_are_rejected_before_logging() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["one"]), wal.clone());
        assert!(t.append(&rec(1)).is_err(), "arity 2 vs schema arity 1");
        assert!(wal.is_empty(), "nothing logged for a rejected append");
        assert_eq!(wal.staged_len(), 0, "nothing staged either");
    }
}
