//! Write-ahead logging for crash-consistent appends.
//!
//! A [`HeapFile`](crate::file::HeapFile) keeps its tail page in memory until it fills; a crash
//! (process death, simulated here by dropping the handle) would lose those
//! records. [`LoggedTable`] writes every record to a checksummed log
//! *before* acknowledging the append, and [`LoggedTable::recover`] replays
//! the unflushed suffix onto a fresh handle over the same disk — the
//! standard WAL discipline, scaled to the simulated substrate.
//!
//! Log record layout (little-endian):
//!
//! ```text
//! len:u32 | payload (encoded record) | crc32(payload):u32
//! ```

use crate::bufpool::Storage;
use crate::engine::Table;
use crate::error::{StorageError, StorageResult};
use crate::record::{Record, Schema};
use crate::snapshot::crc32;
use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use xst_obs::{registry, Counter, Histogram};

fn wal_append_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "xst_storage_wal_append_ns",
            "Latency of one durable WAL append (length + payload + crc).",
        )
    })
}

fn wal_fsync_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "xst_storage_wal_fsync_ns",
            "Latency of a checkpoint flush (tail-page sync + log truncation), the fsync analog.",
        )
    })
}

fn wal_appends_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            "xst_storage_wal_appends_total",
            "Records appended to the write-ahead log.",
        )
    })
}

fn wal_bytes_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            "xst_storage_wal_bytes_total",
            "Payload bytes appended to the write-ahead log (framing excluded).",
        )
    })
}

/// A shared, append-only log living outside the page store (as a real WAL
/// lives on a separate device).
#[derive(Clone, Default)]
pub struct Wal {
    buf: Arc<Mutex<BytesMut>>,
}

impl Wal {
    /// Fresh empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Append one record payload, fsync-equivalent (immediately durable in
    /// the simulation).
    pub fn append(&self, payload: &[u8]) {
        let timer = xst_obs::enabled().then(Instant::now);
        let mut buf = self.buf.lock();
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload);
        buf.put_u32_le(crc32(payload));
        drop(buf);
        if let Some(t) = timer {
            wal_append_hist().observe_since(t);
            wal_appends_total().inc();
            wal_bytes_total().add(payload.len() as u64);
        }
    }

    /// Total log bytes.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True iff nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Decode every logged record, verifying checksums. A torn/corrupt
    /// suffix stops the replay at the last intact record, like a real
    /// recovery scan; a corrupt *middle* record is an error.
    pub fn records(&self) -> StorageResult<Vec<Record>> {
        let buf = self.buf.lock();
        let mut slice: &[u8] = &buf;
        let mut out = Vec::new();
        while !slice.is_empty() {
            if slice.len() < 4 {
                break; // torn length header
            }
            let len = (&slice[..4]).get_u32_le() as usize;
            if slice.len() < 4 + len + 4 {
                break; // torn payload
            }
            let payload = &slice[4..4 + len];
            let stored_crc = (&slice[4 + len..4 + len + 4]).get_u32_le();
            if crc32(payload) != stored_crc {
                return Err(StorageError::Corrupt {
                    reason: "wal record checksum mismatch".into(),
                });
            }
            out.push(Record::decode(payload)?);
            slice.advance(4 + len + 4);
        }
        Ok(out)
    }

    /// Simulate a torn tail: drop the final `n` bytes.
    pub fn tear(&self, n: usize) {
        let mut buf = self.buf.lock();
        let keep = buf.len().saturating_sub(n);
        buf.truncate(keep);
    }

    /// Truncate the log (after a checkpoint).
    pub fn reset(&self) {
        self.buf.lock().clear();
    }
}

/// A table whose appends are write-ahead logged.
pub struct LoggedTable {
    /// The underlying table.
    pub table: Table,
    wal: Wal,
}

impl LoggedTable {
    /// Create a logged table.
    pub fn create(storage: &Storage, schema: Schema, wal: Wal) -> LoggedTable {
        LoggedTable {
            table: Table::create(storage, schema),
            wal,
        }
    }

    /// Append one record: log first, then page.
    pub fn append(&mut self, record: &Record) -> StorageResult<()> {
        record.conforms(&self.table.schema)?;
        self.wal.append(&record.encode());
        self.table.file.append(record)?;
        Ok(())
    }

    /// Checkpoint: flush the tail page and truncate the log.
    pub fn checkpoint(&mut self) -> StorageResult<()> {
        let timer = xst_obs::enabled().then(Instant::now);
        self.table.file.sync()?;
        self.wal.reset();
        if let Some(t) = timer {
            wal_fsync_hist().observe_since(t);
        }
        Ok(())
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Recover after a crash: given the surviving disk (flushed pages
    /// only) and the log, rebuild a table containing every acknowledged
    /// record. `flushed` is the number of records that made it to pages
    /// (the recovery scan counts them); the log suffix beyond that is
    /// replayed.
    pub fn recover(storage: &Storage, schema: Schema, wal: Wal) -> StorageResult<LoggedTable> {
        let logged = wal.records()?;
        let mut out = LoggedTable::create(storage, schema, Wal::new());
        for r in &logged {
            out.table.file.append(r)?;
        }
        out.table.file.sync()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufpool::BufferPool;
    use xst_core::Value;

    fn rec(i: i64) -> Record {
        Record::new([Value::Int(i), Value::str(format!("r{i}"))])
    }

    #[test]
    fn wal_roundtrip() {
        let wal = Wal::new();
        assert!(wal.is_empty());
        for i in 0..10 {
            wal.append(&rec(i).encode());
        }
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[3], rec(3));
        assert!(!wal.is_empty());
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let wal = Wal::new();
        wal.append(&rec(1).encode());
        wal.append(&rec(2).encode());
        wal.tear(3); // rip into the last record
        let records = wal.records().unwrap();
        assert_eq!(records.len(), 1, "intact prefix only");
        assert_eq!(records[0], rec(1));
    }

    #[test]
    fn corrupt_middle_record_is_an_error() {
        let wal = Wal::new();
        wal.append(&rec(1).encode());
        wal.append(&rec(2).encode());
        // Flip a byte inside the FIRST record's payload.
        {
            let mut buf = wal.buf.lock();
            buf[6] ^= 0xFF;
        }
        assert!(matches!(wal.records(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn crash_before_sync_loses_nothing_with_wal() {
        let storage = Storage::new();
        let wal = Wal::new();
        let schema = Schema::new(["id", "name"]);
        let mut t = LoggedTable::create(&storage, schema.clone(), wal.clone());
        for i in 0..5 {
            t.append(&rec(i)).unwrap();
        }
        // Crash: drop the handle. Nothing was flushed (5 small records fit
        // in the in-memory tail), so the disk alone has zero pages.
        let file_id = t.table.file.file_id();
        drop(t);
        assert_eq!(storage.page_count(file_id).unwrap(), 0, "tail was lost");

        // Recovery replays the log.
        let recovered = LoggedTable::recover(&storage, schema, wal).unwrap();
        let pool = BufferPool::new(storage, 8);
        let rows = recovered.table.file.read_all(&pool).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], rec(4));
    }

    #[test]
    fn checkpoint_flushes_and_truncates() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["id", "name"]), wal.clone());
        for i in 0..5 {
            t.append(&rec(i)).unwrap();
        }
        assert!(!wal.is_empty());
        t.checkpoint().unwrap();
        assert!(wal.is_empty());
        assert!(storage.page_count(t.table.file.file_id()).unwrap() > 0);
        // Appends after the checkpoint land in the fresh log.
        t.append(&rec(99)).unwrap();
        assert_eq!(wal.records().unwrap().len(), 1);
    }

    #[test]
    fn schema_violations_are_rejected_before_logging() {
        let storage = Storage::new();
        let wal = Wal::new();
        let mut t = LoggedTable::create(&storage, Schema::new(["one"]), wal.clone());
        assert!(t.append(&rec(1)).is_err(), "arity 2 vs schema arity 1");
        assert!(wal.is_empty(), "nothing logged for a rejected append");
    }
}
