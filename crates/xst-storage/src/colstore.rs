//! Column-oriented storage — the same relation under a different
//! representation identity.
//!
//! The 1977 argument: since a stored representation is just a set with a
//! mathematical identity, the *same* relation may be laid out row-wise or
//! column-wise and the system can reason about both. A [`ColumnTable`]
//! stores one heap file per column (each row contributing a 1-tuple record
//! at the same ordinal in every file); its set identity is **equal** to
//! the row table's, while its access economics differ: a query touching
//! `k` of `n` columns reads roughly `k/n` of the pages (experiment E9).

use crate::bufpool::{BufferPool, Storage};
use crate::error::{StorageError, StorageResult};
use crate::file::HeapFile;
use crate::record::{Record, Schema};
use xst_core::{ExtendedSet, SetBuilder, Value};

/// A vertically-partitioned table: one heap file per column.
pub struct ColumnTable {
    /// Field layout (shared with the row representation).
    pub schema: Schema,
    columns: Vec<HeapFile>,
    rows: usize,
}

impl ColumnTable {
    /// Create an empty column table.
    pub fn create(storage: &Storage, schema: Schema) -> ColumnTable {
        let columns = (0..schema.arity())
            .map(|_| HeapFile::create(storage))
            .collect();
        ColumnTable {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Append one record, splitting it across the column files.
    pub fn append(&mut self, record: &Record) -> StorageResult<()> {
        record.conforms(&self.schema)?;
        for (file, value) in self.columns.iter_mut().zip(record.values()) {
            file.append(&Record::new([value.clone()]))?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Append many records and flush.
    pub fn load<'a>(&mut self, records: impl IntoIterator<Item = &'a Record>) -> StorageResult<()> {
        for r in records {
            self.append(r)?;
        }
        self.sync()
    }

    /// Flush every column's tail page.
    pub fn sync(&mut self) -> StorageResult<()> {
        for c in &mut self.columns {
            c.sync()?;
        }
        Ok(())
    }

    /// Total pages across all column files.
    pub fn page_count(&self) -> StorageResult<usize> {
        self.columns.iter().map(HeapFile::page_count).sum()
    }

    /// Scan a single column through the pool, in row order.
    pub fn scan_column(
        &self,
        pool: &BufferPool,
        field: &str,
        mut f: impl FnMut(usize, Value) -> StorageResult<()>,
    ) -> StorageResult<()> {
        let pos = self.schema.require(field)?;
        let mut row = 0usize;
        self.columns[pos].scan(pool, |_, record| {
            let value = record
                .get(0)
                .cloned()
                .ok_or_else(|| StorageError::Corrupt {
                    reason: "empty column record".into(),
                })?;
            f(row, value)?;
            row += 1;
            Ok(())
        })
    }

    /// Materialize one column as a vector (row order).
    pub fn read_column(&self, pool: &BufferPool, field: &str) -> StorageResult<Vec<Value>> {
        let mut out = Vec::with_capacity(self.rows);
        self.scan_column(pool, field, |_, v| {
            out.push(v);
            Ok(())
        })?;
        Ok(out)
    }

    /// Reconstruct full records by zipping every column (reads all files).
    pub fn reconstruct(&self, pool: &BufferPool) -> StorageResult<Vec<Record>> {
        let mut columns = Vec::with_capacity(self.schema.arity());
        for name in self.schema.fields() {
            columns.push(self.read_column(pool, name)?);
        }
        let rows = columns.first().map_or(0, Vec::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(StorageError::Corrupt {
                    reason: format!(
                        "column {} has {} rows, expected {rows}",
                        self.schema.fields()[i],
                        c.len()
                    ),
                });
            }
        }
        Ok((0..rows)
            .map(|r| Record::new(columns.iter().map(|c| c[r].clone())))
            .collect())
    }

    /// The table's set identity — equal to the row representation's
    /// identity for the same data: the layout is invisible to the
    /// mathematics.
    pub fn identity(&self, pool: &BufferPool) -> StorageResult<ExtendedSet> {
        let mut b = SetBuilder::with_capacity(self.rows);
        for r in self.reconstruct(pool)? {
            b.classical_elem(Value::Set(r.to_tuple()));
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SetEngine, Table};

    fn rows(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new([
                    Value::Int(i),
                    Value::str(format!("name-{i}")),
                    Value::Int(i % 10),
                    Value::sym(if i % 2 == 0 { "even" } else { "odd" }),
                ])
            })
            .collect()
    }

    fn schema() -> Schema {
        Schema::new(["id", "name", "qty", "parity"])
    }

    #[test]
    fn roundtrip_reconstruction() {
        let storage = Storage::new();
        let mut ct = ColumnTable::create(&storage, schema());
        let data = rows(100);
        ct.load(&data).unwrap();
        assert_eq!(ct.row_count(), 100);
        let pool = BufferPool::new(storage, 16);
        assert_eq!(ct.reconstruct(&pool).unwrap(), data);
    }

    #[test]
    fn identity_equals_row_representation() {
        let storage = Storage::new();
        let data = rows(200);
        let mut ct = ColumnTable::create(&storage, schema());
        ct.load(&data).unwrap();
        let mut rt = Table::create(&storage, schema());
        rt.load(&data).unwrap();
        let pool = BufferPool::new(storage, 32);
        let row_identity = SetEngine::load(&rt, &pool).unwrap();
        assert_eq!(&ct.identity(&pool).unwrap(), row_identity.identity());
    }

    #[test]
    fn column_scan_reads_fraction_of_pages() {
        let storage = Storage::new();
        let data = rows(5_000);
        let mut ct = ColumnTable::create(&storage, schema());
        ct.load(&data).unwrap();
        let mut rt = Table::create(&storage, schema());
        rt.load(&data).unwrap();
        let pool = BufferPool::new(storage, 4);

        // Row store: summing qty reads every page.
        pool.clear();
        pool.reset_stats();
        let mut row_sum = 0i64;
        rt.file
            .scan(&pool, |_, r| {
                if let Some(Value::Int(q)) = r.get(2) {
                    row_sum += q;
                }
                Ok(())
            })
            .unwrap();
        let row_reads = pool.stats().disk_reads;

        // Column store: only the qty file.
        pool.clear();
        pool.reset_stats();
        let mut col_sum = 0i64;
        ct.scan_column(&pool, "qty", |_, v| {
            if let Value::Int(q) = v {
                col_sum += q;
            }
            Ok(())
        })
        .unwrap();
        let col_reads = pool.stats().disk_reads;

        assert_eq!(row_sum, col_sum);
        assert!(
            col_reads * 2 < row_reads,
            "column scan should read far fewer pages: {col_reads} vs {row_reads}"
        );
    }

    #[test]
    fn column_order_is_row_order() {
        let storage = Storage::new();
        let mut ct = ColumnTable::create(&storage, schema());
        ct.load(&rows(50)).unwrap();
        let pool = BufferPool::new(storage, 8);
        let ids = ct.read_column(&pool, "id").unwrap();
        for (i, v) in ids.iter().enumerate() {
            assert_eq!(v, &Value::Int(i as i64));
        }
    }

    #[test]
    fn schema_violations_rejected() {
        let storage = Storage::new();
        let mut ct = ColumnTable::create(&storage, schema());
        assert!(ct.append(&Record::new([Value::Int(1)])).is_err());
        assert!(ct
            .read_column(&BufferPool::new(storage, 2), "bogus")
            .is_err());
    }

    #[test]
    fn empty_table() {
        let storage = Storage::new();
        let ct = ColumnTable::create(&storage, schema());
        let pool = BufferPool::new(storage, 2);
        assert!(ct.reconstruct(&pool).unwrap().is_empty());
        assert!(ct.identity(&pool).unwrap().is_empty());
    }
}
