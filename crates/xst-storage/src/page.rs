//! Slotted pages — the unit of simulated I/O.
//!
//! A [`Page`] is a fixed-size byte frame with a slot directory growing from
//! the front and record payloads growing from the back, the classic heap
//! page layout:
//!
//! ```text
//! [ nslots:u16 | free_end:u16 | slot0 (off:u16,len:u16) | slot1 | ... ]
//! [ ...free space... ]
//! [ ...payloads packed at the back... ]
//! ```
//!
//! Pages only store bytes; the [`crate::codec`] gives those bytes their
//! mathematical identity.

use crate::error::{StorageError, StorageResult};

/// Fixed page size, a 1977-flavored 4 KiB.
pub const PAGE_SIZE: usize = 4096;
const HEADER: usize = 4;
const SLOT: usize = 4;

/// Maximum payload a fresh page can accept (one slot entry + data).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT;

/// A fixed-size slotted page.
#[derive(Debug, Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A fresh empty page.
    pub fn new() -> Page {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        write_u16(&mut data[2..4], PAGE_SIZE as u16); // free_end
        Page { data }
    }

    /// Reconstruct a page from raw bytes (e.g. read back from "disk").
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt {
                reason: format!("page must be {PAGE_SIZE} bytes, got {}", bytes.len()),
            });
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        let page = Page { data };
        // Sanity-check the directory before trusting it.
        let n = page.slot_count();
        let free_end = page.free_end();
        if HEADER + n * SLOT > PAGE_SIZE || free_end > PAGE_SIZE {
            return Err(StorageError::Corrupt {
                reason: "slot directory overruns page".into(),
            });
        }
        for slot in 0..n {
            let (off, len) = page.slot(slot);
            if off < HEADER + n * SLOT || off + len > PAGE_SIZE {
                return Err(StorageError::Corrupt {
                    reason: format!("slot {slot} points outside the page"),
                });
            }
        }
        Ok(page)
    }

    /// Raw bytes of the page.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> usize {
        read_u16(&self.data[0..2]) as usize
    }

    fn free_end(&self) -> usize {
        read_u16(&self.data[2..4]) as usize
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HEADER + i * SLOT;
        (
            read_u16(&self.data[base..base + 2]) as usize,
            read_u16(&self.data[base + 2..base + 4]) as usize,
        )
    }

    /// Free bytes remaining (accounting for the slot entry an insert needs).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() * SLOT;
        self.free_end().saturating_sub(dir_end).saturating_sub(SLOT)
    }

    /// Can `payload` be inserted?
    pub fn fits(&self, payload: &[u8]) -> bool {
        payload.len() <= self.free_space()
    }

    /// Insert a record payload, returning its slot id.
    pub fn insert(&mut self, payload: &[u8]) -> StorageResult<usize> {
        if payload.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_RECORD,
            });
        }
        if !self.fits(payload) {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: self.free_space(),
            });
        }
        let n = self.slot_count();
        let new_end = self.free_end() - payload.len();
        self.data[new_end..new_end + payload.len()].copy_from_slice(payload);
        let base = HEADER + n * SLOT;
        write_u16(&mut self.data[base..base + 2], new_end as u16);
        write_u16(&mut self.data[base + 2..base + 4], payload.len() as u16);
        write_u16(&mut self.data[0..2], (n + 1) as u16);
        write_u16(&mut self.data[2..4], new_end as u16);
        Ok(n)
    }

    /// Read the payload in `slot`.
    pub fn get(&self, slot: usize) -> StorageResult<&[u8]> {
        let n = self.slot_count();
        if slot >= n {
            return Err(StorageError::SlotOutOfRange { slot, slots: n });
        }
        let (off, len) = self.slot(slot);
        Ok(&self.data[off..off + len])
    }

    /// Iterate over all record payloads on the page.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.slot_count()).map(move |i| {
            let (off, len) = self.slot(i);
            &self.data[off..off + len]
        })
    }
}

fn read_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn write_u16(b: &mut [u8], v: u16) {
    b.copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new();
        assert_eq!(p.slot_count(), 0);
        assert!(p.free_space() > 4000);
        assert!(p.get(0).is_err());
    }

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn iter_yields_in_insert_order() {
        let mut p = Page::new();
        for payload in [&b"a"[..], b"bb", b"ccc"] {
            p.insert(payload).unwrap();
        }
        let got: Vec<&[u8]> = p.iter().collect();
        assert_eq!(got, vec![&b"a"[..], b"bb", b"ccc"]);
    }

    #[test]
    fn page_fills_up() {
        let mut p = Page::new();
        let payload = [7u8; 100];
        let mut inserted = 0;
        while p.fits(&payload) {
            p.insert(&payload).unwrap();
            inserted += 1;
        }
        assert!(
            inserted >= 38,
            "should fit ~39 104-byte records, got {inserted}"
        );
        assert!(p.insert(&payload).is_err());
        // Everything is still readable.
        assert!(p.iter().all(|r| r == payload));
    }

    #[test]
    fn oversized_record_is_rejected_upfront() {
        let mut p = Page::new();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        p.insert(b"me too").unwrap();
        let restored = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(restored.slot_count(), 2);
        assert_eq!(restored.get(0).unwrap(), b"persist me");
        assert_eq!(restored.get(1).unwrap(), b"me too");
    }

    #[test]
    fn from_bytes_validates() {
        assert!(Page::from_bytes(&[0u8; 10]).is_err(), "wrong size");
        // Corrupt directory: claims 2000 slots.
        let mut bytes = vec![0u8; PAGE_SIZE];
        bytes[0] = 0xD0;
        bytes[1] = 0x07;
        assert!(Page::from_bytes(&bytes).is_err());
    }

    #[test]
    fn zero_length_payloads_are_legal() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }
}
