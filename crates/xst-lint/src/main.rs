//! CLI for `xst-lint`: run every rule and pass over a workspace root.
//!
//! ```text
//! xst-lint [--root PATH] [--deny-all] [--json PATH]
//! ```
//!
//! `--deny-all` re-raises findings excused by the legacy static
//! allowlist (justification comments are unaffected — they are the
//! documented exemption mechanism and are themselves linted).
//! `--json PATH` additionally writes an `xst-lint-report/1` document
//! (`-` for stdout).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_all = args.iter().any(|a| a == "--deny-all");
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let json_to = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if !root.join("crates").is_dir() {
        eprintln!(
            "xst-lint: no crates/ directory under {} (run from the workspace root or pass --root)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let report = match xst_lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xst-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failing = 0usize;
    for f in &report.findings {
        // Under --deny-all the static allowlist stops excusing token
        // findings; justification comments still stand.
        let denied =
            deny_all && f.justified && !xst_lint::JUSTIFIABLE_RULES.contains(&f.rule.as_str());
        if f.justified && !denied {
            println!("{f}");
        } else {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            failing += 1;
        }
    }

    if let Some(path) = json_to {
        let doc = report.to_json(deny_all);
        if path == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("xst-lint: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if failing > 0 {
        eprintln!(
            "xst-lint: {failing} violation(s) across {} file(s) checked",
            report.files_checked
        );
        ExitCode::FAILURE
    } else {
        println!(
            "xst-lint: clean — {} file(s) checked, {} justified finding(s)",
            report.files_checked,
            report.justified_count()
        );
        ExitCode::SUCCESS
    }
}
