//! `xst-lint` — first-party source lint for the XST workspace.
//!
//! Zero dependencies, line/token-level rules over `crates/*/src`:
//!
//! 1. **no-panic** — `.unwrap()`, `.expect(`, and `panic!` are forbidden in
//!    non-test `xst-storage` / `xst-core` code: the storage engine and the
//!    core algebra must fail with structured errors, never by aborting.
//! 2. **determinism** — `std::time::{Instant, SystemTime}` and the `rand`
//!    crate are forbidden inside the deterministic harness/fault/sched
//!    modules; those subsystems replay byte-identical schedules and must
//!    not observe wall-clock time or ambient entropy.
//! 3. **metric-names** — every `xst_*` metric-name string literal must
//!    live in `crates/xst-obs/src/names.rs`, exactly once; registration
//!    sites refer to the canonical constants, so a family cannot be
//!    registered under two drifting spellings.
//! 4. **registered-metrics** — every non-test
//!    `registry().counter/gauge/histogram(...)` registration site must
//!    name its family through `names::` constants, so the registry cannot
//!    grow a family the names module (and its uniqueness test) never
//!    heard of. Covers every crate, xst-server/xst-client included.
//!
//! Comments, string/char-literal *contents*, and `#[cfg(test)]` regions
//! are excluded before token rules run. Exit status is non-zero when any
//! violation is found; `--deny-all` additionally fails allowlisted
//! findings (the allowlist ships empty and is meant to stay that way).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod scan;

use scan::SourceView;

/// Permanent exemptions: `(path suffix, token)` pairs. Kept empty — CI
/// runs `--deny-all`, and new exemptions belong in a code fix, not here.
const ALLOWLIST: &[(&str, &str)] = &[];

/// One lint finding.
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
    token: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn allowlisted(v: &Violation) -> bool {
    let path = v.file.to_string_lossy();
    ALLOWLIST
        .iter()
        .any(|(suffix, token)| path.ends_with(suffix) && v.token == *token)
}

/// Crates whose non-test sources must never panic.
const NO_PANIC_CRATES: &[&str] = &["xst-storage", "xst-core", "xst-server", "xst-client"];
/// Forbidden panic tokens (checked on the comment/string-blanked view).
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// File-name fragments marking deterministic-replay modules.
const DETERMINISTIC_MODULES: &[&str] = &["fault", "sched", "harness"];
/// Forbidden nondeterminism tokens, matched on word boundaries.
const NONDETERMINISM_TOKENS: &[&str] = &["Instant", "SystemTime", "rand"];

/// Where the canonical metric-name constants live.
const METRIC_NAMES_FILE: &str = "crates/xst-obs/src/names.rs";

/// Registry registration methods; a call site must pass a `names::`
/// constant as the family name.
const REGISTRATION_METHODS: &[&str] = &[".counter(", ".gauge(", ".histogram("];
/// How far back a registration method looks for its `registry()` receiver
/// and how far forward for the `names::` constant (call sites wrap).
const REGISTRATION_WINDOW: usize = 120;

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Slice `code` around `[start, end)`, widening to char boundaries so a
/// blanked multi-byte char can never split the window.
fn window(code: &str, mut start: usize, mut end: usize) -> &str {
    end = end.min(code.len());
    while start > 0 && !code.is_char_boundary(start) {
        start -= 1;
    }
    while end < code.len() && !code.is_char_boundary(end) {
        end += 1;
    }
    &code[start..end]
}

/// Find `token` in `code` on word boundaries (when `word` is set),
/// returning byte offsets.
fn find_token(code: &str, token: &str, word: bool) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + 1;
        if word {
            let before_ok = at == 0 || !is_word_char(bytes[at - 1]);
            let end = at + token.len();
            let after_ok = end >= bytes.len() || !is_word_char(bytes[end]);
            if !(before_ok && after_ok) {
                continue;
            }
        }
        out.push(at);
    }
    out
}

fn lint_file(path: &Path, rel: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    let source = std::fs::read_to_string(path)?;
    let view = SourceView::new(&source);
    let rel_str = rel.to_string_lossy().replace('\\', "/");

    let crate_name = rel_str
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let file_name = rel
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();

    if NO_PANIC_CRATES.contains(&crate_name) {
        for token in PANIC_TOKENS {
            for at in find_token(&view.code, token, false) {
                if view.in_test(at) {
                    continue;
                }
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: view.line_of(at),
                    rule: "no-panic",
                    message: format!(
                        "`{token}` in non-test {crate_name} code; return a structured error instead"
                    ),
                    token: (*token).to_string(),
                });
            }
        }
    }

    if DETERMINISTIC_MODULES.iter().any(|m| file_name.contains(m)) {
        for token in NONDETERMINISM_TOKENS {
            for at in find_token(&view.code, token, true) {
                if view.in_test(at) {
                    continue;
                }
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: view.line_of(at),
                    rule: "determinism",
                    message: format!(
                        "`{token}` inside deterministic module `{file_name}`; \
                         deterministic replay must not read clocks or ambient entropy"
                    ),
                    token: (*token).to_string(),
                });
            }
        }
    }

    let is_names_file = rel_str == METRIC_NAMES_FILE;
    let mut seen_names: Vec<&str> = Vec::new();
    for lit in &view.strings {
        if view.in_test(lit.at) || !lit.text.starts_with("xst_") {
            continue;
        }
        if is_names_file {
            if seen_names.contains(&lit.text.as_str()) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: view.line_of(lit.at),
                    rule: "metric-names",
                    message: format!(
                        "metric name \"{}\" is defined more than once in names.rs",
                        lit.text
                    ),
                    token: lit.text.clone(),
                });
            }
            seen_names.push(&lit.text);
        } else {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: view.line_of(lit.at),
                rule: "metric-names",
                message: format!(
                    "metric-name literal \"{}\" outside {METRIC_NAMES_FILE}; \
                     use the canonical constant from xst_obs::names",
                    lit.text
                ),
                token: lit.text.clone(),
            });
        }
    }

    for method in REGISTRATION_METHODS {
        for at in find_token(&view.code, method, false) {
            if view.in_test(at) {
                continue;
            }
            // Only `registry().counter(...)`-shaped calls register a
            // family; a method merely named `counter` elsewhere is fine.
            // The receiver must directly precede the method (modulo the
            // whitespace rustfmt wraps with).
            let before = window(&view.code, at.saturating_sub(REGISTRATION_WINDOW), at);
            if !before.trim_end().ends_with("registry()") {
                continue;
            }
            // The family name is the first argument: scan it alone, so a
            // `names::` in the *next* statement can't vouch for this one.
            let after = window(
                &view.code,
                at + method.len(),
                at + method.len() + REGISTRATION_WINDOW,
            );
            let first_arg = &after[..after.find([',', ')']).unwrap_or(after.len())];
            if !first_arg.contains("names::") {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: view.line_of(at),
                    rule: "registered-metrics",
                    message: format!(
                        "registration `registry(){method}...)` without a `names::` constant; \
                         add the family to xst_obs::names and register through it"
                    ),
                    token: (*method).to_string(),
                });
            }
        }
    }

    Ok(())
}

/// Collect every `.rs` file under `crates/*/src`, skipping `xst-lint`
/// itself (its rule tables necessarily spell the forbidden tokens).
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let dir = entry?.path();
        if dir.file_name().is_some_and(|n| n == "xst-lint") {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_all = args.iter().any(|a| a == "--deny-all");
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    if !root.join("crates").is_dir() {
        eprintln!(
            "xst-lint: no crates/ directory under {} (run from the workspace root or pass --root)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let files = match source_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xst-lint: cannot enumerate sources: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut violations = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(&root).unwrap_or(file);
        if let Err(e) = lint_file(file, rel, &mut violations) {
            eprintln!("xst-lint: cannot read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    }

    let mut failing = 0usize;
    for v in &violations {
        let allowed = allowlisted(v);
        if allowed && !deny_all {
            println!("{v} (allowlisted)");
        } else {
            println!("{v}");
            failing += 1;
        }
    }

    if failing > 0 {
        eprintln!(
            "xst-lint: {failing} violation(s) across {} file(s) checked",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "xst-lint: clean — {} file(s) checked, {} allowlisted finding(s)",
            files.len(),
            violations.len()
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_finder_respects_word_boundaries() {
        let code = "let operand = rand::random(); branding";
        assert_eq!(find_token(code, "rand", true).len(), 1);
        assert!(find_token(code, "rand", false).len() >= 3);
    }

    #[test]
    fn panic_tokens_do_not_match_similar_identifiers() {
        // `unwrap_or_else` and a method *named* expect_char are fine; the
        // forbidden tokens are the exact call forms.
        let code = "x.unwrap_or_else(f); self.expect_char('{');";
        for t in PANIC_TOKENS {
            assert_eq!(find_token(code, t, false).len(), 0, "{t}");
        }
        assert_eq!(find_token("x.unwrap();", ".unwrap()", false).len(), 1);
        assert_eq!(find_token("x.expect(\"m\");", ".expect(", false).len(), 1);
        assert_eq!(find_token("panic!(\"m\");", "panic!", false).len(), 1);
    }

    #[test]
    fn allowlist_ships_empty() {
        assert!(ALLOWLIST.is_empty());
    }

    #[test]
    fn window_respects_char_boundaries() {
        let code = "ab⟨cd⟩ef";
        // Offsets inside the 3-byte '⟨' widen instead of panicking.
        assert_eq!(window(code, 3, 4), "⟨");
        assert_eq!(window(code, 0, 100), code);
    }

    #[test]
    fn registration_requires_names_constant() {
        let path = std::env::temp_dir().join("xst_lint_registration_check.rs");
        std::fs::write(
            &path,
            "fn bad() { let c = registry().counter(\"plain_total\", \"h\"); }\n\
             fn good() { let c = registry().counter(names::OK_TOTAL, \"h\"); }\n\
             fn wrapped() {\n    let h = registry().histogram(\n        \
             xst_obs::names::OK_NS,\n        \"h\",\n    );\n}\n\
             fn unrelated(c: &Tally) { c.counter(\"not a registration\"); }\n",
        )
        .unwrap();
        let mut out = Vec::new();
        lint_file(&path, Path::new("crates/xst-fake/src/fake.rs"), &mut out).unwrap();
        std::fs::remove_file(&path).ok();
        let regs: Vec<_> = out
            .iter()
            .filter(|v| v.rule == "registered-metrics")
            .collect();
        assert_eq!(regs.len(), 1, "only the literal registration fires");
        assert_eq!(regs[0].line, 1);
    }
}
