//! Machine-readable report: the `xst-lint-report/1` JSON schema, with a
//! hand-rolled writer and a minimal JSON parser so the schema can be
//! round-trip tested without external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::LintReport;

/// Schema identifier emitted in every report.
pub const SCHEMA: &str = "xst-lint-report/1";

/// Render `report` as `xst-lint-report/1` JSON.
pub fn render(report: &LintReport, deny_all: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", quote(SCHEMA));
    let _ = writeln!(s, "  \"root\": {},", quote(&report.root.to_string_lossy()));
    let _ = writeln!(s, "  \"files_checked\": {},", report.files_checked);
    let _ = writeln!(s, "  \"deny_all\": {},", deny_all);
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        let _ = write!(
            s,
            "\"file\": {}, \"line\": {}, \"rule\": {}, \"justified\": {}, \"message\": {}",
            quote(&f.file),
            f.line,
            quote(&f.rule),
            f.justified,
            quote(&f.message)
        );
        s.push('}');
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    let _ = writeln!(
        s,
        "  \"counts\": {{\"errors\": {}, \"justified\": {}}}",
        report.error_count(),
        report.justified_count()
    );
    s.push_str("}\n");
    s
}

fn quote(text: &str) -> String {
    let mut s = String::with_capacity(text.len() + 2);
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

/// A parsed JSON value — just enough to verify the report round-trips.
#[derive(Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `Err` with a byte offset on malformed
/// input — precise enough for a test failure message.
pub fn parse(text: &str) -> Result<Json, usize> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, text, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(i);
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[u8], text: &str, i: &mut usize) -> Result<Json, usize> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, text, i)? {
                    Json::Str(s) => s,
                    _ => return Err(*i),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(*i);
                }
                *i += 1;
                let v = parse_value(b, text, i)?;
                m.insert(key, v);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(*i),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut v = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, text, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(*i),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'u') => {
                                let hex = text.get(*i + 1..*i + 5).ok_or(*i)?;
                                let n = u32::from_str_radix(hex, 16).map_err(|_| *i)?;
                                s.push(char::from_u32(n).ok_or(*i)?);
                                *i += 4;
                            }
                            _ => return Err(*i),
                        }
                        *i += 1;
                    }
                    _ => {
                        // Copy the full (possibly multi-byte) char.
                        let c = text[*i..].chars().next().ok_or(*i)?;
                        s.push(c);
                        *i += c.len_utf8();
                    }
                }
            }
            Err(*i)
        }
        Some(b't') if text[*i..].starts_with("true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if text[*i..].starts_with("false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if text[*i..].starts_with("null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            text[start..*i]
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| start)
        }
        _ => Err(*i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_report_shapes() {
        let v = parse(
            "{\"a\": [1, 2.5, -3], \"b\": {\"c\": true, \"d\": \"x\\n\\\"y\\u0041\"}, \"e\": null}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("b").unwrap().get("d").unwrap().as_str(),
            Some("x\n\"yA")
        );
        assert_eq!(v.get("e"), Some(&Json::Null));
        assert!(parse("{\"unterminated\": ").is_err());
        assert!(parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let back = parse(&quote("a\"b\\c\nd\t\u{7}")).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\t\u{7}"));
    }
}
