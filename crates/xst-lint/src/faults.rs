//! Pass 3: fault-site completeness over `xst-storage`.
//!
//! The crash harnesses claim to crash at *every* I/O site — a claim that
//! is only as strong as the numbering. This pass makes it checkable:
//! a *device struct* is any `xst-storage` struct holding a `FaultPlan`
//! field (today `StorageInner` in bufpool.rs and `WalInner` in wal.rs);
//! its remaining fields are device state. Every non-test function in the
//! declaring file that touches device state (`.field` access) must
//! either pass through a site-numbering claim (`check_fault(` or
//! `.check(SiteClass::`) or carry a
//! `// lint: unnumbered-io: <why>` justification explaining why the
//! access is not a numbered I/O operation (pure accessors, recovery
//! replay, test-only device manipulation).

use std::collections::BTreeSet;

use crate::{push_finding, Workspace};

/// Body substrings that prove the function claims a numbered fault site.
const SITE_CLAIMS: &[&str] = &["check_fault(", "check(SiteClass::"];

pub fn analyze(
    ws: &Workspace,
    findings: &mut Vec<crate::Finding>,
    used: &mut BTreeSet<(usize, usize)>,
) {
    for (fi, rec) in ws.files.iter().enumerate() {
        if rec.crate_name != "xst-storage" {
            continue;
        }
        // Device structs and their state fields, per file. A device is a
        // FaultPlan-carrying struct that itself lives behind a Mutex
        // (`Mutex<WalInner>`, `Mutex<StorageInner>`): single-device
        // mutable state whose every touch is an I/O operation. A struct
        // that merely *distributes* fault plans (`ShardedEngine`'s
        // coordinator holds a `Mutex<Option<FaultPlan>>` staging slot)
        // is not a device.
        let behind_mutex = |name: &str| {
            rec.model.structs.iter().any(|s| {
                s.fields
                    .iter()
                    .any(|f| f.ty.contains("Mutex<") && f.ty.contains(name))
            })
        };
        let mut device_fields: Vec<(String, String)> = Vec::new(); // (struct, field)
        for s in &rec.model.structs {
            if !s.fields.iter().any(|f| f.ty.contains("FaultPlan")) || !behind_mutex(&s.name) {
                continue;
            }
            for f in &s.fields {
                if !f.ty.contains("FaultPlan") {
                    device_fields.push((s.name.clone(), f.name.clone()));
                }
            }
        }
        if device_fields.is_empty() {
            continue;
        }
        let code = &rec.view.code;
        let b = code.as_bytes();
        for decl in &rec.model.fns {
            let Some(body) = decl.body else { continue };
            if rec.view.in_test(decl.sig_at) {
                continue;
            }
            let text = &code[body.0..body.1.min(code.len())];
            let mut touched: Vec<&str> = Vec::new();
            let mut first_at = usize::MAX;
            for (_, field) in &device_fields {
                let pat = format!(".{field}");
                let mut from = 0;
                while let Some(p) = text[from..].find(&pat) {
                    let at = from + p;
                    from = at + 1;
                    let end = at + pat.len();
                    // Word-bounded field access, not a method call.
                    let after = text.as_bytes().get(end).copied();
                    if after.is_some_and(crate::syntax::is_ident_char) {
                        continue;
                    }
                    let mut q = end;
                    let tb = text.as_bytes();
                    while q < tb.len() && tb[q].is_ascii_whitespace() {
                        q += 1;
                    }
                    if q < tb.len() && tb[q] == b'(' {
                        continue;
                    }
                    // `0.field` tuple access can't collide: fields are named.
                    if !touched.contains(&field.as_str()) {
                        touched.push(field);
                    }
                    first_at = first_at.min(body.0 + at);
                    break;
                }
            }
            if touched.is_empty() {
                continue;
            }
            if SITE_CLAIMS.iter().any(|c| text.contains(c)) {
                continue;
            }
            let sig_line = rec.view.line_of(decl.sig_at);
            let access_line = rec.view.line_of(first_at.min(b.len()));
            let just_lines = [
                sig_line,
                sig_line.saturating_sub(1),
                access_line,
                access_line.saturating_sub(1),
            ];
            let js = rec.view.justifications_on("unnumbered-io", &just_lines);
            let justified = !js.is_empty();
            for j in js {
                used.insert((fi, j));
            }
            let display = match &decl.self_type {
                Some(t) => format!("{}::{}", t, decl.name),
                None => decl.name.clone(),
            };
            push_finding(
                findings,
                &rec.rel,
                sig_line,
                "unnumbered-io",
                format!(
                    "`{display}` touches device state ({}) without a FaultPlan site check",
                    touched
                        .iter()
                        .map(|f| format!("`.{f}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                justified,
            );
        }
    }
}
