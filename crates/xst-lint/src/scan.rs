//! A small lexical scanner: blanks comments and literal contents out of
//! Rust source so token rules cannot fire inside them, extracts string
//! literals for the metric-name rule, and marks `#[cfg(test)]` regions.
//!
//! This is deliberately not a full Rust lexer — it understands exactly as
//! much syntax as the lint rules need: line and block comments (nested),
//! string literals with escapes, raw strings, char literals vs lifetimes,
//! and attribute-gated test regions found by brace counting.

/// One extracted string literal.
pub struct StringLit {
    /// Byte offset of the opening quote in the original source.
    pub at: usize,
    /// The literal's contents (escapes left as written).
    pub text: String,
}

/// One `// lint: <rule>: <why>` justification comment. Passes that
/// support justified exemptions (`lock-across-io`, `unnumbered-io`,
/// `version-gate`) match findings against these by line; the driver
/// reports any justification no finding ever used.
pub struct Justification {
    /// Byte offset of the `//` in the original source.
    pub at: usize,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule being justified, e.g. `lock-across-io`.
    pub rule: String,
    /// The stated reason (everything after the second colon, trimmed).
    pub why: String,
}

/// The scanner's product: a blanked code view plus extracted literals and
/// test-region spans, all indexed by byte offset into the original source.
pub struct SourceView {
    /// The source with comments and string/char contents replaced by
    /// spaces (newlines kept, so offsets and line numbers still align).
    pub code: String,
    /// Every string literal, in source order.
    pub strings: Vec<StringLit>,
    /// Half-open byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Every `// lint: <rule>: <why>` comment, in source order.
    pub justifications: Vec<Justification>,
}

impl SourceView {
    /// Scan `source` into a view.
    pub fn new(source: &str) -> SourceView {
        let (code, strings, mut justifications) = blank(source);
        let test_regions = find_test_regions(&code);
        for j in &mut justifications {
            j.line = code.as_bytes()[..j.at]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                + 1;
        }
        SourceView {
            code,
            strings,
            test_regions,
            justifications,
        }
    }

    /// Justifications for `rule` on any of the given 1-based lines.
    /// Returns indices into `self.justifications`.
    pub fn justifications_on(&self, rule: &str, lines: &[usize]) -> Vec<usize> {
        self.justifications
            .iter()
            .enumerate()
            .filter(|(_, j)| j.rule == rule && lines.contains(&j.line))
            .map(|(i, _)| i)
            .collect()
    }

    /// Is byte offset `at` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, at: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= at && at < e)
    }

    /// 1-based line number of byte offset `at`.
    pub fn line_of(&self, at: usize) -> usize {
        self.code.as_bytes()[..at.min(self.code.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }
}

/// Replace comments and literal contents with spaces; collect strings
/// and `// lint:` justification comments.
fn blank(source: &str) -> (String, Vec<StringLit>, Vec<Justification>) {
    let b = source.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut strings = Vec::new();
    let mut justifications = Vec::new();
    let mut i = 0;
    // Keep newlines so line numbers survive blanking.
    for (k, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[k] = b'\n';
        }
    }
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if let Some(j) = parse_justification(&source[start..i], start) {
                    justifications.push(j);
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut text = String::new();
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        text.push(b[i] as char);
                        text.push(b[i + 1] as char);
                        i += 2;
                    } else if b[i] == b'"' {
                        break;
                    } else {
                        text.push(b[i] as char);
                        i += 1;
                    }
                }
                // Keep the quotes visible in the code view so adjacency
                // checks (e.g. `.expect(`) still look sane.
                out[start] = b'"';
                if i < b.len() {
                    out[i] = b'"';
                    i += 1;
                }
                strings.push(StringLit { at: start, text });
            }
            b'r' if is_raw_string_start(b, i) => {
                let (end, hashes, content_start) = raw_string_span(b, i);
                let text = source[content_start..end.saturating_sub(1 + hashes)].to_string();
                strings.push(StringLit { at: i, text });
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime? A char literal closes within a
                // couple of characters; a lifetime never closes.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    i += 2; // skip the escape lead-in
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                } else {
                    out[i] = b'\'';
                    i += 1; // lifetime: just the quote
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    (
        String::from_utf8(out).unwrap_or_default(),
        strings,
        justifications,
    )
}

/// Parse one line comment as a `// lint: <rule>: <why>` justification.
/// `text` is the comment including its leading slashes; `at` its offset.
/// The `line` field is filled in later (the caller counts newlines once).
fn parse_justification(text: &str, at: usize) -> Option<Justification> {
    let body = text.trim_start_matches('/').trim_start_matches('!').trim();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let colon = rest.find(':')?;
    let rule = rest[..colon].trim().to_string();
    let why = rest[colon + 1..].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    Some(Justification {
        at,
        line: 0,
        rule,
        why,
    })
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Span of a raw string starting at `i` (`r"…"`, `r#"…"#`, ...). Returns
/// (end offset past the closer, hash count, content start).
fn raw_string_span(b: &[u8], i: usize) -> (usize, usize, usize) {
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    let hashes = j - (i + 1);
    let content_start = j + 1;
    let mut k = content_start;
    while k < b.len() {
        if b[k] == b'"'
            && b[k + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return (k + 1 + hashes, hashes, content_start);
        }
        k += 1;
    }
    (b.len(), hashes, content_start)
}

/// Find `#[cfg(test)]`-gated items by brace counting on the blanked view.
fn find_test_regions(code: &str) -> Vec<(usize, usize)> {
    let b = code.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("#[cfg(test)]") {
        let attr_at = from + pos;
        // The gated item runs from the attribute to the close of the first
        // brace block after it (a gated `use` without braces ends at `;`).
        let mut i = attr_at + "#[cfg(test)]".len();
        let mut depth = 0usize;
        let mut opened = false;
        while i < b.len() {
            match b[i] {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        i += 1;
                        break;
                    }
                }
                b';' if !opened => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        regions.push((attr_at, i));
        from = i.max(attr_at + 1);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = 1; // has .unwrap() here\nlet s = \".expect(\"; /* panic! */";
        let v = SourceView::new(src);
        assert!(!v.code.contains(".unwrap()"));
        assert!(!v.code.contains(".expect("));
        assert!(!v.code.contains("panic!"));
        assert_eq!(v.strings.len(), 1);
        assert_eq!(v.strings[0].text, ".expect(");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* a /* b */ still comment */ let live = 1;";
        let v = SourceView::new(src);
        assert!(v.code.contains("let live"));
        assert!(!v.code.contains("still comment"));
    }

    #[test]
    fn string_literals_are_extracted_with_offsets() {
        let src = "reg(\"xst_demo_total\", \"help text\");";
        let v = SourceView::new(src);
        let texts: Vec<_> = v.strings.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["xst_demo_total", "help text"]);
        assert_eq!(v.line_of(v.strings[0].at), 1);
    }

    #[test]
    fn raw_strings_are_extracted() {
        let src = "let s = r\"xst_raw\"; let t = r#\"with \"quote\"\"#;";
        let v = SourceView::new(src);
        assert_eq!(v.strings[0].text, "xst_raw");
        assert_eq!(v.strings[1].text, "with \"quote\"");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let v = SourceView::new(src);
        // The lifetime names survive blanking; the char content does not.
        assert!(v.code.contains("'a>"));
        assert!(!v.code.contains("'x'"));
    }

    #[test]
    fn escaped_chars_are_skipped() {
        let src = "let c = '\\n'; let q = '\\''; live";
        let v = SourceView::new(src);
        assert!(v.code.contains("live"));
    }

    #[test]
    fn cfg_test_regions_cover_their_braces() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}";
        let v = SourceView::new(src);
        assert_eq!(v.test_regions.len(), 1);
        let unwraps: Vec<usize> = {
            let mut out = Vec::new();
            let mut from = 0;
            while let Some(p) = v.code[from..].find(".unwrap()") {
                out.push(from + p);
                from += p + 1;
            }
            out
        };
        assert_eq!(unwraps.len(), 2);
        assert!(!v.in_test(unwraps[0]));
        assert!(v.in_test(unwraps[1]));
        let live2 = v.code.find("live2").unwrap();
        assert!(!v.in_test(live2));
    }

    #[test]
    fn justification_comments_are_captured() {
        let src = "fn f() {\n    // lint: lock-across-io: group commit holds the lock by design\n    g(); // lint: unnumbered-io: volatile accessor\n}\n// not a lint comment\n";
        let v = SourceView::new(src);
        assert_eq!(v.justifications.len(), 2);
        assert_eq!(v.justifications[0].rule, "lock-across-io");
        assert_eq!(
            v.justifications[0].why,
            "group commit holds the lock by design"
        );
        assert_eq!(v.justifications[0].line, 2);
        assert_eq!(v.justifications[1].rule, "unnumbered-io");
        assert_eq!(v.justifications[1].line, 3);
        assert_eq!(v.justifications_on("lock-across-io", &[1, 2]), vec![0]);
        assert!(v.justifications_on("lock-across-io", &[3]).is_empty());
    }

    #[test]
    fn line_numbers_survive_blanking() {
        let src = "line1\n// comment\nlet x = \"xst_here\";\n";
        let v = SourceView::new(src);
        assert_eq!(v.line_of(v.strings[0].at), 3);
    }
}
